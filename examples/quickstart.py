#!/usr/bin/env python
"""Quickstart: solve one Poisson problem with the full hybrid pipeline.

This walks through the complete DDM-GNN workflow of the paper on a small
(random) domain so that it runs in about a minute on a laptop CPU:

1. generate a random domain and mesh it (paper Fig. 4a);
2. assemble the P1 finite-element system ``A u = b``;
3. harvest a small training set of local sub-problems from a classical
   two-level ASM solve and train a Deep Statistical Solver on it;
4. solve the problem with plain CG, PCG-DDM-LU and PCG-DDM-GNN and compare
   iteration counts (paper Table I, scaled down).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import generate_dataset
from repro.solvers import SolverConfig, prepare
from repro.fem import random_poisson_problem
from repro.gnn import DSS, DSSConfig, DSSTrainer, TrainingConfig, evaluate_model
from repro.mesh import random_domain_mesh
from repro.utils import format_table

SUBDOMAIN_SIZE = 110          # ~1000 in the paper; scaled down for CPU
ELEMENT_SIZE = 0.08           # mesh resolution (the paper uses ~7000-node meshes)
TRAIN_EPOCHS = 6              # 400 in the paper
SEED = 0


def main() -> None:
    rng = np.random.default_rng(SEED)

    # ------------------------------------------------------------------ #
    # 1-2. mesh a random domain and assemble the Poisson system
    # ------------------------------------------------------------------ #
    print("1) meshing a random Bezier domain ...")
    mesh = random_domain_mesh(radius=1.0, element_size=ELEMENT_SIZE, rng=rng)
    problem = random_poisson_problem(mesh, rng=rng)
    print(f"   mesh: {mesh.num_nodes} nodes, {mesh.num_triangles} triangles, "
          f"mean quality {mesh.quality()['mean_quality']:.2f}")

    # ------------------------------------------------------------------ #
    # 3. build a small training set and train the DSS model
    # ------------------------------------------------------------------ #
    print("2) harvesting local problems from a two-level ASM-PCG solve ...")
    dataset = generate_dataset(
        num_global_problems=2,
        mesh_element_size=ELEMENT_SIZE,
        subdomain_size=SUBDOMAIN_SIZE,
        overlap=2,
        rng=rng,
    )
    print(f"   dataset: train/val/test = {dataset.sizes}")

    print("3) training the Deep Statistical Solver (scaled-down settings) ...")
    model = DSS(DSSConfig(num_iterations=20, latent_dim=10, alpha=0.1, seed=SEED))
    trainer = DSSTrainer(
        model,
        TrainingConfig(epochs=TRAIN_EPOCHS, batch_size=40, learning_rate=1e-2, gradient_clip=1e-2, seed=SEED),
    )
    start = time.perf_counter()
    trainer.fit(dataset.train, dataset.validation[:40], verbose=True)
    print(f"   training took {time.perf_counter() - start:.1f}s")
    metrics = evaluate_model(model, dataset.test[:60])
    print(f"   test residual {metrics.residual_mean:.4f} ± {metrics.residual_std:.4f}, "
          f"relative error {metrics.relative_error_mean:.3f}")

    # ------------------------------------------------------------------ #
    # 4. compare CG, DDM-LU and DDM-GNN on the global problem
    # ------------------------------------------------------------------ #
    print("4) solving the global problem with the three solvers of the paper ...")
    rows = []
    for kind in ("none", "ddm-lu", "ddm-gnn"):
        session = prepare(
            problem,
            SolverConfig(preconditioner=kind, subdomain_size=SUBDOMAIN_SIZE, overlap=2, tolerance=1e-6),
            model=model if kind == "ddm-gnn" else None,
        )
        result = session.solve()
        label = {"none": "CG", "ddm-lu": "PCG-DDM-LU", "ddm-gnn": "PCG-DDM-GNN"}[kind]
        rows.append([label, result.iterations, f"{result.final_relative_residual:.2e}",
                     f"{result.elapsed_time:.2f}s", result.converged])
    print(format_table(["solver", "iterations", "final rel. residual", "time", "converged"], rows))
    print("\nThe hybrid solver converges to the requested tolerance with far fewer"
          "\niterations than plain CG, at the cost of slightly more iterations than"
          "\nthe exact DDM-LU preconditioner — the behaviour reported in the paper.")

    # ------------------------------------------------------------------ #
    # 5. serving: amortise the setup over many right-hand sides
    # ------------------------------------------------------------------ #
    print("5) serving 8 fresh right-hand sides against one prepared session ...")
    session = prepare(
        problem,
        SolverConfig(preconditioner="ddm-lu", subdomain_size=SUBDOMAIN_SIZE, overlap=2, tolerance=1e-6),
    )
    rhs_batch = np.random.default_rng(SEED + 1).normal(size=(8, problem.num_dofs))
    batch = session.solve_many(rhs_batch)
    print(f"   setup once: {session.setup_time:.3f}s; then {batch.summary()}")
    print(f"   per-RHS serving cost {batch.elapsed_time / batch.num_rhs * 1e3:.1f}ms — the partition,"
          f"\n   local factorisations and coarse space were built exactly once.")


if __name__ == "__main__":
    main()
