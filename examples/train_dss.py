#!/usr/bin/env python
"""Train a Deep Statistical Solver from scratch and inspect its behaviour.

This is the "model development" workflow of the paper (Sec. IV-A/IV-B):

1. generate a dataset of local sub-problems by running the classical two-level
   ASM-PCG solver on many random global problems;
2. train DSSθ with the paper's optimisation recipe (Adam, gradient clipping,
   ReduceLROnPlateau, physics-informed residual loss summed over the
   intermediate states);
3. report the test metrics the paper reports (residual and relative error) and
   save a versioned checkpoint (``repro.gnn.checkpoint``) so the benchmarks,
   the solver layer (``SolverConfig(checkpoint=...)``) and the other examples
   can reuse the trained model — and so an interrupted run can resume.

All sizes are command-line flags; the defaults run in a few minutes on a CPU.
The paper-scale settings would be ``--global-problems 500 --element-size 0.024
--subdomain-size 1000 --epochs 400 --iterations 30``.

Run:  python examples/train_dss.py --epochs 15
      python examples/train_dss.py --epochs 30 --resume   # continue a run

For the fully declarative version of this workflow (spec file, config-hashed
artifact directory, bench + report) use ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from pathlib import Path

from repro.core import generate_dataset
from repro.gnn import DSS, DSSConfig, DSSTrainer, TrainingConfig, evaluate_model, load_checkpoint


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--global-problems", type=int, default=4, help="number of global Poisson problems to harvest")
    parser.add_argument("--element-size", type=float, default=0.07, help="mesh element size")
    parser.add_argument("--subdomain-size", type=int, default=110, help="target sub-domain size (1000 in the paper)")
    parser.add_argument("--overlap", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=20, help="number of message-passing blocks k̄")
    parser.add_argument("--latent-dim", type=int, default=10, help="latent dimension d")
    parser.add_argument("--alpha", type=float, default=0.1, help="update damping α (1e-3 in the paper)")
    parser.add_argument("--epochs", type=int, default=15)
    parser.add_argument("--batch-size", type=int, default=40)
    parser.add_argument("--learning-rate", type=float, default=1e-2)
    parser.add_argument("--max-train-samples", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=str, default="dss_trained.npz",
                        help="where to save the checkpoint (versioned repro.gnn.checkpoint format)")
    parser.add_argument("--resume", action="store_true",
                        help="resume from an existing checkpoint at --output (continues to --epochs)")
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)

    print("generating the dataset of local sub-problems ...")
    start = time.perf_counter()
    dataset = generate_dataset(
        num_global_problems=args.global_problems,
        mesh_element_size=args.element_size,
        subdomain_size=args.subdomain_size,
        overlap=args.overlap,
        rng=rng,
    )
    print(f"  train/val/test sizes: {dataset.sizes}  ({time.perf_counter() - start:.1f}s)")

    if args.resume and Path(args.output).exists():
        model, trainer = load_checkpoint(args.output).build_trainer()
        print(f"resuming from {args.output} at epoch {trainer.epochs_done} ({model.summary()})")
        print("note: --resume keeps the checkpoint's architecture and training recipe; "
              "model/optimiser flags other than --epochs are ignored")
    else:
        model = DSS(DSSConfig(num_iterations=args.iterations, latent_dim=args.latent_dim, alpha=args.alpha, seed=args.seed))
        trainer = DSSTrainer(
            model,
            TrainingConfig(
                epochs=args.epochs,
                batch_size=args.batch_size,
                learning_rate=args.learning_rate,
                gradient_clip=1e-2,
                scheduler_patience=4,
                seed=args.seed,
            ),
        )
        print(f"model: {model.summary()}")

    start = time.perf_counter()
    history = trainer.fit(
        dataset.train[: args.max_train_samples],
        dataset.validation[:60],
        epochs=args.epochs,
        verbose=True,
        checkpoint_path=args.output,
    )
    print(f"training took {time.perf_counter() - start:.1f}s over {len(history)} epochs")

    metrics = evaluate_model(model, dataset.test[:150])
    print("\ntest-set metrics (paper Sec. IV-B reports residual 0.0058 ± 0.002, relative error 0.13 ± 0.2):")
    print(f"  residual       {metrics.residual_mean:.4f} ± {metrics.residual_std:.4f}")
    print(f"  relative error {metrics.relative_error_mean:.3f} ± {metrics.relative_error_std:.3f}")

    trainer.save_checkpoint(args.output)
    print(f"\ncheckpoint saved to {args.output} (reload with repro.gnn.load_model, or serve it "
          f"via repro.solvers: prepare(problem, SolverConfig(checkpoint='{args.output}')))")


if __name__ == "__main__":
    main()
