#!/usr/bin/env python
"""Scalability study: iteration counts vs problem size, sub-domain size and overlap.

This reproduces the *structure* of the paper's Table I on a CPU-friendly
scale: for several global problem sizes N and sub-domain sizes Ns, it reports
the mean ± std iteration count of PCG-DDM-GNN, PCG-DDM-LU and plain CG over a
few random problems, plus the effect of a larger overlap.

The qualitative conclusions of the paper are visible directly in the output:

* both DDM preconditioners keep the iteration count nearly flat as N grows,
  while plain CG degrades;
* DDM-GNN needs only slightly more iterations than DDM-LU;
* a larger overlap reduces the iteration count.

Run:  python examples/scaling_study.py [--repetitions 3]
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

from repro.fem import random_poisson_problem
from repro.mesh import mesh_for_target_size
from repro.solvers import SolverConfig, prepare
from repro.utils import format_mean_std, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[500, 1200, 2500], help="target global sizes N")
    parser.add_argument("--subdomain-sizes", type=int, nargs="+", default=[60, 110, 220], help="target Ns values")
    parser.add_argument("--overlaps", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--repetitions", type=int, default=2, help="random problems per configuration")
    parser.add_argument("--tolerance", type=float, default=1e-6)
    parser.add_argument("--element-size", type=float, default=0.07)
    args = parser.parse_args()

    from common import get_pretrained_model  # benchmarks/common.py

    model = get_pretrained_model()
    rng = np.random.default_rng(0)

    rows = []
    for target_n in args.sizes:
        mesh = mesh_for_target_size(target_n, element_size=args.element_size, rng=rng)
        problems = [random_poisson_problem(mesh, rng=rng) for _ in range(args.repetitions)]
        for ns in args.subdomain_sizes:
            for overlap in args.overlaps:
                if overlap != args.overlaps[0] and ns != args.subdomain_sizes[len(args.subdomain_sizes) // 2]:
                    continue  # the paper only varies the overlap at the reference Ns
                iteration_counts = {"ddm-gnn": [], "ddm-lu": [], "none": []}
                k_values = []
                for problem in problems:
                    for kind in iteration_counts:
                        session = prepare(
                            problem,
                            SolverConfig(
                                preconditioner=kind,
                                subdomain_size=ns,
                                overlap=overlap,
                                tolerance=args.tolerance,
                                max_iterations=4000,
                            ),
                            model=model if kind == "ddm-gnn" else None,
                        )
                        result = session.solve()
                        iteration_counts[kind].append(result.iterations)
                        if kind == "ddm-lu":
                            k_values.append(result.info["num_subdomains"])
                rows.append(
                    [
                        mesh.num_nodes,
                        ns,
                        int(np.mean(k_values)),
                        overlap,
                        format_mean_std(np.mean(iteration_counts["ddm-gnn"]), np.std(iteration_counts["ddm-gnn"]), 0),
                        format_mean_std(np.mean(iteration_counts["ddm-lu"]), np.std(iteration_counts["ddm-lu"]), 0),
                        format_mean_std(np.mean(iteration_counts["none"]), np.std(iteration_counts["none"]), 0),
                    ]
                )
    print(format_table(
        ["N", "Ns", "K", "overlap", "DDM-GNN", "DDM-LU", "CG"],
        rows,
        title="Iteration counts to reach the tolerance (structure of paper Table I)",
    ))


if __name__ == "__main__":
    main()
