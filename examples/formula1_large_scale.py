#!/usr/bin/env python
"""Out-of-distribution large-scale solve on a "Formula-1" shaped domain (paper Fig. 5).

The paper's hardest generalisation test is a caricatural Formula-1 mesh with
holes (cockpit, wing stripes), far larger than anything in the training set,
solved down to a relative residual of 1e-9.  This example reproduces the
experiment at a configurable scale: the domain has the same shape and holes,
the DSS model is loaded from the benchmark artifact (or trained quickly if it
is missing), and the residual histories of CG, PCG-DDM-LU and PCG-DDM-GNN are
printed so the convergence curves can be compared.

Run:  python examples/formula1_large_scale.py [--length 8] [--element-size 0.08]
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

from repro.solvers import SolverConfig, prepare
from repro.fem import PoissonProblem, random_boundary, random_forcing
from repro.mesh import formula1_mesh
from repro.utils import format_table


def load_model():
    """Load the pretrained DSS artifact used by the benchmarks (train if absent)."""
    from common import get_pretrained_model  # benchmarks/common.py

    return get_pretrained_model()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=float, default=8.0, help="car length (controls the mesh size)")
    parser.add_argument("--element-size", type=float, default=0.09, help="target element size")
    parser.add_argument("--tolerance", type=float, default=1e-9, help="relative residual tolerance (1e-9 in the paper)")
    parser.add_argument("--subdomain-size", type=int, default=110, help="target sub-domain size")
    args = parser.parse_args()

    print("building the Formula-1 mesh with cockpit and wing-stripe holes ...")
    mesh = formula1_mesh(length=args.length, element_size=args.element_size, with_holes=True)
    print(f"  {mesh.num_nodes} nodes, {mesh.num_triangles} triangles")

    rng = np.random.default_rng(1)
    scale = args.length / 2.0
    problem = PoissonProblem.from_fields(mesh, random_forcing(rng, scale=scale), random_boundary(rng, scale=scale))

    model = load_model()
    print(f"  DSS model: {model.summary()}")

    histories = {}
    rows = []
    for kind, label in (("none", "CG"), ("ddm-lu", "PCG-DDM-LU"), ("ddm-gnn", "PCG-DDM-GNN")):
        session = prepare(
            problem,
            SolverConfig(
                preconditioner=kind,
                subdomain_size=args.subdomain_size,
                overlap=2,
                tolerance=args.tolerance,
                max_iterations=5000,
            ),
            model=model if kind == "ddm-gnn" else None,
        )
        result = session.solve()
        histories[label] = result.residual_history
        k = result.info.get("num_subdomains", "-")
        rows.append([label, k, result.iterations, f"{result.final_relative_residual:.2e}", f"{result.elapsed_time:.2f}s"])
    print(format_table(["solver", "K", "iterations", "final rel. residual", "time"], rows,
                       title=f"\nFormula-1 problem, N = {mesh.num_nodes}, tolerance {args.tolerance:g}"))

    # print the residual-vs-iteration series (the curves of Fig. 5b)
    print("\nrelative residual every 5 iterations (Fig. 5b series):")
    for label, history in histories.items():
        samples = ", ".join(f"{h:.1e}" for h in history[::5][:20])
        print(f"  {label:14s}: {samples}")


if __name__ == "__main__":
    main()
