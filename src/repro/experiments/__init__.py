"""Reproducible experiment harness (spec → train → checkpoint → bench → report).

Public surface:

* :class:`~repro.experiments.spec.ExperimentSpec` — declarative description
  of one experiment (problem family, mesh scale, DSS architecture, training
  recipe, bench sizes) with a stable config hash.
* :class:`~repro.experiments.harness.ExperimentHarness`,
  :class:`~repro.experiments.harness.ExperimentResult` — the end-to-end
  driver writing artifacts under ``benchmarks/artifacts/<config-hash>/``.
* ``python -m repro.experiments`` — the CLI (``run``, ``hash``, ``show``,
  ``list``).
"""

from .harness import ExperimentHarness, ExperimentResult, default_artifacts_root
from .spec import ExperimentSpec

__all__ = [
    "ExperimentSpec",
    "ExperimentHarness",
    "ExperimentResult",
    "default_artifacts_root",
]
