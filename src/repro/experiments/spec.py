"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the single source of truth for one end-to-end
run: which problem family to harvest, at what mesh/sub-domain scale, which
DSS architecture to train, for how long, and which global sizes to bench the
resulting preconditioner on.  Specs are plain JSON on disk::

    {
      "name": "perf-smoke",
      "problem_family": "poisson",
      "mesh_element_size": 0.07,
      "subdomain_size": 110,
      "num_iterations": 20,
      "latent_dim": 10,
      "epochs": 6,
      "bench_sizes": [640]
    }

Every field that influences the trained artifact (dataset recipe, model
architecture, training hyper-parameters, seed) feeds the spec's
``config_hash``; cosmetic fields (``name``) and bench-only fields do not, so
re-benching the same model never invalidates a cached checkpoint.  The hash
is the directory name under which all artifacts of the run live — and the
``actions/cache`` key CI uses to reuse trained checkpoints across pushes.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..gnn.checkpoint import config_hash
from ..gnn.dss import DSSConfig
from ..gnn.training import TrainingConfig
from ..solvers.config import SolverConfig

__all__ = ["ExperimentSpec"]

#: spec fields that do NOT affect the trained artifact (excluded from the hash)
_NON_HASH_FIELDS = ("name", "bench_sizes", "bench_repeats", "tolerance")


@dataclass(frozen=True)
class ExperimentSpec:
    """Full description of a seed→mesh→train→checkpoint→bench experiment."""

    name: str = "experiment"

    # -- dataset (harvested from classical ASM-PCG solves) -------------------
    problem_family: str = "poisson"
    problem_kwargs: Dict = field(default_factory=dict)
    num_global_problems: int = 2
    mesh_element_size: float = 0.1
    mesh_radius: float = 1.0
    subdomain_size: int = 80
    overlap: int = 2

    # -- model architecture ---------------------------------------------------
    num_iterations: int = 10
    latent_dim: int = 10
    alpha: float = 0.1
    edge_attr_dim: int = 3
    node_input_dim: int = 1

    # -- training recipe ------------------------------------------------------
    epochs: int = 4
    batch_size: int = 40
    learning_rate: float = 1e-2
    gradient_clip: float = 1e-2
    scheduler_patience: int = 4
    max_train_samples: Optional[int] = None
    max_validation_samples: int = 40
    seed: int = 0

    # -- bench (does not affect the artifact hash) ----------------------------
    bench_sizes: Tuple[int, ...] = (400,)
    bench_repeats: int = 3
    tolerance: float = 1e-3

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.num_global_problems < 1:
            raise ValueError("num_global_problems must be >= 1")
        object.__setattr__(self, "bench_sizes", tuple(int(n) for n in self.bench_sizes))

    # -- derived configurations ----------------------------------------------
    def dss_config(self) -> DSSConfig:
        return DSSConfig(
            num_iterations=self.num_iterations,
            latent_dim=self.latent_dim,
            alpha=self.alpha,
            seed=self.seed,
            edge_attr_dim=self.edge_attr_dim,
            node_input_dim=self.node_input_dim,
        )

    def training_config(self) -> TrainingConfig:
        return TrainingConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            gradient_clip=self.gradient_clip,
            scheduler_patience=self.scheduler_patience,
            seed=self.seed,
        )

    def solver_config(self, preconditioner: str, krylov: str = "cg") -> SolverConfig:
        """The :class:`~repro.solvers.config.SolverConfig` this spec benches with.

        This is the single construction path shared with the benchmark
        harnesses: ``prepare(problem, spec.solver_config(kind), model=...)``
        builds the same session whether the caller is the experiment harness,
        ``bench_perf.py`` or an ad-hoc script.
        """
        return SolverConfig(
            preconditioner=preconditioner,
            krylov=krylov,
            subdomain_size=self.subdomain_size,
            overlap=self.overlap,
            tolerance=self.tolerance,
            max_iterations=4000,
            seed=self.seed,
        )

    # -- identity -------------------------------------------------------------
    @property
    def config_hash(self) -> str:
        """SHA-256 over every artifact-relevant field (full hex digest)."""
        relevant = {
            key: value
            for key, value in dataclasses.asdict(self).items()
            if key not in _NON_HASH_FIELDS
        }
        return config_hash(relevant)

    @property
    def short_hash(self) -> str:
        """First 12 hex chars — the artifact directory name and CI cache key."""
        return self.config_hash[:12]

    # -- (de)serialisation ----------------------------------------------------
    def to_dict(self) -> Dict:
        data = dataclasses.asdict(self)
        data["bench_sizes"] = list(self.bench_sizes)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown experiment-spec fields: {unknown} (known: {sorted(known)})")
        return cls(**data)

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "ExperimentSpec":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ValueError(f"experiment spec '{path}' must be a JSON object")
        return cls.from_dict(data)

    def save_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
