"""The experiment harness: seed → mesh → train → checkpoint → bench → report.

One :class:`ExperimentHarness` run turns a declarative
:class:`~repro.experiments.spec.ExperimentSpec` into a durable artifact
directory::

    benchmarks/artifacts/<short-hash>/
        spec.json         the resolved spec + full config hash
        checkpoint.npz    versioned model+trainer checkpoint (repro.gnn.checkpoint)
        metrics.json      test-set metrics + per-epoch training history
        bench.json        solver records (same schema as benchmarks/bench_perf.py)
        events.jsonl      convergence telemetry of the bench solves
                          (repro.obs events; inspect with ``python -m repro.obs``)
        report.md         human-readable summary of all of the above

Runs are resumable and cache-friendly: an existing checkpoint whose embedded
spec hash matches is picked up where it left off (training continues from the
saved epoch, bit-matching an uninterrupted run), and a checkpoint already at
the target epoch count skips training entirely — which is what lets CI
restore the artifact from ``actions/cache`` and go straight to benching.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..core.dataset import generate_dataset
from ..gnn.checkpoint import CheckpointError, load_checkpoint
from ..gnn.dss import DSS
from ..gnn.training import DSSTrainer, evaluate_model
from ..mesh.shapes import mesh_for_target_size
from ..obs import events as obs_events
from ..problems import make_problem
from ..solvers import prepare, preconditioner_spec
from .spec import ExperimentSpec

__all__ = ["ExperimentResult", "ExperimentHarness", "default_artifacts_root"]

#: solvers benched against the freshly trained checkpoint
BENCH_SOLVERS = ("ic0", "ddm-lu", "ddm-gnn")


def default_artifacts_root() -> Path:
    """``benchmarks/artifacts`` when run from a checkout, else ``./artifacts``."""
    repo_root = Path(__file__).resolve().parents[3]
    candidate = repo_root / "benchmarks" / "artifacts"
    if candidate.parent.is_dir():
        return candidate
    return Path.cwd() / "artifacts"


@dataclass
class ExperimentResult:
    """Everything a caller (or the CLI) needs to know about a finished run."""

    spec: ExperimentSpec
    config_hash: str
    artifact_dir: Path
    checkpoint_path: Path
    trained_epochs: int
    resumed_from_epoch: int
    metrics: Dict[str, float]
    bench_records: List[Dict] = field(default_factory=list)
    elapsed: Dict[str, float] = field(default_factory=dict)


class ExperimentHarness:
    """Drives one spec end-to-end and materialises its artifact directory."""

    def __init__(self, spec: ExperimentSpec, artifacts_root: Optional[Path] = None) -> None:
        self.spec = spec
        self.artifacts_root = Path(artifacts_root) if artifacts_root else default_artifacts_root()
        self.artifact_dir = self.artifacts_root / spec.short_hash
        self.checkpoint_path = self.artifact_dir / "checkpoint.npz"

    # ------------------------------------------------------------------ #
    def run(
        self,
        force_retrain: bool = False,
        skip_bench: bool = False,
        verbose: bool = True,
    ) -> ExperimentResult:
        """Execute (or resume) the full pipeline and write every artifact."""
        spec = self.spec
        say = print if verbose else (lambda *a, **k: None)
        self.artifact_dir.mkdir(parents=True, exist_ok=True)
        self._write_json("spec.json", {"config_hash": spec.config_hash, "spec": spec.to_dict()})
        elapsed: Dict[str, float] = {}

        # -- resume decision -------------------------------------------------
        model, trainer, resumed_from = self._restore_or_create(force_retrain, say)

        # -- dataset + training ---------------------------------------------
        if trainer.epochs_done < spec.epochs:
            t0 = time.perf_counter()
            say(f"[{spec.name}] harvesting dataset: {spec.num_global_problems} "
                f"'{spec.problem_family}' problems, element size {spec.mesh_element_size}")
            dataset = self._generate_dataset()
            elapsed["dataset_s"] = time.perf_counter() - t0
            train = dataset.train[: spec.max_train_samples] if spec.max_train_samples else dataset.train
            validation = dataset.validation[: spec.max_validation_samples]
            say(f"[{spec.name}] training epochs {trainer.epochs_done + 1}..{spec.epochs} "
                f"on {len(train)} local problems ({model.summary()})")
            t0 = time.perf_counter()
            trainer.fit(
                train,
                validation,
                epochs=spec.epochs,
                verbose=verbose,
                checkpoint_path=str(self.checkpoint_path),
                checkpoint_metadata={"spec_hash": spec.config_hash, "spec_name": spec.name},
            )
            elapsed["train_s"] = time.perf_counter() - t0
            test = dataset.test[: spec.max_validation_samples]
            metrics = evaluate_model(model, test).as_dict() if test else {}
        else:
            say(f"[{spec.name}] checkpoint already trained to epoch {trainer.epochs_done} — skipping training")
            metrics = self._read_json("metrics.json").get("test_metrics", {})
            if not metrics:
                # a previous run was interrupted after the final checkpoint but
                # before metrics.json landed — recompute instead of losing them
                say(f"[{spec.name}] stored metrics missing — re-evaluating the checkpointed model")
                t0 = time.perf_counter()
                test = self._generate_dataset().test[: spec.max_validation_samples]
                metrics = evaluate_model(model, test).as_dict() if test else {}
                elapsed["evaluate_s"] = time.perf_counter() - t0

        self._write_json("metrics.json", {
            "config_hash": spec.config_hash,
            "trained_epochs": trainer.epochs_done,
            "test_metrics": metrics,
            "history": [
                {"epoch": s.epoch, "train_loss": s.train_loss,
                 "validation_residual": s.validation_residual,
                 "learning_rate": s.learning_rate}
                for s in trainer.history
            ],
        })

        # -- bench ------------------------------------------------------------
        bench_records: List[Dict] = []
        if not skip_bench:
            t0 = time.perf_counter()
            # bench solves run with convergence telemetry on; the captured
            # event stream becomes part of the artifact (events.jsonl)
            with obs_events.capture_events() as ring:
                bench_records = self._bench(model, say)
            ring.dump_jsonl(self.artifact_dir / "events.jsonl")
            elapsed["bench_s"] = time.perf_counter() - t0
            self._write_json("bench.json", {
                "config_hash": spec.config_hash,
                "tolerance": spec.tolerance,
                "schema": ["solver", "n", "K", "setup_s", "apply_ms_p50",
                           "resolve_ms_p50", "iters", "total_s"],
                "records": bench_records,
            })

        result = ExperimentResult(
            spec=spec,
            config_hash=spec.config_hash,
            artifact_dir=self.artifact_dir,
            checkpoint_path=self.checkpoint_path,
            trained_epochs=trainer.epochs_done,
            resumed_from_epoch=resumed_from,
            metrics=metrics,
            bench_records=bench_records,
            elapsed=elapsed,
        )
        self._write_report(result)
        say(f"[{spec.name}] artifacts in {self.artifact_dir}")
        return result

    # ------------------------------------------------------------------ #
    def _generate_dataset(self):
        """Harvest the spec's training dataset (deterministic in the spec seed)."""
        spec = self.spec
        return generate_dataset(
            num_global_problems=spec.num_global_problems,
            mesh_element_size=spec.mesh_element_size,
            mesh_radius=spec.mesh_radius,
            subdomain_size=spec.subdomain_size,
            overlap=spec.overlap,
            rng=np.random.default_rng(spec.seed),
            problem_family=spec.problem_family,
            problem_kwargs=dict(spec.problem_kwargs),
        )

    def _restore_or_create(self, force_retrain: bool, say):
        """Build a fresh (model, trainer) or restore one from the checkpoint."""
        spec = self.spec
        if not force_retrain and self.checkpoint_path.exists():
            try:
                checkpoint = load_checkpoint(self.checkpoint_path)
                if checkpoint.metadata.get("spec_hash") == spec.config_hash:
                    model, trainer = checkpoint.build_trainer()
                    say(f"[{spec.name}] resuming from {self.checkpoint_path} "
                        f"(epoch {trainer.epochs_done}/{spec.epochs})")
                    return model, trainer, trainer.epochs_done
                say(f"[{spec.name}] checkpoint belongs to a different spec — retraining")
            except CheckpointError as exc:
                say(f"[{spec.name}] unusable checkpoint ({exc}) — retraining")
        model = DSS(spec.dss_config())
        trainer = DSSTrainer(model, spec.training_config())
        return model, trainer, 0

    def _bench(self, model: DSS, say) -> List[Dict]:
        """Per-solver setup/apply/iteration records, bench_perf-compatible.

        Sessions are built through ``spec.solver_config`` — the same code
        path the benchmarks use — and benched on two axes: the classical
        per-apply cost, and the amortised repeated-RHS cost
        (``resolve_ms_p50``: median wall time of a full re-solve on a fresh
        right-hand side against the already-prepared session).
        """
        spec = self.spec
        records: List[Dict] = []
        rng = np.random.default_rng(spec.seed + 1)
        # separate stream for the fresh resolve RHS so timing knobs
        # (bench_repeats, solver list) never perturb the benched problems
        resolve_rng = np.random.default_rng(spec.seed + 2)
        for target_n in spec.bench_sizes:
            mesh = mesh_for_target_size(target_n, element_size=spec.mesh_element_size, rng=rng)
            problem = make_problem(
                spec.problem_family, mesh=mesh, rng=rng, **dict(spec.problem_kwargs)
            )
            symmetric = getattr(problem, "symmetric", True)
            krylov = "cg" if symmetric else "gmres"
            say(f"[{spec.name}] bench n={problem.num_dofs} "
                f"({', '.join(BENCH_SOLVERS)}, tolerance {spec.tolerance:g})")
            for kind in BENCH_SOLVERS:
                if not symmetric and preconditioner_spec(kind).spd_only:
                    say(f"[{spec.name}]   skipping {kind} (SPD-only) on the nonsymmetric problem")
                    continue
                config = spec.solver_config(kind, krylov=krylov)
                # telemetry is hash-excluded, so this perturbs nothing
                config.obs = {"convergence": True}
                session = prepare(
                    problem,
                    config,
                    model=model if kind == "ddm-gnn" else None,
                )
                preconditioner = session.preconditioner
                preconditioner.apply(problem.rhs)  # warm-up
                times = []
                for _ in range(max(1, spec.bench_repeats)):
                    t0 = time.perf_counter()
                    preconditioner.apply(problem.rhs)
                    times.append(time.perf_counter() - t0)
                result = session.solve()
                resolve_times = []
                for _ in range(max(1, spec.bench_repeats)):
                    fresh_rhs = resolve_rng.normal(size=problem.num_dofs)
                    t0 = time.perf_counter()
                    session.solve(fresh_rhs)
                    resolve_times.append(time.perf_counter() - t0)
                records.append({
                    "solver": kind,
                    "n": int(problem.num_dofs),
                    "K": int(getattr(preconditioner, "num_subdomains", 0)),
                    "setup_s": round(session.setup_time, 6),
                    "apply_ms_p50": round(float(np.median(times)) * 1e3, 4),
                    "resolve_ms_p50": round(float(np.median(resolve_times)) * 1e3, 4),
                    "iters": int(result.iterations),
                    "total_s": round(result.elapsed_time, 6),
                })
        return records

    # ------------------------------------------------------------------ #
    def _write_report(self, result: ExperimentResult) -> None:
        spec = result.spec
        lines = [
            f"# Experiment report: {spec.name}",
            "",
            f"- config hash: `{result.config_hash}` (artifacts in `{result.artifact_dir.name}/`)",
            f"- problem family: `{spec.problem_family}`, element size {spec.mesh_element_size}, "
            f"sub-domain size {spec.subdomain_size}, overlap {spec.overlap}",
            f"- model: k̄={spec.num_iterations}, d={spec.latent_dim}, α={spec.alpha}",
            f"- trained epochs: {result.trained_epochs}"
            + (f" (resumed from {result.resumed_from_epoch})" if result.resumed_from_epoch else ""),
            "",
        ]
        if result.metrics:
            lines += [
                "## Test metrics",
                "",
                *(f"- {key}: {value:.6g}" for key, value in result.metrics.items()),
                "",
            ]
        if result.bench_records:
            lines += [
                f"## Bench (tolerance {spec.tolerance:g})",
                "",
                "| solver | n | K | setup_s | apply_ms_p50 | resolve_ms_p50 | iters | total_s |",
                "|---|---|---|---|---|---|---|---|",
                *(
                    f"| {r['solver']} | {r['n']} | {r['K']} | {r['setup_s']} "
                    f"| {r['apply_ms_p50']} | {r.get('resolve_ms_p50', '-')} "
                    f"| {r['iters']} | {r['total_s']} |"
                    for r in result.bench_records
                ),
                "",
            ]
        if result.elapsed:
            lines += [
                "## Wall time",
                "",
                *(f"- {stage}: {seconds:.1f}s" for stage, seconds in result.elapsed.items()),
                "",
            ]
        (self.artifact_dir / "report.md").write_text("\n".join(lines), encoding="utf-8")

    def _write_json(self, name: str, payload: Dict) -> None:
        (self.artifact_dir / name).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def _read_json(self, name: str) -> Dict:
        path = self.artifact_dir / name
        if not path.exists():
            return {}
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            return {}
