"""Command-line entry point: ``python -m repro.experiments``.

Sub-commands::

    run   --spec spec.json [--artifacts-root DIR] [--force-retrain]
          [--skip-bench] [--quiet]
              drive the full seed→mesh→train→checkpoint→bench→report
              pipeline (resumes from an existing matching checkpoint)

    hash  --spec spec.json [--full]
              print the spec's config hash (the artifact directory name and
              the CI cache key) and exit — used by the workflow to key
              ``actions/cache`` before anything is trained

    show  --spec spec.json
              print the resolved spec, its hash and artifact paths

    list  [--artifacts-root DIR]
              list existing artifact directories with their specs
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .harness import ExperimentHarness, default_artifacts_root
from .spec import ExperimentSpec


def _add_spec_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--spec", type=Path, required=True, help="path to the experiment spec JSON")


def _show_march_records(bench_path: Path) -> None:
    """Print the amortised time-marching records from ``BENCH_perf.json``.

    ``benchmarks/bench_march.py`` appends records whose ``solver`` starts with
    ``march`` (e.g. ``march-ddm-lu``); this renders their steps-aware summary
    the same way :meth:`MarchResult.summary` does, so ``repro.experiments
    show`` surfaces the amortised per-step cost next to the other bench
    artifacts.
    """
    if not bench_path.exists():
        return
    try:
        payload = json.loads(bench_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError):
        return
    records = [
        r for r in payload.get("records", [])
        if str(r.get("solver", "")).startswith("march")
    ]
    if not records:
        return
    print("\ntime marching (amortized per step):")
    for record in records:
        line = (
            f"  {record.get('solver', '?'):<14} n={record.get('n', '?'):<6} "
            f"steps={record.get('steps', '?'):<4} "
            f"{float(record.get('step_ms_p50', float('nan'))):8.3f} ms/step"
        )
        speedup = record.get("amortized_speedup")
        if speedup is not None:
            line += f"  ({float(speedup):.1f}x vs fresh prepare+solve)"
        if record.get("bit_identical") is True:
            line += "  [bit-identical]"
        print(line)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproducible experiment harness: train, checkpoint and bench DSS preconditioners.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run (or resume) an experiment end-to-end")
    _add_spec_argument(run)
    run.add_argument("--artifacts-root", type=Path, default=None,
                     help="artifact root directory (default: benchmarks/artifacts)")
    run.add_argument("--force-retrain", action="store_true",
                     help="ignore any existing checkpoint and train from scratch")
    run.add_argument("--skip-bench", action="store_true", help="stop after training + metrics")
    run.add_argument("--quiet", action="store_true", help="suppress progress output")

    hash_cmd = sub.add_parser("hash", help="print the spec's config hash (CI cache key)")
    _add_spec_argument(hash_cmd)
    hash_cmd.add_argument("--full", action="store_true", help="print the full 64-char digest")

    show = sub.add_parser("show", help="print the resolved spec and artifact paths")
    _add_spec_argument(show)
    show.add_argument("--artifacts-root", type=Path, default=None)

    list_cmd = sub.add_parser("list", help="list existing artifact directories")
    list_cmd.add_argument("--artifacts-root", type=Path, default=None)

    args = parser.parse_args(argv)

    if args.command == "list":
        root = args.artifacts_root or default_artifacts_root()
        if not root.is_dir():
            print(f"no artifacts directory at {root}")
            return 0
        rows = []
        for directory in sorted(root.iterdir()):
            spec_file = directory / "spec.json"
            if not directory.is_dir() or not spec_file.exists():
                continue
            try:
                payload = json.loads(spec_file.read_text(encoding="utf-8"))
                name = payload.get("spec", {}).get("name", "?")
            except json.JSONDecodeError:
                name = "<corrupt spec.json>"
            has_checkpoint = (directory / "checkpoint.npz").exists()
            status = "checkpoint" if has_checkpoint else "no checkpoint"
            if (directory / "bench.json").exists():
                status += " +bench"
            rows.append((directory.name, name, status))
        if not rows:
            print(f"no experiment artifacts under {root}")
        for short_hash, name, status in rows:
            print(f"{short_hash}  {name:<24} {status}")
        return 0

    spec = ExperimentSpec.from_json(args.spec)

    if args.command == "hash":
        print(spec.config_hash if args.full else spec.short_hash)
        return 0

    if args.command == "show":
        harness = ExperimentHarness(spec, artifacts_root=args.artifacts_root)
        print(json.dumps(spec.to_dict(), indent=2))
        print(f"\nconfig hash : {spec.config_hash}")
        print(f"artifact dir: {harness.artifact_dir}")
        print(f"checkpoint  : {harness.checkpoint_path}"
              + ("  (exists)" if harness.checkpoint_path.exists() else "  (not trained yet)"))
        print("\nbench artifacts:")
        repo_root = Path(__file__).resolve().parents[3]
        for label, path in (
            ("run bench   ", harness.artifact_dir / "bench.json"),
            ("run report  ", harness.artifact_dir / "report.md"),
            ("perf bench  ", repo_root / "BENCH_perf.json"),
            ("serve bench ", repo_root / "BENCH_serve.json"),
        ):
            status = "exists" if path.exists() else "missing"
            print(f"  {label}: {path}  ({status})")
        _show_march_records(repo_root / "BENCH_perf.json")
        return 0

    harness = ExperimentHarness(spec, artifacts_root=args.artifacts_root)
    result = harness.run(
        force_retrain=args.force_retrain,
        skip_bench=args.skip_bench,
        verbose=not args.quiet,
    )
    if not args.quiet:
        print(f"\ncheckpoint: {result.checkpoint_path}")
        print(f"report    : {result.artifact_dir / 'report.md'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
