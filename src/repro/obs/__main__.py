"""CLI over convergence-telemetry JSON-lines dumps.

The experiment harness (and anything else holding an :class:`EventRing`)
writes telemetry as ``events.jsonl``.  This module tails and summarizes
those dumps::

    python -m repro.obs tail benchmarks/artifacts/<run>/events.jsonl -n 20
    python -m repro.obs summary benchmarks/artifacts/<run>/events.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .events import iter_jsonl, summarize


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect convergence-telemetry JSON-lines dumps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tail = sub.add_parser("tail", help="print the last N events as JSON lines")
    tail.add_argument("path", help="events.jsonl file to read")
    tail.add_argument("-n", "--lines", type=int, default=20, help="events to show (default 20)")
    tail.add_argument("--kind", default=None, help="only events of this kind")

    summary = sub.add_parser("summary", help="aggregate counts / failure reasons / iterations")
    summary.add_argument("path", help="events.jsonl file to read")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        events = list(iter_jsonl(args.path))
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2

    if args.command == "tail":
        if args.kind is not None:
            events = [e for e in events if e.get("kind") == args.kind]
        for event in events[-max(0, args.lines):]:
            print(json.dumps(event, sort_keys=True))
        return 0

    print(json.dumps(summarize(events), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
