"""Zero-dependency request tracing.

A :class:`Span` is a named interval on the *monotonic* clock
(``time.perf_counter``) with attributes, typed events, and children.  Spans
form a tree; the root of one tree is a *trace* identified by a ``trace_id``
shared by every span in it.  A context-local *tracer* (one ``ContextVar``)
holds the currently-active span so instrumented code deep in the stack —
``SolverSession.solve``, ``AdditiveSchwarzPreconditioner.apply`` — can attach
children without plumbing a span argument through every signature.

Design constraints, in priority order:

1. **Off means free.**  Tracing is opt-in via :func:`enable_tracing`.  When
   disabled (the default), every instrumentation point reduces to one module
   attribute read and returns a shared no-op span — no allocation, no
   ``ContextVar`` lookup.  This is what keeps the ≤2% ``resolve_ms_p50``
   overhead gate honest (``check_perf.py --obs-overhead``).
2. **Never perturb the payload.**  Spans observe; they do not touch result
   bytes, session keys, or the Krylov guard order.  Mutating methods only
   append to lists (atomic under the GIL), so concurrent writers (worker
   thread adding a child while the reaper stamps a terminal event) are safe.
3. **Fork-portable by duration.**  ``perf_counter`` origins differ across
   processes, so serialized spans (:meth:`Span.to_dict`) carry durations that
   are meaningful anywhere, while absolute ``start``/``end`` are only
   comparable within one process.  A worker re-roots a trace from the
   ``trace`` field of the frame meta and ships its finished subtree back in
   the result frame, where the parent grafts it under the dispatch span.

>>> enable_tracing()
>>> with trace_root("http.request") as root:
...     with span("ingress.decode"):
...         pass
...     with span("serve.dispatch") as dispatch:
...         dispatch.set_attribute("worker", 0)
>>> [child.name for child in root.children]
['ingress.decode', 'serve.dispatch']
>>> root.trace_id == root.children[0].trace_id
True
>>> finished = drain_traces()
>>> finished[-1] is root
True
>>> disable_tracing()
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "current_span",
    "disable_tracing",
    "drain_traces",
    "enable_tracing",
    "finished_traces",
    "leaf_span",
    "new_span_id",
    "new_trace_id",
    "span",
    "trace_enabled",
    "trace_root",
    "use_span",
]

# Typed terminal events a request span may carry exactly one of.  Kept here
# (not in serve/) so tests and the CLI can validate span trees without
# importing the serving stack.
TERMINAL_EVENTS = (
    "result",
    "error",
    "deadline_exceeded",
    "worker_crashed",
)

_MAX_CHILDREN = 4096  # hard cap per span: a runaway loop must not OOM the host


def new_trace_id() -> str:
    """128-bit random hex trace id."""
    return os.urandom(16).hex()


# Span ids are allocated on the hot path (one per Krylov preconditioner
# application when tracing is on), so they must not cost a syscall each —
# ``os.urandom`` per span was the single largest item in the overhead gate.
# Uniqueness only needs to hold per process: serialized trees carry structure
# by nesting (``from_dict`` regenerates ids), never by id reference, so a
# random per-import seed + pid + sequence counter is sufficient and ~10x
# cheaper.  ``itertools.count`` increments atomically under the GIL.
_SPAN_SEED = os.urandom(2).hex()
_SPAN_SEQ = itertools.count(1)


def new_span_id() -> str:
    """64-bit hex span id (unique within this process tree)."""
    return "%s%04x%08x" % (_SPAN_SEED, os.getpid() & 0xFFFF, next(_SPAN_SEQ) & 0xFFFFFFFF)


class Span:
    """One named interval in a trace, with attributes, events and children."""

    __slots__ = (
        "name",
        "trace_id",
        "_span_id",
        "parent_id",
        "start",
        "end",
        "attributes",
        "events",
        "children",
        "dropped_children",
        "_leaf_buf",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        start: Optional[float] = None,
        **attributes: Any,
    ) -> None:
        self.name = str(name)
        self.trace_id = trace_id or new_trace_id()
        self._span_id: Optional[str] = None  # allocated lazily (hot path)
        self.parent_id = parent_id
        self.start = time.perf_counter() if start is None else float(start)
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes)
        self.events: List[Dict[str, Any]] = []
        self.children: List["Span"] = []
        self.dropped_children = 0
        self._leaf_buf: Optional[List[tuple]] = None

    @property
    def span_id(self) -> str:
        """The span id, allocated on first use (ids are off the hot path)."""
        if self._span_id is None:
            self._span_id = new_span_id()
        return self._span_id

    # -- mutation ----------------------------------------------------------- #
    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add_event(self, kind: str, **fields: Any) -> None:
        """Append a typed event stamped with the offset from span start."""
        event = {"kind": str(kind), "offset_ms": (time.perf_counter() - self.start) * 1e3}
        event.update(fields)
        self.events.append(event)

    def child(
        self,
        name: str,
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
        **attributes: Any,
    ) -> "Span":
        """Create (and attach) a child span.

        With explicit ``start``/``end`` this records a *retrospective* child —
        an interval measured elsewhere (queue wait, shard round-trip) attached
        after the fact, already finished.  Without them the child is open and
        must be finished by the caller (or via :func:`span`).
        """
        node = Span(
            name,
            trace_id=self.trace_id,
            parent_id=self.span_id,
            start=start,
            **attributes,
        )
        if end is not None:
            node.end = float(end)
        if len(self.children) < _MAX_CHILDREN:
            self.children.append(node)
        else:
            self.dropped_children += 1
        return node

    def record_leaf(self, name: str, start: float, end: float,
                    attributes: Optional[Dict[str, Any]] = None,
                    error_type: Optional[str] = None) -> None:
        """Record a finished leaf interval without materializing a Span.

        Hot-path companion of :func:`leaf_span`: one tuple append (atomic
        under the GIL) instead of a Span allocation + id + clock reads.  The
        buffered leaves become real child spans in :meth:`_materialize_leaves`
        the next time the tree is walked or serialized.  Call sites in tight
        loops (one per Krylov iteration) use this directly via
        :func:`current_span` to also skip the context-manager dispatch.
        """
        buf = self._leaf_buf
        if buf is None:
            buf = self._leaf_buf = []
        buf.append((name, start, end, attributes, error_type))

    def _materialize_leaves(self) -> None:
        """Convert buffered leaf intervals into ordinary child spans."""
        buf = self._leaf_buf
        if not buf:
            return
        self._leaf_buf = None
        for name, start, end, attributes, error_type in buf:
            node = self.child(name, start=start, end=end, **(attributes or {}))
            if error_type is not None:
                node.events.append({"kind": "error", "offset_ms": (end - start) * 1e3,
                                    "error_type": error_type})

    def finish(self, end: Optional[float] = None) -> None:
        # Buffered leaves are NOT materialized here: finish() runs inside the
        # timed request window, so the tuple→Span conversion is deferred to
        # the read paths (walk/to_dict), which run when the trace is consumed.
        if self.end is None:
            self.end = time.perf_counter() if end is None else float(end)

    # -- inspection --------------------------------------------------------- #
    @property
    def duration_ms(self) -> float:
        """Duration in milliseconds (up to *now* while the span is open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return max(0.0, (end - self.start) * 1e3)

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        if self._leaf_buf is not None:
            self._materialize_leaves()
        yield self
        for child in list(self.children):
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """All descendant spans (including self) with the given name."""
        return [node for node in self.walk() if node.name == name]

    def stage_timings(self) -> Dict[str, float]:
        """Aggregate descendant durations by span name, in milliseconds.

        This is the span-tree view of the legacy ``info["stage_timings"]``
        dict: one request's trace collapses to per-stage totals.
        """
        totals: Dict[str, float] = {}
        for node in self.walk():
            if node is self:
                continue
            totals[node.name] = totals.get(node.name, 0.0) + node.duration_ms
        return totals

    def terminal_events(self) -> List[str]:
        """Kinds of typed terminal events recorded on this span."""
        return [e["kind"] for e in self.events if e["kind"] in TERMINAL_EVENTS]

    # -- serialization across the fork boundary ----------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        if self._leaf_buf is not None:
            self._materialize_leaves()
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes),
            "events": list(self.events),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any], *, parent: Optional["Span"] = None) -> "Span":
        """Rebuild a serialized span tree (e.g. shipped back from a worker).

        Absolute clock values are not portable across processes, so rebuilt
        spans are anchored at the attach time and sized by ``duration_ms``.
        Raises ``ValueError``/``TypeError``/``KeyError`` on malformed input —
        callers on untrusted paths must catch and drop.
        """
        name = payload["name"]
        if not isinstance(name, str):
            raise TypeError("span name must be a string")
        duration_ms = float(payload.get("duration_ms", 0.0))
        anchor = parent.start if parent is not None else time.perf_counter()
        node = cls(
            name,
            trace_id=parent.trace_id if parent is not None else str(payload.get("trace_id") or new_trace_id()),
            parent_id=parent.span_id if parent is not None else None,
            start=anchor,
        )
        node.end = anchor + duration_ms / 1e3
        attributes = payload.get("attributes") or {}
        if not isinstance(attributes, dict):
            raise TypeError("span attributes must be a dict")
        node.attributes = dict(attributes)
        node.attributes.setdefault("remote", True)
        events = payload.get("events") or []
        if not isinstance(events, list):
            raise TypeError("span events must be a list")
        node.events = [dict(e) for e in events]
        for child in payload.get("children") or []:
            node.children.append(cls.from_dict(child, parent=node))
        return node

    def graft(self, payload: Dict[str, Any]) -> Optional["Span"]:
        """Attach a serialized subtree as a child; drop it if malformed."""
        try:
            node = Span.from_dict(payload, parent=self)
        except (TypeError, ValueError, KeyError):
            return None
        if len(self.children) < _MAX_CHILDREN:
            self.children.append(node)
            return node
        self.dropped_children += 1
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration_ms:.3f}ms"
        return f"Span({self.name!r}, trace={self.trace_id[:8]}, {state}, children={len(self.children)})"


class _NullSpan:
    """Shared no-op stand-in returned by :func:`span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def add_event(self, kind: str, **fields: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()

# Context-local active span.  Threads start with an empty context, so a worker
# thread only sees a span its runner explicitly activated via use_span() —
# exactly the hand-off semantics the serve layer wants.
_ACTIVE: contextvars.ContextVar[Optional[Span]] = contextvars.ContextVar("repro_obs_span", default=None)

_enabled = False
_finished_lock = threading.Lock()
_finished: Deque[Span] = deque(maxlen=256)


def enable_tracing(max_traces: int = 256) -> None:
    """Turn tracing on process-wide and size the finished-trace ring."""
    global _enabled, _finished
    with _finished_lock:
        if _finished.maxlen != max_traces:
            _finished = deque(_finished, maxlen=max_traces)
        _enabled = True


def disable_tracing() -> None:
    """Turn tracing off and clear the finished-trace ring."""
    global _enabled
    with _finished_lock:
        _enabled = False
        _finished.clear()


def trace_enabled() -> bool:
    return _enabled


def current_span() -> Optional[Span]:
    """The active span in this context, or ``None`` (always None when off)."""
    if not _enabled:
        return None
    return _ACTIVE.get()


def record_trace(root: Span) -> None:
    """Finish a root span and append it to the finished-trace ring."""
    root.finish()
    if _enabled:
        with _finished_lock:
            _finished.append(root)


def finished_traces() -> List[Span]:
    """Snapshot of recorded root spans, oldest first."""
    with _finished_lock:
        return list(_finished)


def drain_traces() -> List[Span]:
    """Return and clear the recorded root spans."""
    with _finished_lock:
        out = list(_finished)
        _finished.clear()
    return out


class use_span:
    """Context manager activating an existing span in the current context."""

    __slots__ = ("_span", "_token")

    def __init__(self, target: Optional[Span]) -> None:
        self._span = target
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Optional[Span]:
        if self._span is not None:
            self._token = _ACTIVE.set(self._span)
        return self._span

    def __exit__(self, *exc: Any) -> bool:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        return False


class _ActiveSpan:
    """Open a child of the current span, activate it, finish on exit."""

    __slots__ = ("_name", "_attributes", "_span", "_token")

    def __init__(self, name: str, attributes: Dict[str, Any]) -> None:
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Span:
        parent = _ACTIVE.get()
        if parent is None:  # race: tracing flipped off after span() returned
            node = Span(self._name, **self._attributes)
        else:
            node = parent.child(self._name, **self._attributes)
        self._span = node
        self._token = _ACTIVE.set(node)
        return node

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        node = self._span
        if node is not None:
            if exc_type is not None and not node.terminal_events():
                node.add_event("error", error_type=exc_type.__name__)
            node.finish()
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        return False


def span(name: str, **attributes: Any):
    """Context manager for a child span of the context-local active span.

    Returns a shared no-op when tracing is disabled or no trace is active, so
    instrumentation points on hot paths cost one attribute read.
    """
    if not _enabled or _ACTIVE.get() is None:
        return _NULL_SPAN
    return _ActiveSpan(name, attributes)


class _LeafSpanCM:
    """Context manager behind :func:`leaf_span`: two clock reads, one append."""

    __slots__ = ("_parent", "_name", "_attributes", "_start")

    def __init__(self, parent: Span, name: str, attributes: Optional[Dict[str, Any]]) -> None:
        self._parent = parent
        self._name = name
        self._attributes = attributes
        self._start = 0.0

    def __enter__(self) -> "_LeafSpanCM":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self._parent.record_leaf(
            self._name,
            self._start,
            time.perf_counter(),
            self._attributes,
            exc_type.__name__ if exc_type is not None else None,
        )
        return False

    # Parity with the Span surface for call sites that set attributes.
    def set_attribute(self, key: str, value: Any) -> None:
        if self._attributes is None:
            self._attributes = {}
        self._attributes[key] = value


def leaf_span(name: str, **attributes: Any):
    """Like :func:`span`, for instrumentation points that never open children.

    Built for per-Krylov-iteration hot paths (the ASM ``apply``): the interval
    is buffered as one tuple on the current span and only becomes a real child
    :class:`Span` when the parent is finished, walked or serialized — so the
    finished tree is indistinguishable from one built with :func:`span`, but
    the in-loop cost is two clock reads and a list append instead of a span
    allocation, id generation and a ``ContextVar`` set/reset.  Because the
    leaf is not activated, nested :func:`span` calls inside the block would
    attach to the *enclosing* span — only use this on true leaves.
    """
    if not _enabled:
        return _NULL_SPAN
    parent = _ACTIVE.get()
    if parent is None:
        return _NULL_SPAN
    return _LeafSpanCM(parent, name, attributes or None)


class trace_root:
    """Start a new root span, activate it, and record it on exit.

    Usable when tracing is disabled too: it then yields a throwaway span that
    is never recorded, which keeps call sites branch-free.
    """

    __slots__ = ("_name", "_trace_id", "_parent_id", "_attributes", "_span", "_token")

    def __init__(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        **attributes: Any,
    ) -> None:
        self._name = name
        self._trace_id = trace_id
        self._parent_id = parent_id
        self._attributes = attributes
        self._span: Optional[Span] = None
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Span:
        node = Span(self._name, trace_id=self._trace_id, parent_id=self._parent_id, **self._attributes)
        self._span = node
        self._token = _ACTIVE.set(node)
        return node

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        node = self._span
        if node is not None:
            if exc_type is not None and not node.terminal_events():
                node.add_event("error", error_type=exc_type.__name__)
            record_trace(node)
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        return False
