"""Process-wide named metrics: Counter / Gauge / Histogram + exposition.

A :class:`MetricsRegistry` owns named metric families.  Each family holds one
series per label set.  Everything is plain Python + a lock — no third-party
client library — and every family snapshots to a JSON-able dict so shard
processes can ship their registries back over the existing admin-frame path
and the parent can merge them (:func:`merge_snapshots`) before rendering the
Prometheus text exposition format (:func:`render_prometheus`).

Histograms use **fixed log-spaced buckets** (factor-of-two from 0.05 ms to
~100 s by default): fixed means snapshots from different processes merge by
plain element-wise addition, log-spaced means the range from a sub-millisecond
preconditioner apply to a multi-second cold prepare is covered with 22
buckets.

>>> registry = MetricsRegistry()
>>> requests = registry.counter("demo_requests_total", "Requests served.")
>>> requests.inc()
>>> requests.inc(2, proto="json")
>>> requests.value()
1.0
>>> requests.value(proto="json")
2.0
>>> lat = registry.histogram("demo_latency_ms", "Latency.", buckets=(1.0, 10.0))
>>> lat.observe(0.5); lat.observe(3.0); lat.observe(99.0)
>>> merged = merge_snapshots([registry.snapshot(), registry.snapshot()])
>>> merged["demo_latency_ms"]["series"][0]["count"]
6
>>> print(render_prometheus(registry.snapshot()).splitlines()[0])
# HELP demo_latency_ms Latency.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "render_prometheus",
]

# 0.05 ms .. ~105 s, factor 2: fixed and log-spaced so cross-process merging
# is element-wise and one bucket family covers apply/solve/prepare scales.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(0.05 * 2.0**i for i in range(22))

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared plumbing: name, help text, per-label-set series under one lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def _series_payload(self) -> List[Dict[str, Any]]:  # pragma: no cover - abstract
        raise NotImplementedError

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            payload: Dict[str, Any] = {
                "type": self.kind,
                "help": self.help,
                "series": self._series_payload(),
            }
        return payload


class Counter(_Metric):
    """Monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return sum(self._values.values())

    def _series_payload(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Gauge(_Metric):
    """A value that can go up and down (queue depth, cache size)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def set_max(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = max(self._values.get(key, float(value)), float(value))

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def _series_payload(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Histogram(_Metric):
    """Fixed-bucket histogram with per-series count and sum."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help_text)
        bounds = tuple(float(b) for b in (buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds or list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be a strictly increasing non-empty sequence")
        self.buckets = bounds
        self._series: Dict[_LabelKey, Dict[str, Any]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
                self._series[key] = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series["counts"][i] += 1
                    break
            series["sum"] += value
            series["count"] += 1

    def _series_payload(self) -> List[Dict[str, Any]]:
        return [
            {
                "labels": dict(key),
                "counts": list(series["counts"]),
                "sum": series["sum"],
                "count": series["count"],
            }
            for key, series in sorted(self._series.items())
        ]

    def snapshot(self) -> Dict[str, Any]:
        payload = super().snapshot()
        payload["buckets"] = list(self.buckets)
        return payload


class MetricsRegistry:
    """Named get-or-create registry of metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs) -> _Metric:
        _validate_metric_name(name)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str) -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self, name: str, help_text: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, buckets=buckets)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot of every family: ``{name: family_payload}``."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge registry snapshots from several processes into one.

    Counters and histograms add; gauges add too (the gauges exported here —
    queue depths, cached sessions — are extensive quantities, so a sum over
    shards is the meaningful aggregate).  Families that only exist in some
    snapshots pass through; mismatched types or bucket layouts raise
    ``ValueError`` because silently mixing them would corrupt the exposition.
    """
    merged: Dict[str, Any] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, family in snap.items():
            if name not in merged:
                merged[name] = {
                    "type": family["type"],
                    "help": family["help"],
                    "series": [dict(s, labels=dict(s["labels"])) for s in family["series"]],
                }
                if "buckets" in family:
                    merged[name]["buckets"] = list(family["buckets"])
                continue
            target = merged[name]
            if target["type"] != family["type"]:
                raise ValueError(f"metric {name!r} has conflicting types across snapshots")
            if target.get("buckets") != family.get("buckets") and "buckets" in family:
                raise ValueError(f"metric {name!r} has conflicting buckets across snapshots")
            by_labels = {_label_key(s["labels"]): s for s in target["series"]}
            for series in family["series"]:
                key = _label_key(series["labels"])
                existing = by_labels.get(key)
                if existing is None:
                    clone = dict(series, labels=dict(series["labels"]))
                    if "counts" in clone:
                        clone["counts"] = list(clone["counts"])
                    target["series"].append(clone)
                    by_labels[key] = clone
                elif family["type"] == "histogram":
                    existing["counts"] = [
                        a + b for a, b in zip(existing["counts"], series["counts"])
                    ]
                    existing["sum"] += series["sum"]
                    existing["count"] += series["count"]
                else:
                    existing["value"] += series["value"]
    return merged


# --------------------------------------------------------------------------- #
# Prometheus text exposition (version 0.0.4), rendered by hand.
# --------------------------------------------------------------------------- #
_NAME_FIRST = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_REST = _NAME_FIRST | set("0123456789")


def _validate_metric_name(name: str) -> None:
    if not name or name[0] not in _NAME_FIRST or any(c not in _NAME_REST for c in name[1:]):
        raise ValueError(f"invalid metric name: {name!r}")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = sorted(labels.items())
    if extra is not None:
        pairs = pairs + [extra]
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a (possibly merged) registry snapshot as exposition text."""
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        if family["type"] == "histogram":
            bounds = family["buckets"]
            for series in family["series"]:
                labels = series["labels"]
                cumulative = 0
                for bound, count in zip(bounds, series["counts"]):
                    cumulative += count
                    le = _format_labels(labels, ("le", _format_value(bound)))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                le = _format_labels(labels, ("le", "+Inf"))
                lines.append(f"{name}_bucket{le} {series['count']}")
                lines.append(f"{name}_sum{_format_labels(labels)} {_format_value(series['sum'])}")
                lines.append(f"{name}_count{_format_labels(labels)} {series['count']}")
        else:
            for series in family["series"]:
                labels = _format_labels(series["labels"])
                lines.append(f"{name}{labels} {_format_value(series['value'])}")
    return "\n".join(lines) + "\n"
