"""``repro.obs`` — zero-dependency observability for the whole stack.

Three legs, all stdlib-only:

* :mod:`repro.obs.trace` — spans + a context-local tracer.  One trace follows
  a request from HTTP ingress through the consistent-hash ring, across the
  shard fork (via the ``trace`` field in the binary frame meta), into the
  worker's session solve and back.  Off by default and near-free when off.
* :mod:`repro.obs.metrics` — a named Counter/Gauge/Histogram registry with
  JSON snapshots that merge across shard processes and render as the
  Prometheus text exposition format (served at ``GET /metrics``).
* :mod:`repro.obs.events` — a bounded ring of JSON-lines convergence events
  (per-iteration residuals, ladder rungs, breaker reroutes), opted into per
  request via ``SolverConfig.obs`` and inspectable with
  ``python -m repro.obs tail/summary``.

Nothing here may perturb numerics, session keys, or response payloads: the
observability plane is strictly read-only with respect to the data plane.
"""

from __future__ import annotations

from .events import EventRing, capture_events, get_ring, set_ring, summarize
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
)
from .trace import (
    Span,
    current_span,
    disable_tracing,
    drain_traces,
    enable_tracing,
    finished_traces,
    new_span_id,
    new_trace_id,
    span,
    trace_enabled,
    trace_root,
    use_span,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EventRing",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "capture_events",
    "current_span",
    "disable_tracing",
    "drain_traces",
    "enable_tracing",
    "finished_traces",
    "get_ring",
    "merge_snapshots",
    "new_span_id",
    "new_trace_id",
    "render_prometheus",
    "set_ring",
    "span",
    "summarize",
    "trace_enabled",
    "trace_root",
    "use_span",
]
