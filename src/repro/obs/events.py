"""Bounded ring of structured convergence-telemetry events.

The opt-in ``obs`` hook on :class:`~repro.solvers.SolverConfig` streams
per-iteration residuals, degradation-rung transitions, breaker reroutes and
terminal outcomes into one process-global bounded ring of JSON-lines-safe
dicts.  The ring observes; it never feeds back into the solve (asserted by
the bit-parity tests), and the hook is excluded from ``config_hash()`` so
flipping telemetry on can never change a session key.

Events are plain dicts with a mandatory ``kind`` plus free-form fields:

``iteration``   per-Krylov-iteration relative residual(s)
``rung``        degradation-ladder transition (primary → fallback)
``breaker``     circuit-breaker reroute decision in the serve layer
``terminal``    end of one solve: converged / iterations / failure_reason

>>> ring = EventRing(capacity=3)
>>> for i in range(5):
...     ring.emit("iteration", iteration=i, residual=10.0 ** -i)
>>> [e["iteration"] for e in ring.tail()]
[2, 3, 4]
>>> ring.summary()["kinds"]
{'iteration': 3}
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = ["EventRing", "capture_events", "get_ring", "set_ring"]

DEFAULT_CAPACITY = 65536


class EventRing:
    """Thread-safe bounded ring of structured events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._events: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._emitted = 0

    def emit(self, kind: str, **fields: Any) -> None:
        # One dict literal, one locked append.  An explicit ``ts=`` field
        # overrides the stamp — used by buffered emitters (the session's
        # telemetry buffer) to preserve the original observation time.
        event = {"ts": time.time(), "kind": str(kind), **fields}
        with self._lock:
            self._events.append(event)
            self._emitted += 1

    def extend(self, events: List[Dict[str, Any]]) -> None:
        """Append pre-built event dicts under one lock acquisition.

        Bulk path for buffered emitters (the session telemetry buffer flushes
        one solve's iteration rows in a single call).  Each dict must already
        carry ``ts`` and ``kind``; the ring does not re-stamp them.
        """
        with self._lock:
            self._events.extend(events)
            self._emitted += len(events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def emitted(self) -> int:
        """Total events ever emitted (including ones the ring evicted)."""
        with self._lock:
            return self._emitted

    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        with self._lock:
            events = list(self._events)
        return events if n is None else events[-int(n):]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def to_jsonl(self) -> str:
        return "".join(json.dumps(e, sort_keys=True) + "\n" for e in self.tail())

    def dump_jsonl(self, path) -> int:
        """Write the ring as JSON lines; returns the number of events."""
        events = self.tail()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)

    def summary(self) -> Dict[str, Any]:
        return summarize(self.tail())


def summarize(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a list of telemetry events (ring- or file-sourced)."""
    kinds: Dict[str, int] = {}
    failures: Dict[str, int] = {}
    iterations: List[int] = []
    last_residual: Optional[float] = None
    for event in events:
        kind = str(event.get("kind", "?"))
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "terminal":
            reason = event.get("failure_reason")
            if reason:
                failures[str(reason)] = failures.get(str(reason), 0) + 1
            if isinstance(event.get("iterations"), int):
                iterations.append(event["iterations"])
        elif kind == "iteration":
            residual = event.get("residual")
            if isinstance(residual, (int, float)):
                last_residual = float(residual)
    out: Dict[str, Any] = {
        "events": len(events),
        "kinds": dict(sorted(kinds.items())),
        "failure_reasons": dict(sorted(failures.items())),
        "last_residual": last_residual,
    }
    if iterations:
        out["solves"] = len(iterations)
        out["iterations_mean"] = sum(iterations) / len(iterations)
        out["iterations_max"] = max(iterations)
    return out


_ring_lock = threading.Lock()
_ring = EventRing()


def get_ring() -> EventRing:
    """The process-global event ring telemetry hooks emit into."""
    return _ring


def set_ring(ring: EventRing) -> EventRing:
    """Install a new global ring; returns the previous one."""
    global _ring
    with _ring_lock:
        previous, _ring = _ring, ring
    return previous


class capture_events:
    """Swap in a fresh global ring for the duration of a block.

    >>> with capture_events(capacity=16) as ring:
    ...     get_ring().emit("terminal", converged=True, iterations=3)
    ...     captured = len(ring)
    >>> captured
    1
    """

    __slots__ = ("_capacity", "_ring", "_previous")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._capacity = capacity
        self._ring: Optional[EventRing] = None
        self._previous: Optional[EventRing] = None

    def __enter__(self) -> EventRing:
        self._ring = EventRing(self._capacity)
        self._previous = set_ring(self._ring)
        return self._ring

    def __exit__(self, *exc: Any) -> bool:
        if self._previous is not None:
            set_ring(self._previous)
        return False


def iter_jsonl(path) -> Iterator[Dict[str, Any]]:
    """Yield events from a JSON-lines file, skipping malformed lines."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                yield event
