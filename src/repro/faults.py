"""Deterministic fault injection for the solver and serving stack.

Robustness claims are only as good as the failures they were tested against.
This module is a small, **seedable** chaos harness: each named fault is a
context-managed patch of one production seam (the GNN preconditioner's
``apply``, a local subdomain solver, session construction, the session solve
itself), installed for exactly the duration of a ``with`` block and removed
afterwards even when the block raises.

All randomness is driven by ``numpy.random.default_rng(seed)``, so a chaos
test that fails replays bit-identically from its seed — there is no
wall-clock or global-RNG dependence anywhere in the harness.

Registered faults:

``gnn-nan-apply``
    :class:`~repro.core.ddm_gnn.DDMGNNPreconditioner` emits NaN corrections
    (all entries, or a seeded random subset) starting at call ``after_calls``.
    Exercises the Krylov ``non_finite_preconditioner`` guard and the
    degradation ladder end-to-end.
``local-solver-raise``
    :class:`~repro.ddm.local_solvers.LULocalSolver` raises
    :class:`FaultInjected` from its solve entry points starting at call
    ``after_calls``.  Exercises exception-path degradation.
``session-build-fail``
    :class:`~repro.solvers.session.SolverSession` construction raises
    :class:`FaultInjected` for the first ``builds`` attempts.  Exercises the
    serve cache's miss path and breaker accounting for setup failures.
``worker-stall``
    :class:`~repro.solvers.session.SolverSession.solve`/``solve_many`` block
    on an event (bounded by ``max_stall_s``) until :meth:`Fault.release` or
    fault deactivation.  Exercises deadlines: the reaper must fail the
    caller's future on time even though the worker thread is wedged.

Usage::

    from repro import faults

    with faults.inject("gnn-nan-apply", after_calls=2, seed=0) as fault:
        result = session.solve(b)          # primary fails, ladder serves
        assert result.info["degraded"]
    assert fault.calls > 2                 # the patch really fired

>>> sorted(available_faults())
['gnn-nan-apply', 'local-solver-raise', 'session-build-fail', 'worker-stall']
>>> fault_spec("gnn-nan-apply").description
'DDM-GNN preconditioner emits NaN corrections'
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FaultInjected",
    "Fault",
    "FaultSpec",
    "register_fault",
    "available_faults",
    "fault_spec",
    "inject",
    "install_from_specs",
    "PoisonedPreconditioner",
]


class FaultInjected(RuntimeError):
    """The error raised by injected raise-type faults.

    A distinct type so tests can assert that a failure came from the harness
    and production code is never tempted to catch it specifically.
    """


class Fault:
    """Base class: reversible class-attribute patching with bookkeeping.

    Subclasses implement :meth:`_install` (calling :meth:`patch` for each
    seam) and optionally :meth:`_on_deactivate`.  ``calls`` counts how often
    any patched seam fired — tests assert it to prove the fault was actually
    exercised rather than silently bypassed.
    """

    name: str = "?"

    def __init__(self) -> None:
        self._patches: List[Tuple[object, str, object]] = []
        self._active = False
        self._lock = threading.Lock()
        self.calls = 0

    # -- bookkeeping ----------------------------------------------------- #
    def patch(self, obj: object, attr: str, replacement: object) -> None:
        """Replace ``obj.attr``, remembering the original for deactivation."""
        self._patches.append((obj, attr, getattr(obj, attr)))
        setattr(obj, attr, replacement)

    def _count(self) -> int:
        """Thread-safe call counter; returns the index of this call (0-based)."""
        with self._lock:
            index = self.calls
            self.calls += 1
            return index

    # -- lifecycle ------------------------------------------------------- #
    def activate(self) -> "Fault":
        if self._active:
            raise RuntimeError(f"fault {self.name!r} is already active")
        self._install()
        self._active = True
        return self

    def deactivate(self) -> None:
        if not self._active:
            return
        self._on_deactivate()
        while self._patches:
            obj, attr, original = self._patches.pop()
            setattr(obj, attr, original)
        self._active = False

    def _install(self) -> None:
        raise NotImplementedError

    def _on_deactivate(self) -> None:
        """Hook for subclasses (e.g. releasing stalled threads)."""

    def release(self) -> None:
        """No-op for most faults; worker-stall unblocks stalled solves."""


@dataclass(frozen=True)
class FaultSpec:
    """Registry entry: a named fault and its factory."""

    name: str
    description: str
    factory: Callable[..., Fault]


_REGISTRY: Dict[str, FaultSpec] = {}


def register_fault(name: str, description: str):
    """Class decorator registering a :class:`Fault` subclass under ``name``."""

    def decorator(cls):
        if name in _REGISTRY:
            raise ValueError(f"fault {name!r} is already registered")
        cls.name = name
        _REGISTRY[name] = FaultSpec(name=name, description=description, factory=cls)
        return cls

    return decorator


def available_faults() -> List[str]:
    """Registered fault names (sorted)."""
    return sorted(_REGISTRY)


def fault_spec(name: str) -> FaultSpec:
    """The registry entry for ``name`` (KeyError with the valid names if not)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown fault {name!r}; available: {', '.join(available_faults())}"
        ) from None


@contextmanager
def inject(name: str, **kwargs) -> Iterator[Fault]:
    """Activate fault ``name`` for the duration of the ``with`` block.

    The patch is installed on entry and removed on exit — including when the
    body raises — so no chaos test can leak a broken seam into later tests.
    """
    fault = fault_spec(name).factory(**kwargs)
    fault.activate()
    try:
        yield fault
    finally:
        fault.deactivate()


def install_from_specs(
    specs: Sequence[Tuple[str, Dict[str, object]]]
) -> List[Fault]:
    """Activate a list of ``(name, kwargs)`` fault specs; returns the faults.

    The cross-process entry point of the chaos harness: fault objects patch
    class attributes and therefore cannot travel through a fork/pickle
    boundary as live state, but their *specs* are plain data.  A sharded
    worker (:mod:`repro.serve.shard`) receives the parent's specs in its
    bootstrap payload and re-installs them locally before serving, so chaos
    tests exercise the same deterministic faults inside every worker
    process.  On any activation failure the already-installed faults are
    rolled back before the error propagates (no partial chaos).
    """
    installed: List[Fault] = []
    try:
        for name, kwargs in specs:
            installed.append(fault_spec(name).factory(**dict(kwargs)).activate())
    except BaseException:
        for fault in reversed(installed):
            fault.deactivate()
        raise
    return installed


# --------------------------------------------------------------------------- #
# the faults
# --------------------------------------------------------------------------- #
@register_fault("gnn-nan-apply", "DDM-GNN preconditioner emits NaN corrections")
class GNNNaNApplyFault(Fault):
    """Poison DDM-GNN corrections with NaN from call ``after_calls`` on.

    ``fraction`` < 1 poisons a seeded random subset of entries (one NaN is
    enough to trip the Krylov non-finite guard); the default poisons all.
    """

    def __init__(self, after_calls: int = 0, fraction: float = 1.0, seed: int = 0) -> None:
        super().__init__()
        if after_calls < 0:
            raise ValueError("after_calls must be >= 0")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.after_calls = int(after_calls)
        self.fraction = float(fraction)
        self.rng = np.random.default_rng(seed)

    def _poison(self, z: np.ndarray) -> np.ndarray:
        z = np.array(z, dtype=np.float64, copy=True)
        if self.fraction >= 1.0:
            z[...] = np.nan
        else:
            flat = z.reshape(-1)
            count = max(1, int(self.fraction * flat.size))
            with self._lock:
                idx = self.rng.choice(flat.size, size=count, replace=False)
            flat[idx] = np.nan
        return z

    def _install(self) -> None:
        from .core.ddm_gnn import DDMGNNPreconditioner

        fault = self
        original_apply = DDMGNNPreconditioner.apply
        original_columns = DDMGNNPreconditioner.apply_columns

        def apply(self, residual):
            z = original_apply(self, residual)
            if fault._count() >= fault.after_calls:
                z = fault._poison(z)
            return z

        def apply_columns(self, residuals):
            z = original_columns(self, residuals)
            if fault._count() >= fault.after_calls:
                z = fault._poison(z)
            return z

        self.patch(DDMGNNPreconditioner, "apply", apply)
        self.patch(DDMGNNPreconditioner, "apply_columns", apply_columns)


@register_fault("local-solver-raise", "LU local subdomain solver raises")
class LocalSolverRaiseFault(Fault):
    """Make every LU local-solver entry point raise from call ``after_calls``."""

    def __init__(self, after_calls: int = 0) -> None:
        super().__init__()
        if after_calls < 0:
            raise ValueError("after_calls must be >= 0")
        self.after_calls = int(after_calls)

    def _install(self) -> None:
        from .ddm.local_solvers import LULocalSolver

        fault = self

        def wrap(original):
            def solve(self, *args, **kwargs):
                if fault._count() >= fault.after_calls:
                    raise FaultInjected("injected LU local-solver failure")
                return original(self, *args, **kwargs)

            return solve

        for attr in ("solve_all", "solve_stacked", "solve_stacked_columns"):
            self.patch(LULocalSolver, attr, wrap(getattr(LULocalSolver, attr)))


@register_fault("session-build-fail", "SolverSession construction fails")
class SessionBuildFailFault(Fault):
    """Fail the first ``builds`` session constructions, then recover."""

    def __init__(self, builds: int = 1) -> None:
        super().__init__()
        if builds < 1:
            raise ValueError("builds must be >= 1")
        self.builds = int(builds)

    def _install(self) -> None:
        from .solvers.session import SolverSession

        fault = self
        original_init = SolverSession.__init__

        def __init__(self, *args, **kwargs):
            if fault._count() < fault.builds:
                raise FaultInjected("injected session-build failure")
            original_init(self, *args, **kwargs)

        self.patch(SolverSession, "__init__", __init__)


@register_fault("worker-stall", "SolverSession solves block until released")
class WorkerStallFault(Fault):
    """Block ``solve``/``solve_many`` on an event, bounded by ``max_stall_s``.

    The bound guarantees no test hangs forever even if it forgets to
    :meth:`release`; deactivation always releases.
    """

    def __init__(self, max_stall_s: float = 30.0) -> None:
        super().__init__()
        if max_stall_s <= 0:
            raise ValueError("max_stall_s must be positive")
        self.max_stall_s = float(max_stall_s)
        self._event = threading.Event()

    def release(self) -> None:
        """Unblock all stalled (and future) solves."""
        self._event.set()

    def _on_deactivate(self) -> None:
        self.release()

    def _install(self) -> None:
        from .solvers.session import SolverSession

        fault = self

        def wrap(original):
            def solve(self, *args, **kwargs):
                fault._count()
                fault._event.wait(fault.max_stall_s)
                return original(self, *args, **kwargs)

            return solve

        self.patch(SolverSession, "solve", wrap(SolverSession.solve))
        self.patch(SolverSession, "solve_many", wrap(SolverSession.solve_many))


# --------------------------------------------------------------------------- #
# deterministic per-column poisoning for lockstep tests
# --------------------------------------------------------------------------- #
class PoisonedPreconditioner:
    """Wrap a preconditioner, poisoning chosen columns of one apply call.

    On call number ``on_call`` (counting ``apply`` and ``apply_columns``
    together), the selected ``columns`` of the result are set to ``value``
    (NaN by default); ``apply`` poisons the whole vector when ``0`` is among
    the poisoned columns.  All other calls pass through untouched, so in a
    lockstep run poisoned columns fail with ``non_finite_preconditioner``
    while the survivors' arithmetic is untouched — the basis of the
    bit-identity chaos tests.

    >>> import numpy as np
    >>> class Ident:
    ...     def apply(self, r): return np.asarray(r, dtype=float)
    ...     def apply_columns(self, R): return np.asarray(R, dtype=float)
    >>> poisoned = PoisonedPreconditioner(Ident(), columns=(1,), on_call=0)
    >>> Z = poisoned.apply_columns(np.ones((3, 2)))
    >>> bool(np.isnan(Z[:, 1]).all()), bool(np.isfinite(Z[:, 0]).all())
    (True, True)
    >>> bool(np.isfinite(poisoned.apply_columns(np.ones((3, 2)))).all())  # later calls clean
    True
    """

    def __init__(self, inner, columns: Sequence[int] = (0,), on_call: int = 0,
                 value: float = np.nan) -> None:
        self.inner = inner
        self.columns = tuple(int(c) for c in columns)
        self.on_call = int(on_call)
        self.value = float(value)
        self._calls = 0
        self._lock = threading.Lock()

    def _next_call(self) -> int:
        with self._lock:
            index = self._calls
            self._calls += 1
            return index

    @property
    def shape(self):
        return self.inner.shape

    def apply(self, residual: np.ndarray) -> np.ndarray:
        z = self.inner.apply(residual)
        if self._next_call() == self.on_call and 0 in self.columns:
            z = np.array(z, dtype=np.float64, copy=True)
            z[...] = self.value
        return z

    def apply_columns(self, residuals: np.ndarray) -> np.ndarray:
        if hasattr(self.inner, "apply_columns"):
            z = self.inner.apply_columns(residuals)
        else:  # pragma: no cover - exercised only by apply-only inners
            z = np.stack([self.inner.apply(residuals[:, j])
                          for j in range(residuals.shape[1])], axis=1)
        if self._next_call() == self.on_call:
            z = np.array(z, dtype=np.float64, copy=True)
            for column in self.columns:
                if 0 <= column < z.shape[1]:
                    z[:, column] = self.value
        return z
