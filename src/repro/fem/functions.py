"""Source and boundary functions used by the paper's experiments.

Section IV-A of the paper samples the forcing term ``f`` and the boundary
function ``g`` as random quadratic polynomials with coefficients drawn
uniformly in [-10, 10]:

    f(x, y) = r1 (x - 1)^2 + r2 y^2 + r3
    g(x, y) = r4 x^2 + r5 y^2 + r6 x y + r7 x + r8 y + r9

When a mesh is scaled up (growing radius at fixed element size) the functions
are rescaled accordingly; :meth:`PolynomialField.rescaled` implements that by
evaluating the polynomial in normalised coordinates ``(x/s, y/s)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

__all__ = ["PolynomialField", "random_forcing", "random_boundary", "constant_field", "manufactured_solution"]


@dataclass(frozen=True)
class PolynomialField:
    """A bivariate quadratic polynomial ``a x² + b y² + c xy + d x + e y + f``.

    A scale factor allows evaluating the polynomial in coordinates normalised
    by the domain radius, which is how the paper rescales f and g for larger
    meshes.
    """

    a: float = 0.0
    b: float = 0.0
    c: float = 0.0
    d: float = 0.0
    e: float = 0.0
    f: float = 0.0
    scale: float = 1.0

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        xs = np.asarray(x, dtype=np.float64) / self.scale
        ys = np.asarray(y, dtype=np.float64) / self.scale
        return (
            self.a * xs ** 2
            + self.b * ys ** 2
            + self.c * xs * ys
            + self.d * xs
            + self.e * ys
            + self.f
        )

    def rescaled(self, scale: float) -> "PolynomialField":
        """Return the same polynomial evaluated in coordinates divided by ``scale``."""
        return PolynomialField(self.a, self.b, self.c, self.d, self.e, self.f, scale=float(scale))


def random_forcing(rng: Optional[np.random.Generator] = None, scale: float = 1.0) -> PolynomialField:
    """Random forcing ``f(x,y) = r1 (x-1)^2 + r2 y^2 + r3`` (paper Eq. 24).

    Expanding the square gives coefficients for the generic quadratic form.
    """
    rng = rng if rng is not None else np.random.default_rng()
    r1, r2, r3 = rng.uniform(-10.0, 10.0, size=3)
    # r1 (x-1)^2 + r2 y^2 + r3 = r1 x^2 + r2 y^2 - 2 r1 x + (r1 + r3)
    return PolynomialField(a=r1, b=r2, c=0.0, d=-2.0 * r1, e=0.0, f=r1 + r3, scale=scale)


def random_boundary(rng: Optional[np.random.Generator] = None, scale: float = 1.0) -> PolynomialField:
    """Random boundary values ``g`` as a full quadratic polynomial (paper Eq. 25)."""
    rng = rng if rng is not None else np.random.default_rng()
    r4, r5, r6, r7, r8, r9 = rng.uniform(-10.0, 10.0, size=6)
    return PolynomialField(a=r4, b=r5, c=r6, d=r7, e=r8, f=r9, scale=scale)


def constant_field(value: float) -> PolynomialField:
    """A constant field (useful for tests)."""
    return PolynomialField(f=float(value))


def manufactured_solution() -> Tuple[Callable, Callable, Callable]:
    """A smooth manufactured solution for convergence tests.

    Returns ``(u_exact, f, g)`` with ``u(x,y) = sin(pi x) sin(pi y) + x`` so
    that ``-Δu = 2 pi² sin(pi x) sin(pi y)`` and ``g = u`` on the boundary.
    """

    def u_exact(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.sin(np.pi * x) * np.sin(np.pi * y) + x

    def f(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return 2.0 * np.pi ** 2 * np.sin(np.pi * x) * np.sin(np.pi * y)

    return u_exact, f, u_exact
