"""Discretised Poisson problems (paper Eq. 1 → Eq. 2).

A :class:`PoissonProblem` bundles the mesh, the assembled system ``A u = b``
and helpers to evaluate residuals, solve directly and compute error norms.
It is the object the whole solver stack operates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..mesh.mesh import TriangularMesh
from .assembly import apply_dirichlet, assemble_load, assemble_stiffness
from .functions import PolynomialField, random_boundary, random_forcing

__all__ = ["PoissonProblem", "random_poisson_problem"]

ScalarField = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class PoissonProblem:
    """A discretised Poisson problem with Dirichlet boundary conditions.

    Attributes
    ----------
    mesh:
        The underlying triangular mesh.
    matrix:
        Sparse system matrix A (after boundary-condition elimination).
    rhs:
        Right-hand side b.
    stiffness:
        The raw (pre-elimination) stiffness matrix, kept for error norms.
    boundary_values:
        Dirichlet values at ``mesh.boundary_nodes``.
    """

    mesh: TriangularMesh
    matrix: sp.csr_matrix
    rhs: np.ndarray
    stiffness: sp.csr_matrix
    boundary_values: np.ndarray
    dirichlet_mode: str = "symmetric"

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_fields(
        cls,
        mesh: TriangularMesh,
        forcing: ScalarField,
        boundary: ScalarField,
        dirichlet_mode: Literal["symmetric", "row"] = "symmetric",
    ) -> "PoissonProblem":
        """Assemble the P1 discretisation of ``-Δu = f`` with ``u = g`` on ∂Ω."""
        stiffness = assemble_stiffness(mesh)
        load = assemble_load(mesh, forcing)
        bnodes = mesh.boundary_nodes
        bx, by = mesh.nodes[bnodes, 0], mesh.nodes[bnodes, 1]
        bvalues = np.asarray(boundary(bx, by), dtype=np.float64)
        matrix, rhs = apply_dirichlet(stiffness, load, bnodes, bvalues, mode=dirichlet_mode)
        return cls(
            mesh=mesh,
            matrix=matrix,
            rhs=rhs,
            stiffness=stiffness,
            boundary_values=bvalues,
            dirichlet_mode=dirichlet_mode,
        )

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_dofs(self) -> int:
        return int(self.matrix.shape[0])

    def residual(self, u: np.ndarray) -> np.ndarray:
        """Return the algebraic residual ``b - A u``."""
        return self.rhs - self.matrix @ u

    def relative_residual_norm(self, u: np.ndarray) -> float:
        """‖b - A u‖ / ‖b‖ (the convergence metric used throughout the paper)."""
        denom = np.linalg.norm(self.rhs)
        if denom == 0.0:
            return float(np.linalg.norm(self.residual(u)))
        return float(np.linalg.norm(self.residual(u)) / denom)

    # ------------------------------------------------------------------ #
    # direct solution and error norms
    # ------------------------------------------------------------------ #
    def solve_direct(self) -> np.ndarray:
        """Solve the system with a sparse LU factorisation (reference solution)."""
        return spla.spsolve(self.matrix.tocsc(), self.rhs)

    def l2_error(self, u: np.ndarray, exact: ScalarField) -> float:
        """Discrete relative L2 error against an exact solution evaluated at the nodes."""
        u_exact = np.asarray(exact(self.mesh.nodes[:, 0], self.mesh.nodes[:, 1]), dtype=np.float64)
        denom = np.linalg.norm(u_exact)
        if denom == 0.0:
            return float(np.linalg.norm(u - u_exact))
        return float(np.linalg.norm(u - u_exact) / denom)

    def energy_norm(self, u: np.ndarray) -> float:
        """Energy (stiffness) semi-norm ``sqrt(u^T K u)`` using the raw stiffness."""
        return float(np.sqrt(max(u @ (self.stiffness @ u), 0.0)))


def random_poisson_problem(
    mesh: TriangularMesh,
    rng: Optional[np.random.Generator] = None,
    scale: float = 1.0,
    dirichlet_mode: Literal["symmetric", "row"] = "symmetric",
) -> PoissonProblem:
    """Sample a random Poisson problem on ``mesh`` following the paper's recipe.

    ``scale`` rescales the random polynomial fields for meshes grown beyond the
    unit radius (Sec. IV-A, last paragraph).
    """
    rng = rng if rng is not None else np.random.default_rng()
    f = random_forcing(rng, scale=scale)
    g = random_boundary(rng, scale=scale)
    return PoissonProblem.from_fields(mesh, f, g, dirichlet_mode=dirichlet_mode)
