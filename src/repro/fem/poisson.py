"""Discretised Poisson problems (paper Eq. 1 → Eq. 2).

:class:`PoissonProblem` is the homogeneous-coefficient member of the
:class:`~repro.fem.problem.Problem` hierarchy: ``-Δu = f`` with Dirichlet
conditions on the whole boundary, which is the setting of all the paper's
experiments.  The residual/solve/error helpers live on the shared base class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal, Optional

import numpy as np

from ..mesh.mesh import TriangularMesh
from .assembly import apply_dirichlet, assemble_load, assemble_stiffness
from .functions import random_boundary, random_forcing
from .problem import Problem

__all__ = ["PoissonProblem", "random_poisson_problem"]

ScalarField = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class PoissonProblem(Problem):
    """A discretised Poisson problem with Dirichlet boundary conditions.

    See :class:`~repro.fem.problem.Problem` for the attribute documentation;
    here ``dirichlet_nodes`` is always the full ``mesh.boundary_nodes`` set
    and ``node_diffusion`` stays None (κ ≡ 1).
    """

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_fields(
        cls,
        mesh: TriangularMesh,
        forcing: ScalarField,
        boundary: ScalarField,
        dirichlet_mode: Literal["symmetric", "row"] = "symmetric",
    ) -> "PoissonProblem":
        """Assemble the P1 discretisation of ``-Δu = f`` with ``u = g`` on ∂Ω."""
        stiffness = assemble_stiffness(mesh)
        load = assemble_load(mesh, forcing)
        bnodes = mesh.boundary_nodes
        bx, by = mesh.nodes[bnodes, 0], mesh.nodes[bnodes, 1]
        bvalues = np.asarray(boundary(bx, by), dtype=np.float64)
        matrix, rhs = apply_dirichlet(stiffness, load, bnodes, bvalues, mode=dirichlet_mode)
        return cls(
            mesh=mesh,
            matrix=matrix,
            rhs=rhs,
            stiffness=stiffness,
            boundary_values=bvalues,
            dirichlet_mode=dirichlet_mode,
            dirichlet_nodes=bnodes,
        )


def random_poisson_problem(
    mesh: TriangularMesh,
    rng: Optional[np.random.Generator] = None,
    scale: float = 1.0,
    dirichlet_mode: Literal["symmetric", "row"] = "symmetric",
) -> PoissonProblem:
    """Sample a random Poisson problem on ``mesh`` following the paper's recipe.

    ``scale`` rescales the random polynomial fields for meshes grown beyond the
    unit radius (Sec. IV-A, last paragraph).
    """
    rng = rng if rng is not None else np.random.default_rng()
    f = random_forcing(rng, scale=scale)
    g = random_boundary(rng, scale=scale)
    return PoissonProblem.from_fields(mesh, f, g, dirichlet_mode=dirichlet_mode)
