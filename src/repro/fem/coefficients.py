"""Diffusion-coefficient fields κ(x, y) for heterogeneous problems.

The variable-coefficient diffusion equation ``-∇·(κ ∇u) = f`` is the
canonical "harder" workload for the DDM-GNN preconditioner: the conditioning
of the assembled system grows with the contrast ratio ``κ_max / κ_min``, and
classical one-level methods degrade accordingly.  This module provides the
named κ families used by the problem registry (:mod:`repro.problems`):

* :class:`CheckerboardField` — piecewise-constant κ alternating between 1 and
  ``contrast`` on a regular grid of cells (the classic worst case for
  algebraic preconditioners);
* :class:`ChannelField` — piecewise-constant horizontal/vertical stripes,
  modelling layered media with high-permeability channels;
* :class:`LognormalField` — a smooth log-normal random field built from
  random Fourier features (a GMRF/Karhunen–Loève substitute), the standard
  model for subsurface-flow permeability;
* :class:`RadialField` — a smooth deterministic bump, useful for
  manufactured-solution convergence tests.

Every field is a callable ``kappa(x, y) -> array`` (vectorised, strictly
positive) and therefore plugs directly into
:func:`repro.fem.assembly.assemble_stiffness`'s ``diffusion`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

__all__ = [
    "DiffusionField",
    "CheckerboardField",
    "ChannelField",
    "LognormalField",
    "RadialField",
    "field_contrast",
]


class DiffusionField:
    """Base class for κ fields: positive, vectorised callables.

    Subclasses implement :meth:`evaluate`; ``__call__`` asserts positivity so
    an invalid field fails loudly at assembly time instead of producing an
    indefinite stiffness matrix.
    """

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        values = np.asarray(self.evaluate(np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64)))
        if values.size and float(values.min()) <= 0.0:
            raise ValueError(f"{type(self).__name__} produced non-positive κ values")
        return values


@dataclass
class CheckerboardField(DiffusionField):
    """Piecewise-constant checkerboard: κ = ``contrast`` on black cells, 1 on white.

    The plane is tiled with square cells of side ``cell_size`` anchored at
    ``origin``; cells whose integer coordinates have even parity take the
    high value.  With ``contrast`` = 10⁴ this is the classic high-contrast
    benchmark for domain-decomposition methods.
    """

    contrast: float = 100.0
    cell_size: float = 0.5
    origin: Tuple[float, float] = (-1.0, -1.0)

    def __post_init__(self) -> None:
        if self.contrast <= 0.0 or self.cell_size <= 0.0:
            raise ValueError("contrast and cell_size must be positive")

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        ix = np.floor((x - self.origin[0]) / self.cell_size).astype(np.int64)
        iy = np.floor((y - self.origin[1]) / self.cell_size).astype(np.int64)
        black = (ix + iy) % 2 == 0
        return np.where(black, float(self.contrast), 1.0)


@dataclass
class ChannelField(DiffusionField):
    """Piecewise-constant stripes: high-κ channels in a unit background.

    ``axis`` selects the stripe direction: ``"x"`` gives horizontal channels
    (κ varies with y), ``"y"`` vertical ones.  ``num_channels`` high-κ bands
    of width ``width`` are evenly spaced across ``extent`` (the coordinate
    interval the mesh occupies along the varying direction).
    """

    contrast: float = 100.0
    num_channels: int = 3
    width: float = 0.15
    axis: str = "x"
    extent: Tuple[float, float] = (-1.0, 1.0)

    def __post_init__(self) -> None:
        if self.contrast <= 0.0 or self.width <= 0.0:
            raise ValueError("contrast and width must be positive")
        if self.num_channels < 1:
            raise ValueError("num_channels must be >= 1")
        if self.axis not in ("x", "y"):
            raise ValueError("axis must be 'x' or 'y'")

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        coord = np.asarray(y if self.axis == "x" else x, dtype=np.float64)
        lo, hi = self.extent
        centres = np.linspace(lo, hi, self.num_channels + 2)[1:-1]
        inside = np.zeros(coord.shape, dtype=bool)
        for c in centres:
            inside |= np.abs(coord - c) <= 0.5 * self.width
        return np.where(inside, float(self.contrast), 1.0)


@dataclass
class LognormalField(DiffusionField):
    """Smooth log-normal random field via random Fourier features.

    ``log κ`` is a zero-mean stationary Gaussian field approximated by
    ``σ √(2/K) Σ_k cos(ω_k·x + b_k)`` with frequencies ``ω_k`` drawn from a
    normal distribution of scale ``1 / correlation_length`` — the classic
    random-Fourier-feature approximation of a squared-exponential covariance.
    The resulting κ is smooth, strictly positive, and has a contrast ratio
    controlled by ``sigma`` (roughly ``exp(4σ)`` over a unit domain).
    """

    sigma: float = 1.0
    correlation_length: float = 0.4
    num_modes: int = 64
    seed: int = 0
    mean_log: float = 0.0
    _frequencies: np.ndarray = field(init=False, repr=False)
    _phases: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.correlation_length <= 0.0 or self.num_modes < 1:
            raise ValueError("correlation_length must be positive and num_modes >= 1")
        rng = np.random.default_rng(self.seed)
        self._frequencies = rng.normal(scale=1.0 / self.correlation_length, size=(self.num_modes, 2))
        self._phases = rng.uniform(0.0, 2.0 * np.pi, size=self.num_modes)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        pts = np.stack([np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64)], axis=-1)
        phase = pts @ self._frequencies.T + self._phases  # (..., K)
        log_kappa = self.mean_log + self.sigma * np.sqrt(2.0 / self.num_modes) * np.cos(phase).sum(axis=-1)
        return np.exp(log_kappa)


@dataclass
class RadialField(DiffusionField):
    """Smooth deterministic bump ``κ = base + amplitude · exp(-‖x-c‖²/ρ²)``.

    Infinitely differentiable, so manufactured-solution convergence tests
    retain the optimal P1 rate; ``amplitude`` sets the (mild) heterogeneity.
    """

    base: float = 1.0
    amplitude: float = 4.0
    center: Tuple[float, float] = (0.0, 0.0)
    radius: float = 0.5

    def __post_init__(self) -> None:
        if self.base <= 0.0 or self.radius <= 0.0:
            raise ValueError("base and radius must be positive")
        if self.base + min(self.amplitude, 0.0) <= 0.0:
            raise ValueError("base + amplitude must stay positive")

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        dx = np.asarray(x, dtype=np.float64) - self.center[0]
        dy = np.asarray(y, dtype=np.float64) - self.center[1]
        return self.base + self.amplitude * np.exp(-(dx * dx + dy * dy) / (self.radius ** 2))

    def gradient(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Analytic ∇κ — needed to manufacture forcing terms ``-∇·(κ∇u)``."""
        dx = np.asarray(x, dtype=np.float64) - self.center[0]
        dy = np.asarray(y, dtype=np.float64) - self.center[1]
        bump = self.amplitude * np.exp(-(dx * dx + dy * dy) / (self.radius ** 2))
        factor = -2.0 / (self.radius ** 2)
        return factor * dx * bump, factor * dy * bump


def field_contrast(kappa, mesh) -> float:
    """Empirical contrast ratio κ_max/κ_min of a field sampled at triangle centroids."""
    from .assembly import evaluate_on_triangles

    values = evaluate_on_triangles(mesh, kappa)
    return float(values.max() / values.min())
