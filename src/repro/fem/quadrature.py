"""Quadrature rules on the reference triangle.

Rules are given in barycentric coordinates with weights summing to 1 (they are
scaled by the physical triangle area during assembly).  The degree-2 rule is
exact for the P1 load-vector integrals used in this project; higher-order
rules are provided for error computation of smooth manufactured solutions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TriangleQuadrature", "centroid_rule", "three_point_rule", "six_point_rule"]


@dataclass(frozen=True)
class TriangleQuadrature:
    """A quadrature rule over the unit reference triangle.

    Attributes
    ----------
    barycentric:
        (Q, 3) barycentric coordinates of the quadrature points.
    weights:
        (Q,) weights, summing to 1.
    degree:
        Maximal polynomial degree integrated exactly.
    """

    barycentric: np.ndarray
    weights: np.ndarray
    degree: int

    def points(self, vertices: np.ndarray) -> np.ndarray:
        """Map quadrature points onto a physical triangle.

        ``vertices`` is (3, 2); the result is (Q, 2).
        """
        return self.barycentric @ vertices


def centroid_rule() -> TriangleQuadrature:
    """One-point rule (degree 1): the centroid."""
    return TriangleQuadrature(
        barycentric=np.array([[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]]),
        weights=np.array([1.0]),
        degree=1,
    )


def three_point_rule() -> TriangleQuadrature:
    """Three-point rule at edge midpoints (degree 2)."""
    b = np.array(
        [
            [0.5, 0.5, 0.0],
            [0.0, 0.5, 0.5],
            [0.5, 0.0, 0.5],
        ]
    )
    w = np.full(3, 1.0 / 3.0)
    return TriangleQuadrature(b, w, degree=2)


def six_point_rule() -> TriangleQuadrature:
    """Six-point rule (degree 4), used for error norms of smooth solutions."""
    a1, b1, w1 = 0.816847572980459, 0.091576213509771, 0.109951743655322
    a2, b2, w2 = 0.108103018168070, 0.445948490915965, 0.223381589678011
    b = np.array(
        [
            [a1, b1, b1],
            [b1, a1, b1],
            [b1, b1, a1],
            [a2, b2, b2],
            [b2, a2, b2],
            [b2, b2, a2],
        ]
    )
    w = np.array([w1, w1, w1, w2, w2, w2])
    return TriangleQuadrature(b, w / w.sum(), degree=4)
