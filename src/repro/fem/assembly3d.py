"""P1 (linear Lagrange) finite-element assembly on tetrahedral meshes.

The 3D counterpart of :mod:`repro.fem.assembly`: stiffness (optionally
κ-weighted), consistent/lumped mass, and load assembly on a
:class:`~repro.mesh.tet.TetrahedralMesh`.  Everything downstream of assembly
(Dirichlet elimination, Krylov, DDM partitioning, the GNN feature pipeline)
is matrix- or adjacency-level and reused from the 2D stack unchanged — in
particular :func:`repro.fem.assembly.apply_dirichlet` works on any square
CSR system.

The doctests below share one single-tetrahedron reference mesh::

    nodes = (0,0,0), (1,0,0), (0,1,0), (0,0,1)      volume = 1/6
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..mesh.tet import TetrahedralMesh

__all__ = [
    "tet_gradient_operators",
    "tet_centroids",
    "evaluate_on_tets",
    "assemble_stiffness_3d",
    "assemble_mass_3d",
    "assemble_load_3d",
]

ScalarField3D = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]
#: a diffusion coefficient: constant, per-tet array, or callable κ(x, y, z)
CoefficientLike3D = Union[float, np.ndarray, ScalarField3D]

#: degree-2 4-point tetrahedron quadrature: barycentric (α, β, β, β)
#: permutations with α + 3β = 1, exact for quadratics
_TET_QUAD_ALPHA = 0.5854101966249685
_TET_QUAD_BETA = 0.1381966011250105


def tet_gradient_operators(mesh: TetrahedralMesh) -> Tuple[np.ndarray, np.ndarray]:
    """Return per-tetrahedron P1 shape-function gradients and volumes.

    The gradient of the hat function of local vertex ``i`` is constant over
    the tetrahedron.  ``grads`` has shape (T, 4, 3) and ``volumes`` (T,)
    holds absolute volumes (assembly is orientation-independent).

    >>> import numpy as np
    >>> from repro.mesh.tet import TetrahedralMesh
    >>> mesh = TetrahedralMesh(
    ...     np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]),
    ...     np.array([[0, 1, 2, 3]]),
    ... )
    >>> grads, volumes = tet_gradient_operators(mesh)
    >>> grads.shape, [float(round(v, 12)) for v in volumes]
    ((1, 4, 3), [0.166666666667])
    >>> grads[0, 1].tolist()                    # ∇λ_1 on the reference tet
    [1.0, 0.0, 0.0]
    """
    p = mesh.nodes[mesh.cells]  # (T, 4, 3)
    # edge matrix rows p_i - p_0 for i = 1..3; λ_i gradients are its inverse rows
    edges = p[:, 1:] - p[:, :1]  # (T, 3, 3)
    det = np.linalg.det(edges)
    volumes = np.abs(det) / 6.0
    if np.any(volumes < 1e-15):
        raise ValueError("mesh contains degenerate tetrahedra")
    inv = np.linalg.inv(edges)  # (T, 3, 3)
    grads_123 = np.transpose(inv, (0, 2, 1))  # ∇λ_i is the i-th row of (edges)^{-T}
    grads_0 = -grads_123.sum(axis=1, keepdims=True)  # λ_0 = 1 - λ_1 - λ_2 - λ_3
    return np.concatenate([grads_0, grads_123], axis=1), volumes


def tet_centroids(mesh: TetrahedralMesh) -> np.ndarray:
    """Centroids of all tetrahedra, shape (T, 3).

    >>> import numpy as np
    >>> from repro.mesh.tet import TetrahedralMesh
    >>> mesh = TetrahedralMesh(
    ...     np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]),
    ...     np.array([[0, 1, 2, 3]]),
    ... )
    >>> tet_centroids(mesh).tolist()
    [[0.25, 0.25, 0.25]]
    """
    return mesh.nodes[mesh.cells].mean(axis=1)


def evaluate_on_tets(mesh: TetrahedralMesh, coefficient: CoefficientLike3D) -> np.ndarray:
    """Evaluate a coefficient as one value per tetrahedron (at the centroid).

    Accepts a scalar (broadcast), a length-T array (used as-is) or a callable
    ``κ(x, y, z)`` evaluated at centroids; mirrors
    :func:`repro.fem.assembly.evaluate_on_triangles` including the
    positivity check.

    >>> import numpy as np
    >>> from repro.mesh.tet import TetrahedralMesh
    >>> mesh = TetrahedralMesh(
    ...     np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]),
    ...     np.array([[0, 1, 2, 3]]),
    ... )
    >>> evaluate_on_tets(mesh, 3.0).tolist()
    [3.0]
    >>> evaluate_on_tets(mesh, lambda x, y, z: 1.0 + x + y + z).tolist()
    [1.75]
    """
    if callable(coefficient):
        c = tet_centroids(mesh)
        values = np.asarray(coefficient(c[:, 0], c[:, 1], c[:, 2]), dtype=np.float64)
        values = np.broadcast_to(values, (mesh.num_cells,)).copy()
    else:
        values = np.broadcast_to(
            np.asarray(coefficient, dtype=np.float64), (mesh.num_cells,)
        ).copy()
    if values.size and float(values.min()) <= 0.0:
        raise ValueError("diffusion coefficient must be strictly positive on every tetrahedron")
    return values


def assemble_stiffness_3d(
    mesh: TetrahedralMesh,
    diffusion: Optional[CoefficientLike3D] = None,
) -> sp.csr_matrix:
    """Assemble the P1 stiffness matrix ``K[i,j] = ∫ κ ∇φ_i · ∇φ_j`` on tets.

    >>> import numpy as np
    >>> from repro.mesh.tet import structured_box_mesh
    >>> mesh = structured_box_mesh(2)
    >>> K = assemble_stiffness_3d(mesh)
    >>> K.shape, bool(abs(K.sum()) < 1e-12)   # rows sum to zero: K @ 1 = 0
    ((27, 27), True)
    >>> K2 = assemble_stiffness_3d(mesh, diffusion=2.0)
    >>> bool(np.allclose(K2.toarray(), 2.0 * K.toarray()))
    True
    """
    grads, volumes = tet_gradient_operators(mesh)
    if diffusion is not None:
        weights = evaluate_on_tets(mesh, diffusion) * volumes
    else:
        weights = volumes
    local = np.einsum("tid,tjd,t->tij", grads, grads, weights)  # (T, 4, 4)
    tet = mesh.cells
    rows = np.repeat(tet, 4, axis=1).ravel()
    cols = np.tile(tet, (1, 4)).ravel()
    n = mesh.num_nodes
    return sp.csr_matrix((local.ravel(), (rows, cols)), shape=(n, n))


def assemble_mass_3d(mesh: TetrahedralMesh, lumped: bool = False) -> sp.csr_matrix:
    """Assemble the P1 mass matrix ``M[i,j] = ∫ φ_i φ_j`` on tets.

    The exact local matrix is ``V/20 · (1 + δ_ij)`` (``∫ λ_i² = V/10``,
    ``∫ λ_i λ_j = V/20``); the lumped variant puts ``V/4`` on each vertex.

    >>> import numpy as np
    >>> from repro.mesh.tet import structured_box_mesh
    >>> mesh = structured_box_mesh(2)
    >>> float(round(assemble_mass_3d(mesh).sum(), 12))   # total mass = volume
    1.0
    >>> float(round(assemble_mass_3d(mesh, lumped=True).sum(), 12))
    1.0
    """
    _, volumes = tet_gradient_operators(mesh)
    tet = mesh.cells
    n = mesh.num_nodes
    if lumped:
        data = np.repeat(volumes / 4.0, 4)
        rows = tet.ravel()
        return sp.csr_matrix((data, (rows, rows)), shape=(n, n))
    local_ref = (np.ones((4, 4)) + np.eye(4)) / 20.0
    local = volumes[:, None, None] * local_ref[None, :, :]
    rows = np.repeat(tet, 4, axis=1).ravel()
    cols = np.tile(tet, (1, 4)).ravel()
    return sp.csr_matrix((local.ravel(), (rows, cols)), shape=(n, n))


def assemble_load_3d(mesh: TetrahedralMesh, source: ScalarField3D) -> np.ndarray:
    """Assemble the load vector ``b[i] = ∫ f φ_i`` with a degree-2 4-point rule.

    >>> import numpy as np
    >>> from repro.mesh.tet import structured_box_mesh
    >>> mesh = structured_box_mesh(2)
    >>> b = assemble_load_3d(mesh, lambda x, y, z: np.ones_like(x))
    >>> float(round(b.sum(), 12))             # ∫ 1 dx over the unit cube
    1.0
    """
    _, volumes = tet_gradient_operators(mesh)
    tet = mesh.cells
    vertices = mesh.nodes[tet]  # (T, 4, 3)
    b = np.zeros(mesh.num_nodes)
    alpha, beta = _TET_QUAD_ALPHA, _TET_QUAD_BETA
    for major in range(4):
        q_bary = np.full(4, beta)
        q_bary[major] = alpha
        pts = np.einsum("i,tid->td", q_bary, vertices)  # (T, 3)
        f_vals = np.asarray(source(pts[:, 0], pts[:, 1], pts[:, 2]), dtype=np.float64)
        # phi_i at this quadrature point equals the barycentric coordinate i
        contrib = (0.25 * f_vals * volumes)[:, None] * q_bary[None, :]  # (T, 4)
        np.add.at(b, tet.ravel(), contrib.ravel())
    return b
