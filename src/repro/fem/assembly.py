"""P1 (linear Lagrange) finite-element assembly for the Poisson equation.

Assembles the sparse stiffness matrix, the mass matrix and the load vector on
an unstructured triangular mesh, and applies Dirichlet boundary conditions.

Two elimination strategies are provided:

* ``"symmetric"`` (default): boundary rows *and* columns are eliminated and the
  boundary values are moved to the right-hand side.  The resulting matrix is
  symmetric positive definite, which is what the Conjugate Gradient method and
  the ASM theory require.  Boundary diagonal entries are set to 1 so the
  boundary values are reproduced exactly by the solve.
* ``"row"``: only boundary rows are replaced by identity rows; columns are
  kept.  This mirrors the paper's graph interpretation where "boundary nodes'
  edges point toward the interior of the graph" (Sec. III-B) and is useful for
  constructing the graph consumed by the DSS model.  The linear system has the
  same solution but is no longer symmetric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..mesh.mesh import TriangularMesh
from .quadrature import TriangleQuadrature, three_point_rule

__all__ = [
    "assemble_stiffness",
    "assemble_mass",
    "assemble_load",
    "apply_dirichlet",
    "gradient_operators",
]

ScalarField = Callable[[np.ndarray, np.ndarray], np.ndarray]


def gradient_operators(mesh: TriangularMesh) -> Tuple[np.ndarray, np.ndarray]:
    """Return per-triangle P1 shape-function gradients and areas.

    For triangle ``t`` with vertices ``(p0, p1, p2)`` the gradient of the hat
    function of local vertex ``i`` is constant over the triangle.  The result
    ``grads`` has shape (T, 3, 2) and ``areas`` has shape (T,).
    """
    p = mesh.nodes[mesh.triangles]  # (T, 3, 2)
    x, y = p[..., 0], p[..., 1]
    # edge vectors opposite to each vertex
    b = np.stack([y[:, 1] - y[:, 2], y[:, 2] - y[:, 0], y[:, 0] - y[:, 1]], axis=1)
    c = np.stack([x[:, 2] - x[:, 1], x[:, 0] - x[:, 2], x[:, 1] - x[:, 0]], axis=1)
    areas = 0.5 * (
        (x[:, 1] - x[:, 0]) * (y[:, 2] - y[:, 0]) - (x[:, 2] - x[:, 0]) * (y[:, 1] - y[:, 0])
    )
    if np.any(np.abs(areas) < 1e-15):
        raise ValueError("mesh contains degenerate triangles")
    grads = np.stack([b, c], axis=2) / (2.0 * areas[:, None, None])  # (T, 3, 2)
    return grads, np.abs(areas)


def assemble_stiffness(mesh: TriangularMesh) -> sp.csr_matrix:
    """Assemble the P1 stiffness matrix ``K[i,j] = ∫ ∇φ_i · ∇φ_j``."""
    grads, areas = gradient_operators(mesh)
    # local 3x3 element matrices, vectorised over triangles
    local = np.einsum("tid,tjd,t->tij", grads, grads, areas)  # (T, 3, 3)
    tri = mesh.triangles
    rows = np.repeat(tri, 3, axis=1).ravel()          # i index repeated over j
    cols = np.tile(tri, (1, 3)).ravel()               # j index tiled over i
    data = local.ravel()
    n = mesh.num_nodes
    return sp.csr_matrix((data, (rows, cols)), shape=(n, n))


def assemble_mass(mesh: TriangularMesh, lumped: bool = False) -> sp.csr_matrix:
    """Assemble the P1 mass matrix ``M[i,j] = ∫ φ_i φ_j`` (optionally lumped)."""
    _, areas = gradient_operators(mesh)
    tri = mesh.triangles
    n = mesh.num_nodes
    if lumped:
        data = np.repeat(areas / 3.0, 3)
        rows = tri.ravel()
        return sp.csr_matrix((data, (rows, rows)), shape=(n, n))
    local_ref = np.array([[2.0, 1.0, 1.0], [1.0, 2.0, 1.0], [1.0, 1.0, 2.0]]) / 12.0
    local = areas[:, None, None] * local_ref[None, :, :]
    rows = np.repeat(tri, 3, axis=1).ravel()
    cols = np.tile(tri, (1, 3)).ravel()
    return sp.csr_matrix((local.ravel(), (rows, cols)), shape=(n, n))


def assemble_load(
    mesh: TriangularMesh,
    source: ScalarField,
    quadrature: Optional[TriangleQuadrature] = None,
) -> np.ndarray:
    """Assemble the load vector ``b[i] = ∫ f φ_i`` with the given quadrature."""
    quadrature = quadrature if quadrature is not None else three_point_rule()
    _, areas = gradient_operators(mesh)
    tri = mesh.triangles
    vertices = mesh.nodes[tri]  # (T, 3, 2)
    b = np.zeros(mesh.num_nodes)
    # evaluate the source at all quadrature points of all triangles at once
    for q_bary, q_w in zip(quadrature.barycentric, quadrature.weights):
        pts = np.einsum("i,tid->td", q_bary, vertices)  # (T, 2)
        f_vals = np.asarray(source(pts[:, 0], pts[:, 1]), dtype=np.float64)
        # phi_i at this quadrature point equals the barycentric coordinate i
        contrib = (q_w * f_vals * areas)[:, None] * q_bary[None, :]  # (T, 3)
        np.add.at(b, tri.ravel(), contrib.ravel())
    return b


def apply_dirichlet(
    stiffness: sp.csr_matrix,
    load: np.ndarray,
    boundary_nodes: np.ndarray,
    boundary_values: np.ndarray,
    mode: Literal["symmetric", "row"] = "symmetric",
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Impose Dirichlet conditions ``u[boundary_nodes] = boundary_values``.

    Returns the modified ``(A, b)``; the input matrices are not mutated.
    """
    boundary_nodes = np.asarray(boundary_nodes, dtype=np.int64)
    boundary_values = np.asarray(boundary_values, dtype=np.float64)
    if boundary_nodes.shape != boundary_values.shape:
        raise ValueError("boundary_nodes and boundary_values must have the same length")
    n = stiffness.shape[0]
    mask = np.zeros(n, dtype=bool)
    mask[boundary_nodes] = True

    A = stiffness.tolil(copy=True)
    b = load.astype(np.float64).copy()

    if mode == "symmetric":
        # move known boundary contributions to the RHS before zeroing columns
        g_full = np.zeros(n)
        g_full[boundary_nodes] = boundary_values
        b -= stiffness @ g_full
        # zero boundary rows and columns, unit diagonal, exact boundary values
        csr = stiffness.tocsr(copy=True)
        keep = sp.diags((~mask).astype(np.float64))
        A = keep @ csr @ keep
        A = (A + sp.diags(mask.astype(np.float64))).tocsr()
        b[boundary_nodes] = boundary_values
        b[~mask] = b[~mask]  # interior already adjusted
        return A.tocsr(), b

    if mode == "row":
        csr = stiffness.tocsr(copy=True).tolil()
        for node, value in zip(boundary_nodes, boundary_values):
            csr.rows[node] = [int(node)]
            csr.data[node] = [1.0]
            b[node] = value
        return csr.tocsr(), b

    raise ValueError(f"unknown Dirichlet mode '{mode}'")
