"""P1 (linear Lagrange) finite-element assembly for second-order elliptic PDEs.

Assembles the sparse stiffness matrix (optionally weighted by a variable
diffusion coefficient κ), the mass matrix, the load vector, and the boundary
terms needed for Neumann and Robin conditions, on an unstructured triangular
mesh; and applies Dirichlet boundary conditions.

Two Dirichlet elimination strategies are provided:

* ``"symmetric"`` (default): boundary rows *and* columns are eliminated and the
  boundary values are moved to the right-hand side.  The resulting matrix is
  symmetric positive definite, which is what the Conjugate Gradient method and
  the ASM theory require.  Boundary diagonal entries are set to 1 so the
  boundary values are reproduced exactly by the solve.
* ``"row"``: only boundary rows are replaced by identity rows; columns are
  kept.  This mirrors the paper's graph interpretation where "boundary nodes'
  edges point toward the interior of the graph" (Sec. III-B) and is useful for
  constructing the graph consumed by the DSS model.  The linear system has the
  same solution but is no longer symmetric.

The doctests below share one two-triangle mesh of the unit square::

    3 --- 2
    |  /  |
    0 --- 1
"""

from __future__ import annotations

from typing import Callable, Literal, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..mesh.mesh import TriangularMesh
from .quadrature import TriangleQuadrature, three_point_rule

__all__ = [
    "assemble_stiffness",
    "assemble_convection",
    "assemble_mass",
    "assemble_load",
    "assemble_boundary_mass",
    "assemble_boundary_load",
    "apply_dirichlet",
    "gradient_operators",
    "triangle_centroids",
    "evaluate_on_triangles",
]

ScalarField = Callable[[np.ndarray, np.ndarray], np.ndarray]
#: a diffusion coefficient: constant, per-triangle array, or callable κ(x, y)
CoefficientLike = Union[float, np.ndarray, ScalarField]


def gradient_operators(mesh: TriangularMesh) -> Tuple[np.ndarray, np.ndarray]:
    """Return per-triangle P1 shape-function gradients and areas.

    For triangle ``t`` with vertices ``(p0, p1, p2)`` the gradient of the hat
    function of local vertex ``i`` is constant over the triangle.  The result
    ``grads`` has shape (T, 3, 2) and ``areas`` has shape (T,).

    >>> import numpy as np
    >>> from repro.mesh.mesh import TriangularMesh
    >>> mesh = TriangularMesh(
    ...     np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]),
    ...     np.array([[0, 1, 2], [0, 2, 3]]),
    ... )
    >>> grads, areas = gradient_operators(mesh)
    >>> grads.shape, areas.tolist()
    ((2, 3, 2), [0.5, 0.5])
    """
    p = mesh.nodes[mesh.triangles]  # (T, 3, 2)
    x, y = p[..., 0], p[..., 1]
    # edge vectors opposite to each vertex
    b = np.stack([y[:, 1] - y[:, 2], y[:, 2] - y[:, 0], y[:, 0] - y[:, 1]], axis=1)
    c = np.stack([x[:, 2] - x[:, 1], x[:, 0] - x[:, 2], x[:, 1] - x[:, 0]], axis=1)
    areas = 0.5 * (
        (x[:, 1] - x[:, 0]) * (y[:, 2] - y[:, 0]) - (x[:, 2] - x[:, 0]) * (y[:, 1] - y[:, 0])
    )
    if np.any(np.abs(areas) < 1e-15):
        raise ValueError("mesh contains degenerate triangles")
    grads = np.stack([b, c], axis=2) / (2.0 * areas[:, None, None])  # (T, 3, 2)
    return grads, np.abs(areas)


def triangle_centroids(mesh: TriangularMesh) -> np.ndarray:
    """Centroids of all triangles, shape (T, 2).

    >>> import numpy as np
    >>> from repro.mesh.mesh import TriangularMesh
    >>> mesh = TriangularMesh(
    ...     np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]),
    ...     np.array([[0, 1, 2], [0, 2, 3]]),
    ... )
    >>> np.round(triangle_centroids(mesh), 3).tolist()
    [[0.667, 0.333], [0.333, 0.667]]
    """
    return mesh.nodes[mesh.triangles].mean(axis=1)


def evaluate_on_triangles(mesh: TriangularMesh, coefficient: CoefficientLike) -> np.ndarray:
    """Evaluate a coefficient as one value per triangle (at the centroid).

    Accepts a scalar (broadcast), a length-T array (used as-is) or a callable
    ``κ(x, y)`` (evaluated at the centroids — exact for piecewise-constant
    fields aligned with the mesh, O(h²)-accurate for smooth fields, which
    preserves the optimal P1 convergence rate).

    >>> import numpy as np
    >>> from repro.mesh.mesh import TriangularMesh
    >>> mesh = TriangularMesh(
    ...     np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]),
    ...     np.array([[0, 1, 2], [0, 2, 3]]),
    ... )
    >>> evaluate_on_triangles(mesh, 3.0).tolist()
    [3.0, 3.0]
    >>> evaluate_on_triangles(mesh, lambda x, y: x + y).shape
    (2,)
    """
    if callable(coefficient):
        centroids = triangle_centroids(mesh)
        values = np.asarray(coefficient(centroids[:, 0], centroids[:, 1]), dtype=np.float64)
        values = np.broadcast_to(values, (mesh.num_triangles,)).copy()
    else:
        values = np.broadcast_to(
            np.asarray(coefficient, dtype=np.float64), (mesh.num_triangles,)
        ).copy()
    if values.size and float(values.min()) <= 0.0:
        raise ValueError("diffusion coefficient must be strictly positive on every triangle")
    return values


def assemble_stiffness(
    mesh: TriangularMesh,
    diffusion: Optional[CoefficientLike] = None,
) -> sp.csr_matrix:
    """Assemble the P1 stiffness matrix ``K[i,j] = ∫ κ ∇φ_i · ∇φ_j``.

    With ``diffusion=None`` (the Poisson case) κ ≡ 1 and this reduces to the
    classic Laplace stiffness matrix.  ``diffusion`` may be a positive scalar,
    a per-triangle array of κ values, or a callable ``κ(x, y)`` evaluated at
    triangle centroids (see :func:`evaluate_on_triangles`).

    >>> import numpy as np
    >>> from repro.mesh.mesh import TriangularMesh
    >>> mesh = TriangularMesh(
    ...     np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]),
    ...     np.array([[0, 1, 2], [0, 2, 3]]),
    ... )
    >>> K = assemble_stiffness(mesh)
    >>> K.shape, bool(abs(K.sum()) < 1e-12)   # rows sum to zero: K @ 1 = 0
    ((4, 4), True)
    >>> K2 = assemble_stiffness(mesh, diffusion=2.0)
    >>> bool(np.allclose(K2.toarray(), 2.0 * K.toarray()))
    True
    """
    grads, areas = gradient_operators(mesh)
    if diffusion is not None:
        weights = evaluate_on_triangles(mesh, diffusion) * areas
    else:
        weights = areas
    # local 3x3 element matrices, vectorised over triangles
    local = np.einsum("tid,tjd,t->tij", grads, grads, weights)  # (T, 3, 3)
    tri = mesh.triangles
    rows = np.repeat(tri, 3, axis=1).ravel()          # i index repeated over j
    cols = np.tile(tri, (1, 3)).ravel()               # j index tiled over i
    data = local.ravel()
    n = mesh.num_nodes
    return sp.csr_matrix((data, (rows, cols)), shape=(n, n))


def assemble_convection(
    mesh: TriangularMesh,
    velocity: Union[Sequence[float], np.ndarray, Callable[[np.ndarray, np.ndarray], np.ndarray]],
) -> sp.csr_matrix:
    """Assemble the P1 convection matrix ``C[i,j] = ∫ φ_i (b · ∇φ_j)``.

    ``velocity`` is the advection field b: a constant 2-vector, a per-triangle
    (T, 2) array, or a callable evaluated at triangle centroids returning
    either the component pair ``(b_x, b_y)`` (each of shape (T,), i.e. a
    (2, T) stack — this convention wins the T == 2 ambiguity) or a (T, 2)
    array of per-triangle vectors.  With P1 elements ``b · ∇φ_j`` is constant
    per triangle and ``∫_t φ_i = |t|/3``, so the local element matrix has
    three identical rows — the assembly is exact for piecewise-constant b.

    The result is **nonsymmetric**; adding it to a stiffness matrix yields
    the convection-diffusion operator ``-∇·(κ∇u) + b·∇u`` served by the
    ``gmres``/``bicgstab`` Krylov methods (CG is not applicable).

    >>> import numpy as np
    >>> from repro.mesh.mesh import TriangularMesh
    >>> mesh = TriangularMesh(
    ...     np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]),
    ...     np.array([[0, 1, 2], [0, 2, 3]]),
    ... )
    >>> C = assemble_convection(mesh, (1.0, 0.0))
    >>> C.shape, bool(np.allclose(C.toarray() @ np.ones(4), 0.0))  # C @ 1 = 0
    ((4, 4), True)
    >>> bool(np.allclose(C.toarray(), C.toarray().T))              # nonsymmetric
    False
    """
    grads, areas = gradient_operators(mesh)
    num_triangles = mesh.num_triangles
    if callable(velocity):
        centroids = triangle_centroids(mesh)
        values = np.asarray(velocity(centroids[:, 0], centroids[:, 1]), dtype=np.float64)
        if values.ndim == 1:
            b = np.broadcast_to(values, (num_triangles, 2))  # constant (b_x, b_y)
        elif values.shape == (2, num_triangles):
            b = values.T  # documented component-pair convention, wins when T == 2
        elif values.shape == (num_triangles, 2):
            b = values
        else:
            raise ValueError(
                f"velocity callable must return (b_x, b_y) components of shape "
                f"(2, {num_triangles}) or per-triangle vectors of shape "
                f"({num_triangles}, 2); got {values.shape}"
            )
    else:
        b = np.broadcast_to(np.asarray(velocity, dtype=np.float64), (num_triangles, 2))
    # (b · ∇φ_j) per triangle and local column, constant over the triangle
    directional = np.einsum("td,tjd->tj", b, grads)                 # (T, 3)
    local = (areas / 3.0)[:, None, None] * directional[:, None, :]  # (T, 3, 3)
    local = np.broadcast_to(local, (mesh.num_triangles, 3, 3))
    tri = mesh.triangles
    rows = np.repeat(tri, 3, axis=1).ravel()
    cols = np.tile(tri, (1, 3)).ravel()
    n = mesh.num_nodes
    return sp.csr_matrix((local.ravel(), (rows, cols)), shape=(n, n))


def assemble_mass(mesh: TriangularMesh, lumped: bool = False) -> sp.csr_matrix:
    """Assemble the P1 mass matrix ``M[i,j] = ∫ φ_i φ_j`` (optionally lumped).

    >>> import numpy as np
    >>> from repro.mesh.mesh import TriangularMesh
    >>> mesh = TriangularMesh(
    ...     np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]),
    ...     np.array([[0, 1, 2], [0, 2, 3]]),
    ... )
    >>> float(round(assemble_mass(mesh).sum(), 12))   # total mass = domain area
    1.0
    >>> float(round(assemble_mass(mesh, lumped=True).sum(), 12))
    1.0
    """
    _, areas = gradient_operators(mesh)
    tri = mesh.triangles
    n = mesh.num_nodes
    if lumped:
        data = np.repeat(areas / 3.0, 3)
        rows = tri.ravel()
        return sp.csr_matrix((data, (rows, rows)), shape=(n, n))
    local_ref = np.array([[2.0, 1.0, 1.0], [1.0, 2.0, 1.0], [1.0, 1.0, 2.0]]) / 12.0
    local = areas[:, None, None] * local_ref[None, :, :]
    rows = np.repeat(tri, 3, axis=1).ravel()
    cols = np.tile(tri, (1, 3)).ravel()
    return sp.csr_matrix((local.ravel(), (rows, cols)), shape=(n, n))


def assemble_load(
    mesh: TriangularMesh,
    source: ScalarField,
    quadrature: Optional[TriangleQuadrature] = None,
) -> np.ndarray:
    """Assemble the load vector ``b[i] = ∫ f φ_i`` with the given quadrature.

    >>> import numpy as np
    >>> from repro.mesh.mesh import TriangularMesh
    >>> mesh = TriangularMesh(
    ...     np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]),
    ...     np.array([[0, 1, 2], [0, 2, 3]]),
    ... )
    >>> b = assemble_load(mesh, lambda x, y: np.ones_like(x))
    >>> float(round(b.sum(), 12))                 # ∫ 1 dx over the unit square
    1.0
    """
    quadrature = quadrature if quadrature is not None else three_point_rule()
    _, areas = gradient_operators(mesh)
    tri = mesh.triangles
    vertices = mesh.nodes[tri]  # (T, 3, 2)
    b = np.zeros(mesh.num_nodes)
    # evaluate the source at all quadrature points of all triangles at once
    for q_bary, q_w in zip(quadrature.barycentric, quadrature.weights):
        pts = np.einsum("i,tid->td", q_bary, vertices)  # (T, 2)
        f_vals = np.asarray(source(pts[:, 0], pts[:, 1]), dtype=np.float64)
        # phi_i at this quadrature point equals the barycentric coordinate i
        contrib = (q_w * f_vals * areas)[:, None] * q_bary[None, :]  # (T, 3)
        np.add.at(b, tri.ravel(), contrib.ravel())
    return b


def _boundary_edge_geometry(
    mesh: TriangularMesh, edges: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate a boundary-edge subset and return (edges, midpoints, lengths)."""
    edges = mesh.boundary_edges if edges is None else np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return edges.reshape(0, 2), np.zeros((0, 2)), np.zeros(0)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must have shape (E, 2)")
    p0 = mesh.nodes[edges[:, 0]]
    p1 = mesh.nodes[edges[:, 1]]
    lengths = np.linalg.norm(p1 - p0, axis=1)
    midpoints = 0.5 * (p0 + p1)
    return edges, midpoints, lengths


def assemble_boundary_mass(
    mesh: TriangularMesh,
    coefficient: CoefficientLike = 1.0,
    edges: Optional[np.ndarray] = None,
) -> sp.csr_matrix:
    """Assemble the boundary mass matrix ``B[i,j] = ∫_Γ α φ_i φ_j ds``.

    This is the matrix a Robin condition ``κ ∂u/∂n + α u = g`` adds to the
    stiffness.  ``Γ`` is the union of the given boundary ``edges`` (all of
    ``mesh.boundary_edges`` when None); ``coefficient`` is the Robin weight α,
    a scalar or a callable evaluated at edge midpoints.  Each 1-D line element
    of length ``L`` contributes the exact P1 local matrix ``α L/6 [[2,1],[1,2]]``.

    >>> import numpy as np
    >>> from repro.mesh.mesh import TriangularMesh
    >>> mesh = TriangularMesh(
    ...     np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]),
    ...     np.array([[0, 1, 2], [0, 2, 3]]),
    ... )
    >>> B = assemble_boundary_mass(mesh)          # α = 1 on the whole boundary
    >>> float(round(B.sum(), 12))                 # ∫ 1 ds = perimeter
    4.0
    """
    edges, midpoints, lengths = _boundary_edge_geometry(mesh, edges)
    n = mesh.num_nodes
    if edges.shape[0] == 0:
        return sp.csr_matrix((n, n))
    if callable(coefficient):
        alpha = np.asarray(coefficient(midpoints[:, 0], midpoints[:, 1]), dtype=np.float64)
        alpha = np.broadcast_to(alpha, (edges.shape[0],))
    else:
        alpha = np.broadcast_to(np.asarray(coefficient, dtype=np.float64), (edges.shape[0],))
    scale = alpha * lengths / 6.0
    local = scale[:, None, None] * np.array([[2.0, 1.0], [1.0, 2.0]])[None, :, :]
    rows = np.repeat(edges, 2, axis=1).ravel()
    cols = np.tile(edges, (1, 2)).ravel()
    return sp.csr_matrix((local.ravel(), (rows, cols)), shape=(n, n))


def assemble_boundary_load(
    mesh: TriangularMesh,
    flux: CoefficientLike,
    edges: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Assemble the boundary load ``b[i] = ∫_Γ g φ_i ds`` (Neumann/Robin data).

    ``g`` is interpolated linearly on each edge from its endpoint values
    (exact for P1 data): an edge ``(a, b)`` of length ``L`` contributes
    ``L/6 (2 g_a + g_b)`` to node ``a`` and ``L/6 (g_a + 2 g_b)`` to ``b``.
    Scalar ``flux`` values are broadcast.

    >>> import numpy as np
    >>> from repro.mesh.mesh import TriangularMesh
    >>> mesh = TriangularMesh(
    ...     np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]),
    ...     np.array([[0, 1, 2], [0, 2, 3]]),
    ... )
    >>> b = assemble_boundary_load(mesh, 1.0)     # g = 1 on the whole boundary
    >>> float(round(b.sum(), 12))                 # ∫ 1 ds = perimeter
    4.0
    """
    edges, _, lengths = _boundary_edge_geometry(mesh, edges)
    b = np.zeros(mesh.num_nodes)
    if edges.shape[0] == 0:
        return b
    pa, pb = mesh.nodes[edges[:, 0]], mesh.nodes[edges[:, 1]]
    if callable(flux):
        ga = np.asarray(flux(pa[:, 0], pa[:, 1]), dtype=np.float64)
        gb = np.asarray(flux(pb[:, 0], pb[:, 1]), dtype=np.float64)
        ga = np.broadcast_to(ga, (edges.shape[0],))
        gb = np.broadcast_to(gb, (edges.shape[0],))
    else:
        ga = gb = np.broadcast_to(np.asarray(flux, dtype=np.float64), (edges.shape[0],))
    np.add.at(b, edges[:, 0], lengths / 6.0 * (2.0 * ga + gb))
    np.add.at(b, edges[:, 1], lengths / 6.0 * (ga + 2.0 * gb))
    return b


def apply_dirichlet(
    stiffness: sp.csr_matrix,
    load: np.ndarray,
    boundary_nodes: np.ndarray,
    boundary_values: np.ndarray,
    mode: Literal["symmetric", "row"] = "symmetric",
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Impose Dirichlet conditions ``u[boundary_nodes] = boundary_values``.

    Returns the modified ``(A, b)``; the input matrices are not mutated.

    >>> import numpy as np
    >>> from repro.mesh.mesh import TriangularMesh
    >>> mesh = TriangularMesh(
    ...     np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]),
    ...     np.array([[0, 1, 2], [0, 2, 3]]),
    ... )
    >>> K = assemble_stiffness(mesh)
    >>> b = assemble_load(mesh, lambda x, y: np.zeros_like(x))
    >>> nodes = mesh.boundary_nodes               # every node here is on ∂Ω
    >>> A, rhs = apply_dirichlet(K, b, nodes, np.arange(4, dtype=float))
    >>> rhs.tolist()                              # boundary values reproduced
    [0.0, 1.0, 2.0, 3.0]
    """
    boundary_nodes = np.asarray(boundary_nodes, dtype=np.int64)
    boundary_values = np.asarray(boundary_values, dtype=np.float64)
    if boundary_nodes.shape != boundary_values.shape:
        raise ValueError("boundary_nodes and boundary_values must have the same length")
    n = stiffness.shape[0]
    mask = np.zeros(n, dtype=bool)
    mask[boundary_nodes] = True

    A = stiffness.tolil(copy=True)
    b = load.astype(np.float64).copy()

    if mode == "symmetric":
        # move known boundary contributions to the RHS before zeroing columns
        g_full = np.zeros(n)
        g_full[boundary_nodes] = boundary_values
        b -= stiffness @ g_full
        # zero boundary rows and columns, unit diagonal, exact boundary values
        csr = stiffness.tocsr(copy=True)
        keep = sp.diags((~mask).astype(np.float64))
        A = keep @ csr @ keep
        A = (A + sp.diags(mask.astype(np.float64))).tocsr()
        b[boundary_nodes] = boundary_values
        b[~mask] = b[~mask]  # interior already adjusted
        return A.tocsr(), b

    if mode == "row":
        csr = stiffness.tocsr(copy=True).tolil()
        for node, value in zip(boundary_nodes, boundary_values):
            csr.rows[node] = [int(node)]
            csr.data[node] = [1.0]
            b[node] = value
        return csr.tocsr(), b

    raise ValueError(f"unknown Dirichlet mode '{mode}'")
