"""Discretised elliptic problems: the ``Problem`` hierarchy.

:class:`Problem` bundles a mesh, the assembled system ``A u = b`` and helpers
to evaluate residuals, solve directly and compute error norms.  It is the
object the whole solver stack (:class:`~repro.core.hybrid_solver.HybridSolver`,
the DDM preconditioners, the dataset harvester) operates on; none of those
layers assume more than the attributes defined here.

Two concrete families exist:

* :class:`~repro.fem.poisson.PoissonProblem` — homogeneous-coefficient
  Poisson with Dirichlet boundary conditions (the paper's setting);
* :class:`DiffusionProblem` — variable-coefficient diffusion
  ``-∇·(κ ∇u) = f`` with mixed Dirichlet/Neumann/Robin conditions, built
  from a list of :class:`BoundaryCondition` regions.

New problem families should subclass :class:`Problem` and register a factory
in :mod:`repro.problems` so ``make_problem("family-name")`` can build them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Literal, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..mesh.mesh import TriangularMesh
from .assembly import (
    CoefficientLike,
    apply_dirichlet,
    assemble_boundary_load,
    assemble_boundary_mass,
    assemble_load,
    assemble_stiffness,
    evaluate_on_triangles,
)

__all__ = [
    "Problem",
    "DiffusionProblem",
    "BoundaryCondition",
    "dirichlet_bc",
    "neumann_bc",
    "robin_bc",
    "split_boundary_edges",
    "node_averaged_diffusion",
]

ScalarField = Callable[[np.ndarray, np.ndarray], np.ndarray]
#: predicate over boundary-edge midpoints selecting where a BC applies
RegionSelector = Callable[[np.ndarray, np.ndarray], np.ndarray]
BCKind = Literal["dirichlet", "neumann", "robin"]


def _as_field(value: Union[float, ScalarField]) -> ScalarField:
    """Promote a scalar to a constant field; pass callables through."""
    if callable(value):
        return value
    const = float(value)
    return lambda x, y: np.full_like(np.asarray(x, dtype=np.float64), const)


@dataclass(frozen=True)
class BoundaryCondition:
    """One boundary condition applied on a region of ∂Ω.

    Attributes
    ----------
    kind:
        ``"dirichlet"`` (``u = value``), ``"neumann"``
        (``κ ∂u/∂n = value``) or ``"robin"``
        (``κ ∂u/∂n + coefficient · u = value``).
    value:
        Boundary data ``g`` — a scalar or a callable ``g(x, y)``.
    coefficient:
        Robin weight α (scalar or callable); ignored for the other kinds.
    where:
        Optional region selector: a boolean-valued callable evaluated at
        boundary-edge midpoints.  ``None`` matches every edge not claimed by
        an earlier condition in the list.
    """

    kind: BCKind
    value: Union[float, ScalarField] = 0.0
    coefficient: Union[float, ScalarField] = 1.0
    where: Optional[RegionSelector] = None

    def __post_init__(self) -> None:
        if self.kind not in ("dirichlet", "neumann", "robin"):
            raise ValueError(f"unknown boundary-condition kind '{self.kind}'")


def dirichlet_bc(value: Union[float, ScalarField] = 0.0, where: Optional[RegionSelector] = None) -> BoundaryCondition:
    """Dirichlet condition ``u = value`` on the selected region."""
    return BoundaryCondition(kind="dirichlet", value=value, where=where)


def neumann_bc(flux: Union[float, ScalarField] = 0.0, where: Optional[RegionSelector] = None) -> BoundaryCondition:
    """Neumann condition ``κ ∂u/∂n = flux`` on the selected region."""
    return BoundaryCondition(kind="neumann", value=flux, where=where)


def robin_bc(
    coefficient: Union[float, ScalarField],
    value: Union[float, ScalarField] = 0.0,
    where: Optional[RegionSelector] = None,
) -> BoundaryCondition:
    """Robin condition ``κ ∂u/∂n + coefficient · u = value`` on the region."""
    return BoundaryCondition(kind="robin", value=value, coefficient=coefficient, where=where)


def split_boundary_edges(
    mesh: TriangularMesh, conditions: Sequence[BoundaryCondition]
) -> List[np.ndarray]:
    """Partition ``mesh.boundary_edges`` among the boundary conditions.

    Each edge is assigned to the first condition whose ``where`` selector is
    True at the edge midpoint (``where=None`` matches everything still
    unassigned).  Returns one (E_i, 2) edge array per condition; edges claimed
    by no condition are left out (they get the natural zero-Neumann treatment).
    """
    edges = mesh.boundary_edges
    midpoints = 0.5 * (mesh.nodes[edges[:, 0]] + mesh.nodes[edges[:, 1]])
    unassigned = np.ones(edges.shape[0], dtype=bool)
    pieces: List[np.ndarray] = []
    for bc in conditions:
        if bc.where is None:
            selected = unassigned.copy()
        else:
            selected = unassigned & np.asarray(
                bc.where(midpoints[:, 0], midpoints[:, 1]), dtype=bool
            )
        pieces.append(edges[selected])
        unassigned &= ~selected
    return pieces


def node_averaged_diffusion(mesh: TriangularMesh, triangle_values: np.ndarray) -> np.ndarray:
    """Measure-weighted average of per-cell κ onto the nodes.

    This is the per-node κ feature the GNN consumes: each node receives the
    measure-weighted mean of the κ values of its incident cells (triangle
    areas in 2D, tetrahedron volumes in 3D), so piecewise-constant fields
    stay exact away from material interfaces and get a single-layer
    transition across them.
    """
    cells = mesh.cells
    cell_values = np.broadcast_to(
        np.asarray(triangle_values, dtype=np.float64), (cells.shape[0],)
    )
    measures = np.abs(mesh.cell_measures)
    verts_per_cell = cells.shape[1]
    weighted = np.zeros(mesh.num_nodes)
    weight = np.zeros(mesh.num_nodes)
    np.add.at(weighted, cells.ravel(), np.repeat(cell_values * measures, verts_per_cell))
    np.add.at(weight, cells.ravel(), np.repeat(measures, verts_per_cell))
    return weighted / np.maximum(weight, 1e-300)


@dataclass
class Problem:
    """A discretised linear elliptic problem ``A u = b``.

    Attributes
    ----------
    mesh:
        The underlying triangular mesh.
    matrix:
        Sparse system matrix A (after boundary-condition elimination).
    rhs:
        Right-hand side b.
    stiffness:
        The raw (pre-elimination) stiffness matrix, kept for error norms.
    boundary_values:
        Dirichlet values at ``dirichlet_nodes``.
    dirichlet_mode:
        Elimination strategy used ("symmetric" or "row").
    dirichlet_nodes:
        Node indices carrying a Dirichlet condition; defaults to all of
        ``mesh.boundary_nodes`` (the pure-Dirichlet case).
    node_diffusion:
        Per-node κ values (None for constant-coefficient problems); consumed
        by the κ-aware GNN features.
    symmetric:
        Whether the assembled matrix is symmetric (SPD).  Nonsymmetric
        problems (e.g. convection-diffusion) must be solved with ``gmres`` or
        ``bicgstab``; :func:`repro.solvers.prepare` enforces this.
    """

    mesh: TriangularMesh
    matrix: sp.csr_matrix
    rhs: np.ndarray
    stiffness: sp.csr_matrix
    boundary_values: np.ndarray
    dirichlet_mode: str = "symmetric"
    dirichlet_nodes: Optional[np.ndarray] = None
    node_diffusion: Optional[np.ndarray] = None
    symmetric: bool = True

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_dofs(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def dirichlet_mask(self) -> np.ndarray:
        """Boolean mask of nodes carrying a Dirichlet condition."""
        if self.dirichlet_nodes is None:
            return self.mesh.boundary_mask
        mask = np.zeros(self.mesh.num_nodes, dtype=bool)
        mask[np.asarray(self.dirichlet_nodes, dtype=np.int64)] = True
        return mask

    def fingerprint(self) -> str:
        """Stable SHA-256 content hash of the discretised problem.

        Covers everything the solver stack consumes: the assembled operator
        (CSR structure + values), the right-hand side, the mesh geometry and
        connectivity, the Dirichlet mask, the per-node κ field and the
        symmetry flag.  Two problems with the same fingerprint produce
        bit-identical solver setups, which is what makes the hash a safe
        session-cache key for :mod:`repro.serve`.  The digest is computed
        once and cached on the instance (problems are immutable by
        convention after assembly).
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        import hashlib

        digest = hashlib.sha256()
        matrix = self.matrix.tocsr()
        for part in (
            np.asarray(matrix.indptr, dtype=np.int64),
            np.asarray(matrix.indices, dtype=np.int64),
            np.ascontiguousarray(matrix.data, dtype=np.float64),
            np.ascontiguousarray(self.rhs, dtype=np.float64),
            np.ascontiguousarray(self.mesh.nodes, dtype=np.float64),
            np.asarray(self.mesh.cells, dtype=np.int64),
            self.dirichlet_mask,
        ):
            digest.update(part.tobytes())
            digest.update(b"|")
        if self.node_diffusion is not None:
            digest.update(np.ascontiguousarray(self.node_diffusion, dtype=np.float64).tobytes())
        digest.update(b"|symmetric=1" if self.symmetric else b"|symmetric=0")
        digest.update(self._fingerprint_extra())
        value = digest.hexdigest()
        object.__setattr__(self, "_fingerprint", value)
        return value

    def _fingerprint_extra(self) -> bytes:
        """Subclass hook: extra bytes folded into :meth:`fingerprint`.

        The base problem contributes nothing (so existing steady-state hashes
        are unchanged); time-dependent problems append their scheme
        parameters and step operators here so serve session caches never mix
        different θ/dt discretisations of the same spatial operator.
        """
        return b""

    def residual(self, u: np.ndarray) -> np.ndarray:
        """Return the algebraic residual ``b - A u``."""
        return self.rhs - self.matrix @ u

    def relative_residual_norm(self, u: np.ndarray) -> float:
        """‖b - A u‖ / ‖b‖ (the convergence metric used throughout the paper)."""
        denom = np.linalg.norm(self.rhs)
        if denom == 0.0:
            return float(np.linalg.norm(self.residual(u)))
        return float(np.linalg.norm(self.residual(u)) / denom)

    # ------------------------------------------------------------------ #
    # direct solution and error norms
    # ------------------------------------------------------------------ #
    def solve_direct(self) -> np.ndarray:
        """Solve the system with a sparse LU factorisation (reference solution)."""
        return spla.spsolve(self.matrix.tocsc(), self.rhs)

    def l2_error(self, u: np.ndarray, exact: ScalarField) -> float:
        """Discrete relative L2 error against an exact solution evaluated at the nodes."""
        u_exact = np.asarray(exact(*self.mesh.nodes.T), dtype=np.float64)
        denom = np.linalg.norm(u_exact)
        if denom == 0.0:
            return float(np.linalg.norm(u - u_exact))
        return float(np.linalg.norm(u - u_exact) / denom)

    def energy_norm(self, u: np.ndarray) -> float:
        """Energy (stiffness) semi-norm ``sqrt(u^T K u)`` using the raw stiffness."""
        return float(np.sqrt(max(u @ (self.stiffness @ u), 0.0)))


@dataclass
class DiffusionProblem(Problem):
    """Variable-coefficient diffusion ``-∇·(κ ∇u) = f`` with mixed BCs.

    On top of the base :class:`Problem` attributes it keeps the per-triangle
    κ values (``triangle_diffusion``) and the original coefficient object
    (``diffusion``) so benchmarks can report the contrast ratio.
    """

    diffusion: Optional[CoefficientLike] = None
    triangle_diffusion: Optional[np.ndarray] = None

    @property
    def contrast(self) -> float:
        """Contrast ratio κ_max / κ_min over the mesh triangles."""
        if self.triangle_diffusion is None:
            return 1.0
        values = np.asarray(self.triangle_diffusion, dtype=np.float64)
        return float(values.max() / values.min())

    # ------------------------------------------------------------------ #
    @classmethod
    def from_fields(
        cls,
        mesh: TriangularMesh,
        diffusion: CoefficientLike,
        forcing: ScalarField,
        boundary_conditions: Optional[Sequence[BoundaryCondition]] = None,
        dirichlet_mode: Literal["symmetric", "row"] = "symmetric",
    ) -> "DiffusionProblem":
        """Assemble the P1 discretisation of ``-∇·(κ ∇u) = f``.

        ``boundary_conditions`` is an ordered list of
        :class:`BoundaryCondition` regions; boundary edges are assigned
        first-match-wins (see :func:`split_boundary_edges`), edges claimed by
        no condition receive the natural zero-Neumann treatment, and nodes
        shared between a Dirichlet and a non-Dirichlet region are Dirichlet
        (the standard convention).  The default is homogeneous Dirichlet on
        the whole boundary.

        The assembled system must be non-singular: at least one Dirichlet
        node or one Robin edge with positive coefficient is required.
        """
        if boundary_conditions is None:
            boundary_conditions = [dirichlet_bc(0.0)]
        triangle_diffusion = evaluate_on_triangles(mesh, diffusion)
        stiffness = assemble_stiffness(mesh, diffusion=triangle_diffusion)
        load = assemble_load(mesh, forcing)

        system = stiffness.copy()
        pieces = split_boundary_edges(mesh, boundary_conditions)
        dirichlet_value_of: dict = {}
        has_robin = False
        for bc, edges in zip(boundary_conditions, pieces):
            if edges.shape[0] == 0:
                continue
            if bc.kind == "dirichlet":
                nodes = np.unique(edges)
                values = _as_field(bc.value)(mesh.nodes[nodes, 0], mesh.nodes[nodes, 1])
                values = np.broadcast_to(np.asarray(values, dtype=np.float64), nodes.shape)
                for node, value in zip(nodes, values):
                    dirichlet_value_of[int(node)] = float(value)
            elif bc.kind == "neumann":
                load = load + assemble_boundary_load(mesh, bc.value, edges=edges)
            else:  # robin
                midpoints = 0.5 * (mesh.nodes[edges[:, 0]] + mesh.nodes[edges[:, 1]])
                alpha = np.broadcast_to(
                    np.asarray(
                        _as_field(bc.coefficient)(midpoints[:, 0], midpoints[:, 1]),
                        dtype=np.float64,
                    ),
                    (edges.shape[0],),
                )
                if np.any(alpha < 0.0):
                    raise ValueError("Robin coefficient must be non-negative (SPD system)")
                system = system + assemble_boundary_mass(mesh, alpha, edges=edges)
                load = load + assemble_boundary_load(mesh, bc.value, edges=edges)
                # a Robin region only regularises the system if α > 0 somewhere
                has_robin = has_robin or bool(np.any(alpha > 0.0))

        if not dirichlet_value_of and not has_robin:
            raise ValueError(
                "pure-Neumann problem is singular: add a Dirichlet or Robin region"
            )

        if dirichlet_value_of:
            dnodes = np.array(sorted(dirichlet_value_of), dtype=np.int64)
            dvalues = np.array([dirichlet_value_of[int(i)] for i in dnodes])
            matrix, rhs = apply_dirichlet(system, load, dnodes, dvalues, mode=dirichlet_mode)
        else:
            dnodes = np.zeros(0, dtype=np.int64)
            dvalues = np.zeros(0)
            matrix, rhs = system.tocsr(), load

        return cls(
            mesh=mesh,
            matrix=matrix,
            rhs=rhs,
            stiffness=stiffness,
            boundary_values=dvalues,
            dirichlet_mode=dirichlet_mode,
            dirichlet_nodes=dnodes,
            node_diffusion=node_averaged_diffusion(mesh, triangle_diffusion),
            diffusion=diffusion,
            triangle_diffusion=triangle_diffusion,
        )
