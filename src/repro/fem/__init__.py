"""P1 finite-element substrate for second-order elliptic PDEs.

Public surface:

* :func:`~repro.fem.assembly.assemble_stiffness` (κ-weighted),
  :func:`~repro.fem.assembly.assemble_convection` (nonsymmetric b·∇u term),
  :func:`~repro.fem.assembly.assemble_mass`,
  :func:`~repro.fem.assembly.assemble_load`,
  :func:`~repro.fem.assembly.assemble_boundary_mass`,
  :func:`~repro.fem.assembly.assemble_boundary_load`,
  :func:`~repro.fem.assembly.apply_dirichlet` — matrix/vector assembly.
* :mod:`repro.fem.assembly3d` — the tetrahedral P1 counterparts
  (:func:`~repro.fem.assembly3d.assemble_stiffness_3d`,
  :func:`~repro.fem.assembly3d.assemble_mass_3d`,
  :func:`~repro.fem.assembly3d.assemble_load_3d`).
* :class:`~repro.fem.problem.Problem`,
  :class:`~repro.fem.poisson.PoissonProblem`,
  :class:`~repro.fem.problem.DiffusionProblem`,
  :func:`~repro.fem.poisson.random_poisson_problem` — problem objects.
* :class:`~repro.fem.problem.BoundaryCondition` with the
  :func:`~repro.fem.problem.dirichlet_bc` / :func:`~repro.fem.problem.neumann_bc`
  / :func:`~repro.fem.problem.robin_bc` helpers — mixed boundary conditions.
* :mod:`repro.fem.coefficients` — named diffusion-coefficient families
  (checkerboard, channel, lognormal, radial bump).
* :class:`~repro.fem.functions.PolynomialField`,
  :func:`~repro.fem.functions.random_forcing`,
  :func:`~repro.fem.functions.random_boundary`,
  :func:`~repro.fem.functions.manufactured_solution` — field definitions.
* :mod:`repro.fem.quadrature` — quadrature rules on triangles.
"""

from .assembly3d import (
    assemble_load_3d,
    assemble_mass_3d,
    assemble_stiffness_3d,
    evaluate_on_tets,
    tet_centroids,
    tet_gradient_operators,
)
from .assembly import (
    apply_dirichlet,
    assemble_boundary_load,
    assemble_boundary_mass,
    assemble_convection,
    assemble_load,
    assemble_mass,
    assemble_stiffness,
    evaluate_on_triangles,
    gradient_operators,
    triangle_centroids,
)
from .coefficients import (
    CheckerboardField,
    ChannelField,
    DiffusionField,
    LognormalField,
    RadialField,
    field_contrast,
)
from .functions import (
    PolynomialField,
    constant_field,
    manufactured_solution,
    random_boundary,
    random_forcing,
)
from .poisson import PoissonProblem, random_poisson_problem
from .problem import (
    BoundaryCondition,
    DiffusionProblem,
    Problem,
    dirichlet_bc,
    neumann_bc,
    node_averaged_diffusion,
    robin_bc,
    split_boundary_edges,
)
from .quadrature import TriangleQuadrature, centroid_rule, six_point_rule, three_point_rule

__all__ = [
    "assemble_stiffness",
    "assemble_convection",
    "assemble_mass",
    "assemble_load",
    "assemble_boundary_mass",
    "assemble_boundary_load",
    "apply_dirichlet",
    "gradient_operators",
    "triangle_centroids",
    "evaluate_on_triangles",
    "assemble_stiffness_3d",
    "assemble_mass_3d",
    "assemble_load_3d",
    "tet_gradient_operators",
    "tet_centroids",
    "evaluate_on_tets",
    "Problem",
    "PoissonProblem",
    "DiffusionProblem",
    "random_poisson_problem",
    "BoundaryCondition",
    "dirichlet_bc",
    "neumann_bc",
    "robin_bc",
    "split_boundary_edges",
    "node_averaged_diffusion",
    "DiffusionField",
    "CheckerboardField",
    "ChannelField",
    "LognormalField",
    "RadialField",
    "field_contrast",
    "PolynomialField",
    "random_forcing",
    "random_boundary",
    "constant_field",
    "manufactured_solution",
    "TriangleQuadrature",
    "centroid_rule",
    "three_point_rule",
    "six_point_rule",
]
