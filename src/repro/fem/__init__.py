"""P1 finite-element substrate for the Poisson equation.

Public surface:

* :func:`~repro.fem.assembly.assemble_stiffness`,
  :func:`~repro.fem.assembly.assemble_mass`,
  :func:`~repro.fem.assembly.assemble_load`,
  :func:`~repro.fem.assembly.apply_dirichlet` — matrix/vector assembly.
* :class:`~repro.fem.poisson.PoissonProblem`,
  :func:`~repro.fem.poisson.random_poisson_problem` — problem objects.
* :class:`~repro.fem.functions.PolynomialField`,
  :func:`~repro.fem.functions.random_forcing`,
  :func:`~repro.fem.functions.random_boundary`,
  :func:`~repro.fem.functions.manufactured_solution` — field definitions.
* :mod:`repro.fem.quadrature` — quadrature rules on triangles.
"""

from .assembly import apply_dirichlet, assemble_load, assemble_mass, assemble_stiffness, gradient_operators
from .functions import (
    PolynomialField,
    constant_field,
    manufactured_solution,
    random_boundary,
    random_forcing,
)
from .poisson import PoissonProblem, random_poisson_problem
from .quadrature import TriangleQuadrature, centroid_rule, six_point_rule, three_point_rule

__all__ = [
    "assemble_stiffness",
    "assemble_mass",
    "assemble_load",
    "apply_dirichlet",
    "gradient_operators",
    "PoissonProblem",
    "random_poisson_problem",
    "PolynomialField",
    "random_forcing",
    "random_boundary",
    "constant_field",
    "manufactured_solution",
    "TriangleQuadrature",
    "centroid_rule",
    "three_point_rule",
    "six_point_rule",
]
