"""Krylov solvers and algebraic preconditioners.

Public surface:

* :func:`~repro.krylov.cg.conjugate_gradient`,
  :func:`~repro.krylov.cg.preconditioned_conjugate_gradient` — CG / PCG
  (paper Algorithm 1).
* :func:`~repro.krylov.bicgstab.bicgstab`, :func:`~repro.krylov.gmres.gmres` —
  additional Krylov methods.
* :func:`~repro.krylov.block.lockstep_pcg` — fused multi-RHS PCG, bit-identical
  per column to the single-RHS solver (the micro-batching fast path).
* :class:`~repro.krylov.ic.IncompleteCholeskyPreconditioner`,
  :func:`~repro.krylov.ic.incomplete_cholesky` — IC(0) baseline of Table III.
* :class:`~repro.krylov.result.SolveResult` — common result object.
* :mod:`~repro.krylov.failures` — the machine-readable breakdown taxonomy
  stamped on ``SolveResult.failure_reason`` when a solve terminates without
  converging.
"""

from . import failures
from .bicgstab import bicgstab
from .block import lockstep_pcg
from .cg import conjugate_gradient, preconditioned_conjugate_gradient
from .gmres import gmres
from .ic import IncompleteCholeskyPreconditioner, incomplete_cholesky
from .result import SolveResult

__all__ = [
    "conjugate_gradient",
    "preconditioned_conjugate_gradient",
    "lockstep_pcg",
    "bicgstab",
    "gmres",
    "IncompleteCholeskyPreconditioner",
    "incomplete_cholesky",
    "SolveResult",
    "failures",
]
