"""Incomplete Cholesky preconditioner with zero fill-in — IC(0).

This is the "state-of-the-art optimised preconditioner" baseline of the
paper's Table III (column ``IC(0)``).  The factorisation keeps the sparsity
pattern of the lower triangle of A: ``A ≈ L Lᵀ`` with ``L`` lower triangular
and ``L[i, j] ≠ 0`` only where ``A[i, j] ≠ 0``.

The implementation works directly on CSC column structures and falls back to a
diagonal shift if a pivot becomes non-positive (standard practice for matrices
that are not M-matrices).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..ddm.asm import Preconditioner

__all__ = ["incomplete_cholesky", "IncompleteCholeskyPreconditioner"]


def incomplete_cholesky(matrix: sp.spmatrix, shift: float = 0.0, max_shift_attempts: int = 6) -> sp.csc_matrix:
    """Compute the IC(0) factor L of an SPD sparse matrix.

    Parameters
    ----------
    matrix:
        Sparse SPD matrix.
    shift:
        Initial diagonal shift α in ``A + α diag(A)``; increased geometrically
        if a breakdown (non-positive pivot) occurs.
    max_shift_attempts:
        How many times to retry with a larger shift before giving up.

    Returns
    -------
    L such that ``A ≈ L @ L.T`` with the sparsity of ``tril(A)``.

    >>> import numpy as np, scipy.sparse as sp
    >>> A = sp.diags([[-1.0, -1.0], [2.0, 2.0, 2.0], [-1.0, -1.0]], [-1, 0, 1])
    >>> L = incomplete_cholesky(A.tocsr())
    >>> bool(np.allclose((L @ L.T).toarray(), A.toarray()))  # tridiag: IC(0) is exact
    True
    """
    base = matrix.tocsr()
    diag = base.diagonal()
    if np.any(diag <= 0):
        raise ValueError("matrix has non-positive diagonal entries; not SPD")

    attempt_shift = shift
    for _ in range(max_shift_attempts + 1):
        shifted = base + attempt_shift * sp.diags(diag)
        lower = sp.tril(shifted, format="csc")
        factor = _ic0_factor(lower)
        if factor is not None:
            return factor
        attempt_shift = max(attempt_shift * 10.0, 1e-3)
    raise RuntimeError("IC(0) factorisation failed even with diagonal shifting")


def _ic0_factor(lower: sp.csc_matrix) -> Optional[sp.csc_matrix]:
    """Attempt an in-pattern incomplete Cholesky; return None on breakdown."""
    lower = lower.copy().tocsc()
    n = lower.shape[0]
    indptr, indices, data = lower.indptr, lower.indices, lower.data

    # For the in-pattern update we need, for each column, quick access to the
    # (row -> position) map of its stored entries.
    col_maps = []
    for j in range(n):
        start, end = indptr[j], indptr[j + 1]
        col_maps.append({int(indices[p]): p for p in range(start, end)})

    for j in range(n):
        start, end = indptr[j], indptr[j + 1]
        # diagonal entry is the first stored entry of the column in tril CSC
        diag_pos = None
        for p in range(start, end):
            if indices[p] == j:
                diag_pos = p
                break
        if diag_pos is None:
            return None
        pivot = data[diag_pos]
        if pivot <= 0.0:
            return None
        pivot_sqrt = np.sqrt(pivot)
        data[diag_pos] = pivot_sqrt
        # scale the sub-diagonal part of column j
        for p in range(start, end):
            if indices[p] > j:
                data[p] /= pivot_sqrt
        # update the remaining columns k > j that are in the pattern of column j
        for p in range(start, end):
            k = int(indices[p])
            if k <= j:
                continue
            ljk = data[p]
            col_k = col_maps[k]
            for q in range(start, end):
                i = int(indices[q])
                if i < k:
                    continue
                pos = col_k.get(i)
                if pos is not None:
                    data[pos] -= data[q] * ljk
    return sp.csc_matrix((data, indices, indptr), shape=lower.shape)


class IncompleteCholeskyPreconditioner(Preconditioner):
    """Apply ``M⁻¹ r`` with ``M = L Lᵀ`` through two sparse triangular solves.

    >>> import numpy as np, scipy.sparse as sp
    >>> A = sp.diags([[-1.0, -1.0], [2.0, 2.0, 2.0], [-1.0, -1.0]], [-1, 0, 1]).tocsr()
    >>> M = IncompleteCholeskyPreconditioner(A)
    >>> bool(np.allclose(A @ M.apply(np.array([1.0, 0.0, 1.0])), [1.0, 0.0, 1.0]))
    True
    """

    def __init__(self, matrix: sp.spmatrix, shift: float = 0.0) -> None:
        self.factor = incomplete_cholesky(matrix, shift=shift)
        self._factor_csr = self.factor.tocsr()
        self._factor_t_csr = self.factor.T.tocsr()
        self._n = matrix.shape[0]

    @property
    def shape(self) -> tuple:
        return (self._n, self._n)

    def apply(self, residual: np.ndarray) -> np.ndarray:
        residual = np.asarray(residual, dtype=np.float64)
        y = spla.spsolve_triangular(self._factor_csr, residual, lower=True)
        return spla.spsolve_triangular(self._factor_t_csr, y, lower=False)
