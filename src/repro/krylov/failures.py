"""Machine-readable breakdown taxonomy for the Krylov solvers.

Every solver in :mod:`repro.krylov` stamps ``SolveResult.failure_reason`` with
one of these constants when it terminates without converging.  The constants
are plain strings (stable across releases, safe to serialise into serve
responses and logs) rather than an enum so downstream consumers — the
degradation ladder in :mod:`repro.solvers`, the circuit breaker in
:mod:`repro.serve`, alerting pipelines — can match on them without importing
solver internals.

Taxonomy
--------
``non_finite_rhs``
    The right-hand side itself contains NaN/Inf; nothing to solve.
``non_finite_operator``
    A matrix-vector product produced NaN/Inf (corrupted matrix entries).
``non_finite_preconditioner``
    A preconditioner application produced NaN/Inf (e.g. a poisoned GNN
    checkpoint emitting NaN corrections).
``non_finite_residual``
    The residual norm left the representable range (overflow during a
    divergent sweep).
``indefinite_operator``
    CG observed ``pᵀAp ≤ 0``: the operator is not SPD (or round-off destroyed
    positive-definiteness).
``rho_breakdown``
    The ``ρ = rᵀz`` (CG) / ``ρ = r̂ᵀr`` (BiCGStab) inner product vanished with
    a nonzero residual — the classic Lanczos/bi-orthogonality breakdown.
``breakdown``
    Other method-specific breakdowns: BiCGStab's ``ω = 0`` stabilisation
    failure, GMRES's singular least-squares system.
``stagnation``
    No new best relative residual for ``stagnation_window`` consecutive
    iterations — the iteration is alive but going nowhere.
``max_iterations``
    The iteration cap was reached without meeting the tolerance.

>>> NON_FINITE_PRECONDITIONER
'non_finite_preconditioner'
>>> is_breakdown(RHO_BREAKDOWN), is_breakdown(MAX_ITERATIONS)
(True, False)
>>> describe(STAGNATION)
'no new best relative residual within the stagnation window'
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "NON_FINITE_RHS",
    "NON_FINITE_OPERATOR",
    "NON_FINITE_PRECONDITIONER",
    "NON_FINITE_RESIDUAL",
    "INDEFINITE_OPERATOR",
    "RHO_BREAKDOWN",
    "BREAKDOWN",
    "STAGNATION",
    "MAX_ITERATIONS",
    "FAILURE_REASONS",
    "describe",
    "is_breakdown",
]

NON_FINITE_RHS = "non_finite_rhs"
NON_FINITE_OPERATOR = "non_finite_operator"
NON_FINITE_PRECONDITIONER = "non_finite_preconditioner"
NON_FINITE_RESIDUAL = "non_finite_residual"
INDEFINITE_OPERATOR = "indefinite_operator"
RHO_BREAKDOWN = "rho_breakdown"
BREAKDOWN = "breakdown"
STAGNATION = "stagnation"
MAX_ITERATIONS = "max_iterations"

#: Every reason a solver may stamp, in severity order (hard numerical
#: breakdowns first, soft non-convergence last).
FAILURE_REASONS = (
    NON_FINITE_RHS,
    NON_FINITE_OPERATOR,
    NON_FINITE_PRECONDITIONER,
    NON_FINITE_RESIDUAL,
    INDEFINITE_OPERATOR,
    RHO_BREAKDOWN,
    BREAKDOWN,
    STAGNATION,
    MAX_ITERATIONS,
)

_DESCRIPTIONS = {
    NON_FINITE_RHS: "right-hand side contains non-finite entries",
    NON_FINITE_OPERATOR: "matrix-vector product produced non-finite entries",
    NON_FINITE_PRECONDITIONER: "preconditioner application produced non-finite entries",
    NON_FINITE_RESIDUAL: "residual norm became non-finite",
    INDEFINITE_OPERATOR: "operator is not positive definite (p'Ap <= 0)",
    RHO_BREAKDOWN: "Krylov inner product rho vanished with a nonzero residual",
    BREAKDOWN: "method-specific breakdown (omega = 0 / singular projection)",
    STAGNATION: "no new best relative residual within the stagnation window",
    MAX_ITERATIONS: "iteration cap reached before the tolerance was met",
}


def describe(reason: Optional[str]) -> str:
    """Human-readable description of a ``failure_reason`` value.

    >>> describe(None)
    'converged'
    >>> describe("not-a-reason")
    'unknown failure'
    """
    if reason is None:
        return "converged"
    return _DESCRIPTIONS.get(reason, "unknown failure")


def is_breakdown(reason: Optional[str]) -> bool:
    """True for hard numerical breakdowns (as opposed to running out of
    iterations or stagnating, which leave a usable partial iterate).

    >>> is_breakdown(None)
    False
    """
    return reason is not None and reason not in (MAX_ITERATIONS, STAGNATION)
