"""Lockstep multi-RHS Preconditioned Conjugate Gradient.

:func:`lockstep_pcg` solves ``A x_j = b_j`` for a batch of right-hand sides
**in lockstep**: every Krylov iteration advances all still-active columns at
once, so the per-iteration work runs on ``(n, k)`` blocks — one SpMM instead
of ``k`` SpMVs, one multi-column preconditioner application instead of ``k``
single ones, broadcast AXPYs instead of ``k`` vector updates.  At the serving
scale of this repository the per-solve cost is dominated by fixed Python/BLAS
call overhead, so batching ``k`` solves into one lockstep sweep is the
mechanism that makes request micro-batching (:mod:`repro.serve`) beat
one-solve-per-request throughput.

**Bit-identity contract.**  Column ``j`` of the lockstep solve is bit-identical
to :func:`~repro.krylov.cg.preconditioned_conjugate_gradient` run alone on
``b_j`` — same solution bytes, same iteration count, same residual history.
This holds because every numerical operation is column-independent and is
evaluated by the same kernels in the same order as the single-RHS path:

* the work arrays are **Fortran-ordered**, so each column is a contiguous
  vector and per-column dot products/norms hit the exact BLAS code path of the
  single-RHS solver (a strided dot is *not* bit-identical to a contiguous
  one — that is why the layout matters);
* CSR SpMM (``A @ P``) accumulates each column exactly like the corresponding
  SpMV (scipy's ``csr_matvecs`` iterates the same nonzeros in the same order);
* the ``alpha``/``beta`` scalar recurrences are computed per column and applied
  with elementwise broadcasts, which perform the identical multiply-add per
  element;
* a column leaves the active set the moment it converges (or breaks down or
  hits the iteration cap); the survivors are compacted into fresh F-ordered
  arrays (exact copies), so later iterations never touch finished columns.

Preconditioners participate through ``apply_columns(R) -> Z`` (see
:class:`repro.ddm.asm.Preconditioner`), whose own contract is per-column
bit-identity with ``apply``.  The whole DDM family batches genuinely:
DDM-LU/Jacobi solve all stacked locals at once, and DDM-GNN runs **one**
fused multi-column DSS forward per inference batch
(:meth:`repro.core.ddm_gnn.DDMGNNPreconditioner.apply_columns`), so a
lockstep iteration costs one network sweep instead of k.

Per-column timing is reported amortised: each :class:`SolveResult` carries
``batch_elapsed / num_rhs`` (the honest per-RHS share of the lockstep sweep)
and ``info["lockstep"]`` records the batch-level totals.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..ddm.asm import IdentityPreconditioner, Preconditioner
from . import failures
from .result import SolveResult

__all__ = ["lockstep_pcg"]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def _apply_columns(precond, residuals: np.ndarray) -> np.ndarray:
    """Multi-column preconditioner application, F-ordered output.

    Uses the preconditioner's ``apply_columns`` when available (the batched
    fast path of the DDM family); duck-typed preconditioners exposing only
    ``apply`` are served by a per-column loop, which is trivially
    bit-identical.
    """
    batched = getattr(precond, "apply_columns", None)
    if batched is not None:
        return np.asfortranarray(batched(residuals))
    out = np.empty(residuals.shape, order="F")
    for i in range(residuals.shape[1]):
        out[:, i] = precond.apply(residuals[:, i])
    return out


def lockstep_pcg(
    matrix: MatrixLike,
    rhs_batch: np.ndarray,
    preconditioner: Optional[Preconditioner] = None,
    initial_guess: Optional[np.ndarray] = None,
    tolerance: float = 1e-6,
    max_iterations: Optional[int] = None,
    callback: Optional[Callable[[int, Dict[int, float]], None]] = None,
    stagnation_window: Optional[int] = None,
) -> List[SolveResult]:
    """Solve ``A x_j = b_j`` for every row of ``rhs_batch`` in lockstep.

    Parameters mirror
    :func:`~repro.krylov.cg.preconditioned_conjugate_gradient`; ``rhs_batch``
    is ``(num_rhs, n)`` (rows are right-hand sides, matching
    ``SolverSession.solve_many``) and ``initial_guess`` is a single ``(n,)``
    vector shared by every column (as sequential solves with the same ``x0``
    would use).  ``callback(iteration, residuals)`` — the lockstep analogue of
    the single-RHS per-iteration hook — receives a dict mapping each
    still-active original row index to its relative residual; it only *reads*
    quantities the iteration already computed, so supplying it cannot perturb
    the bit-identity contract.  Returns one :class:`SolveResult` per row, each
    bit-identical to the corresponding single-RHS solve.

    Failure handling mirrors the single-RHS solver guard-for-guard (the guard
    *order* is part of the bit-identity contract): a column whose matvec,
    preconditioner output or residual goes non-finite — or that breaks down
    or stagnates — is finalized with the same
    :attr:`~repro.krylov.result.SolveResult.failure_reason` the single-RHS
    solve would stamp, and is compacted out so the surviving columns continue
    bit-identically.

    >>> import numpy as np
    >>> A = np.array([[4.0, 1.0], [1.0, 3.0]])
    >>> B = np.array([[1.0, 2.0], [0.5, -1.0]])
    >>> results = lockstep_pcg(A, B, tolerance=1e-12)
    >>> [bool(np.allclose(A @ r.solution, b)) for r, b in zip(results, B)]
    [True, True]
    """
    rhs_batch = np.atleast_2d(np.asarray(rhs_batch, dtype=np.float64))
    num_rhs, n = rhs_batch.shape
    csr = matrix.tocsr() if sp.issparse(matrix) else np.asarray(matrix)
    precond = preconditioner if preconditioner is not None else IdentityPreconditioner(n)
    max_iterations = max_iterations if max_iterations is not None else 10 * n

    start = time.perf_counter()
    precond_time = 0.0

    def base_info() -> dict:
        return {"solver": "pcg", "tolerance": tolerance}

    results: List[Optional[SolveResult]] = [None] * num_rhs

    rhs_norms_all = np.array([float(np.linalg.norm(rhs_batch[j])) for j in range(num_rhs)])
    for j in np.flatnonzero(rhs_norms_all == 0.0):
        results[j] = SolveResult(
            solution=np.zeros(n),
            converged=True,
            iterations=0,
            residual_history=[0.0],
            info=base_info(),
        )
    # non-finite right-hand sides never enter the batch (the single-RHS
    # solver refuses them up front, before any preconditioner work)
    for j in np.flatnonzero(~np.isfinite(rhs_norms_all)):
        results[j] = SolveResult(
            solution=np.zeros(n) if initial_guess is None
            else np.asarray(initial_guess, dtype=np.float64).copy(),
            converged=False,
            iterations=0,
            residual_history=[float("inf")],
            info=base_info(),
            failure_reason=failures.NON_FINITE_RHS,
        )
    cols = [
        int(j)
        for j in np.flatnonzero((rhs_norms_all != 0.0) & np.isfinite(rhs_norms_all))
    ]

    def finalize(col: int, solution: np.ndarray, converged: bool, iterations: int,
                 history: List[float], failure_reason: Optional[str] = None) -> None:
        info = base_info()
        info["preconditioner"] = type(precond).__name__
        results[col] = SolveResult(
            solution=np.ascontiguousarray(solution),
            converged=converged,
            iterations=iterations,
            residual_history=history,
            info=info,
            failure_reason=failure_reason,
        )

    if cols:
        k = len(cols)
        X = np.zeros((n, k), order="F")
        if initial_guess is not None:
            x0 = np.asarray(initial_guess, dtype=np.float64)
            for i in range(k):
                X[:, i] = x0
        R = np.asfortranarray(rhs_batch[cols].T - (csr @ X))
        rhs_norms = rhs_norms_all[cols]

        t0 = time.perf_counter()
        Z = _apply_columns(precond, R)
        precond_time += time.perf_counter() - t0
        P = Z.copy(order="F")

        histories: List[List[float]] = [
            [float(np.linalg.norm(R[:, i]) / rhs_norms[i])] for i in range(k)
        ]
        rho = np.array([float(R[:, i] @ Z[:, i]) for i in range(k)])

        # per-column stagnation trackers (mirroring the single-RHS solver's
        # best-so-far counters)
        best_rel = np.array([histories[i][0] for i in range(k)])
        since_best = np.zeros(k, dtype=np.int64)

        # pre-loop checks, in the single-RHS guard order: convergence at
        # iteration 0, then non-finite residual / preconditioner output /
        # vanishing rho
        keep = []
        for i in range(k):
            if histories[i][0] < tolerance:
                finalize(cols[i], X[:, i], True, 0, histories[i])
            elif not np.isfinite(histories[i][0]):
                finalize(cols[i], X[:, i], False, 0, histories[i],
                         failures.NON_FINITE_RESIDUAL)
            elif not np.isfinite(Z[:, i]).all():
                finalize(cols[i], X[:, i], False, 0, histories[i],
                         failures.NON_FINITE_PRECONDITIONER)
            elif rho[i] == 0.0 or not np.isfinite(rho[i]):
                finalize(cols[i], X[:, i], False, 0, histories[i],
                         failures.RHO_BREAKDOWN)
            else:
                keep.append(i)

        def compact(keep_idx: List[int]) -> None:
            nonlocal X, R, P, rho, rhs_norms, cols, histories, best_rel, since_best
            X = np.asfortranarray(X[:, keep_idx])
            R = np.asfortranarray(R[:, keep_idx])
            P = np.asfortranarray(P[:, keep_idx])
            rho = rho[keep_idx]
            rhs_norms = rhs_norms[keep_idx]
            cols = [cols[i] for i in keep_idx]
            histories = [histories[i] for i in keep_idx]
            best_rel = best_rel[keep_idx]
            since_best = since_best[keep_idx]

        if len(keep) != k:
            compact(keep)

        iteration = 0
        while cols and iteration < max_iterations:
            a = len(cols)
            Q = np.asfortranarray(csr @ P)
            denom = np.array([float(P[:, i] @ Q[:, i]) for i in range(a)])

            # pre-update breakdowns (mirroring cg.py's guard order: non-finite
            # matvec output, non-finite denom, then p'Ap <= 0): the single-RHS
            # solver breaks *before* the update, keeping the current iterate
            pre_reason: List[Optional[str]] = [None] * a
            for i in range(a):
                if not np.isfinite(Q[:, i]).all():
                    pre_reason[i] = failures.NON_FINITE_OPERATOR
                elif not np.isfinite(denom[i]):
                    pre_reason[i] = failures.NON_FINITE_OPERATOR
                elif denom[i] <= 0.0:
                    pre_reason[i] = failures.INDEFINITE_OPERATOR
            if any(reason is not None for reason in pre_reason):
                survivors = [i for i in range(a) if pre_reason[i] is None]
                for i in range(a):
                    if pre_reason[i] is not None:
                        finalize(cols[i], X[:, i], False, iteration, histories[i],
                                 pre_reason[i])
                if not survivors:
                    break
                Q = np.asfortranarray(Q[:, survivors])
                denom = denom[survivors]
                compact(survivors)
                a = len(cols)

            alpha = rho / denom
            X += alpha[None, :] * P
            R -= alpha[None, :] * Q
            iteration += 1

            rels = np.array([float(np.linalg.norm(R[:, i]) / rhs_norms[i]) for i in range(a)])
            for i in range(a):
                histories[i].append(float(rels[i]))
            if callback is not None:
                callback(iteration, {cols[i]: float(rels[i]) for i in range(a)})

            # post-update checks in the single-RHS order: non-finite residual,
            # convergence, stagnation
            post_reason: List[Optional[str]] = [None] * a
            done = [False] * a
            for i in range(a):
                rel = float(rels[i])
                if not np.isfinite(rel):
                    post_reason[i] = failures.NON_FINITE_RESIDUAL
                elif rel < tolerance:
                    done[i] = True
                elif rel < best_rel[i]:
                    best_rel[i] = rel
                    since_best[i] = 0
                else:
                    since_best[i] += 1
                    if stagnation_window is not None and since_best[i] >= stagnation_window:
                        post_reason[i] = failures.STAGNATION
            survivors = [i for i in range(a) if not done[i] and post_reason[i] is None]
            for i in range(a):
                if done[i]:
                    finalize(cols[i], X[:, i], True, iteration, histories[i])
                elif post_reason[i] is not None:
                    finalize(cols[i], X[:, i], False, iteration, histories[i],
                             post_reason[i])
            if not survivors:
                break
            if iteration >= max_iterations:
                for i in survivors:
                    finalize(cols[i], X[:, i], False, iteration, histories[i],
                             failures.MAX_ITERATIONS)
                break
            if len(survivors) != a:
                compact(survivors)
                a = len(cols)

            t0 = time.perf_counter()
            Z = _apply_columns(precond, R)
            precond_time += time.perf_counter() - t0
            rho_next = np.array([float(R[:, i] @ Z[:, i]) for i in range(a)])

            # post-apply guards (cg.py order): a poisoned preconditioner
            # column or a vanishing rho leaves the batch with the current
            # iterate; survivors continue bit-identically
            apply_reason: List[Optional[str]] = [None] * a
            for i in range(a):
                if not np.isfinite(Z[:, i]).all():
                    apply_reason[i] = failures.NON_FINITE_PRECONDITIONER
                elif rho_next[i] == 0.0 or not np.isfinite(rho_next[i]):
                    apply_reason[i] = failures.RHO_BREAKDOWN
            if any(reason is not None for reason in apply_reason):
                survivors = [i for i in range(a) if apply_reason[i] is None]
                for i in range(a):
                    if apply_reason[i] is not None:
                        finalize(cols[i], X[:, i], False, iteration, histories[i],
                                 apply_reason[i])
                if not survivors:
                    break
                Z = np.asfortranarray(Z[:, survivors])
                rho_next = rho_next[survivors]
                compact(survivors)
                a = len(cols)

            beta = rho_next / rho
            rho = rho_next
            P = np.asfortranarray(Z + beta[None, :] * P)

        # columns never entered the loop (e.g. max_iterations == 0)
        for i, col in enumerate(cols):
            if results[col] is None:
                finalize(col, X[:, i], False, iteration, histories[i],
                         failures.MAX_ITERATIONS)

    elapsed = time.perf_counter() - start
    share = elapsed / num_rhs
    precond_share = precond_time / num_rhs
    for result in results:
        result.elapsed_time = share
        result.preconditioner_time = precond_share
        result.info["lockstep"] = {
            "num_rhs": num_rhs,
            "batch_elapsed_s": elapsed,
            "batch_preconditioner_s": precond_time,
        }
    return results
