"""Restarted GMRES solver (Saad & Schultz, 1986).

Included for completeness (the paper cites GMRES among the Krylov methods a
preconditioner accelerates) and used with non-symmetric preconditioners such
as Restricted Additive Schwarz in the ablation benches.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..ddm.asm import IdentityPreconditioner, Preconditioner
from . import failures
from .result import SolveResult

__all__ = ["gmres"]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def gmres(
    matrix: MatrixLike,
    rhs: np.ndarray,
    preconditioner: Optional[Preconditioner] = None,
    initial_guess: Optional[np.ndarray] = None,
    tolerance: float = 1e-6,
    restart: int = 50,
    max_iterations: Optional[int] = None,
    stagnation_window: Optional[int] = None,
) -> SolveResult:
    """Right-preconditioned restarted GMRES(m) with Givens rotations.

    Non-finite preconditioner/matvec output, a singular projected system and
    (when ``stagnation_window`` is set) stagnation all terminate the iteration
    with a machine-readable ``failure_reason`` (:mod:`repro.krylov.failures`);
    the update from the valid Arnoldi columns built so far is still applied,
    so the returned iterate is the best one available.

    >>> import numpy as np
    >>> A = np.array([[2.0, 1.0], [0.0, 1.5]])    # non-symmetric is fine
    >>> result = gmres(A, np.array([3.0, 3.0]), tolerance=1e-12)
    >>> result.converged, bool(np.allclose(A @ result.solution, [3.0, 3.0]))
    (True, True)
    """
    rhs = np.asarray(rhs, dtype=np.float64)
    n = rhs.shape[0]
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        matvec: Callable[[np.ndarray], np.ndarray] = lambda v: csr @ v
    else:
        arr = np.asarray(matrix)
        matvec = lambda v: arr @ v
    precond = preconditioner if preconditioner is not None else IdentityPreconditioner(n)
    max_iterations = max_iterations if max_iterations is not None else 10 * n
    restart = max(1, min(restart, n))

    rhs_norm = np.linalg.norm(rhs)
    if rhs_norm == 0.0:
        return SolveResult(np.zeros(n), True, 0, [0.0], info={"solver": "gmres"})
    if not np.isfinite(rhs_norm):
        return SolveResult(
            np.zeros(n) if initial_guess is None
            else np.asarray(initial_guess, dtype=np.float64).copy(),
            False, 0, [float("inf")],
            info={"solver": "gmres"},
            failure_reason=failures.NON_FINITE_RHS,
        )

    start = time.perf_counter()
    precond_time = 0.0
    x = np.zeros(n) if initial_guess is None else np.asarray(initial_guess, dtype=np.float64).copy()
    residual_history = []
    total_iterations = 0
    converged = False
    failure: Optional[str] = None
    best_rel = float("inf")
    since_best = 0

    while total_iterations < max_iterations and not converged and failure is None:
        r = rhs - matvec(x)
        beta = np.linalg.norm(r)
        rel0 = float(beta / rhs_norm)
        if not residual_history:
            residual_history.append(rel0)
            best_rel = rel0
        if rel0 < tolerance:
            converged = True
            break
        if not np.isfinite(rel0):
            failure = failures.NON_FINITE_RESIDUAL
            break

        # Arnoldi with modified Gram-Schmidt on the preconditioned operator A M^{-1}
        basis = np.zeros((restart + 1, n))
        hessenberg = np.zeros((restart + 1, restart))
        givens_c = np.zeros(restart)
        givens_s = np.zeros(restart)
        g = np.zeros(restart + 1)
        g[0] = beta
        basis[0] = r / beta
        completed = 0

        for j in range(restart):
            if total_iterations >= max_iterations:
                break
            t0 = time.perf_counter()
            z = precond.apply(basis[j])
            precond_time += time.perf_counter() - t0
            if not np.isfinite(z).all():
                # column j is poisoned; the update below still uses the
                # `completed` valid columns built before it
                failure = failures.NON_FINITE_PRECONDITIONER
                break
            w = matvec(z)
            if not np.isfinite(w).all():
                failure = failures.NON_FINITE_OPERATOR
                break
            for i in range(j + 1):
                hessenberg[i, j] = float(w @ basis[i])
                w -= hessenberg[i, j] * basis[i]
            hessenberg[j + 1, j] = np.linalg.norm(w)
            if hessenberg[j + 1, j] > 1e-14:
                basis[j + 1] = w / hessenberg[j + 1, j]
            # apply previous Givens rotations to the new column
            for i in range(j):
                temp = givens_c[i] * hessenberg[i, j] + givens_s[i] * hessenberg[i + 1, j]
                hessenberg[i + 1, j] = -givens_s[i] * hessenberg[i, j] + givens_c[i] * hessenberg[i + 1, j]
                hessenberg[i, j] = temp
            # new Givens rotation annihilating the sub-diagonal
            denom = np.hypot(hessenberg[j, j], hessenberg[j + 1, j])
            if denom == 0.0:
                givens_c[j], givens_s[j] = 1.0, 0.0
            else:
                givens_c[j] = hessenberg[j, j] / denom
                givens_s[j] = hessenberg[j + 1, j] / denom
            hessenberg[j, j] = denom
            hessenberg[j + 1, j] = 0.0
            g[j + 1] = -givens_s[j] * g[j]
            g[j] = givens_c[j] * g[j]

            completed = j + 1
            total_iterations += 1
            rel = float(abs(g[j + 1]) / rhs_norm)
            residual_history.append(rel)
            if not np.isfinite(rel):
                failure = failures.NON_FINITE_RESIDUAL
                break
            if rel < tolerance:
                # the Givens estimate says converged — end the sweep and let
                # the outer loop's *true* residual confirm it (the estimate
                # lies when the projected system degenerates, e.g. singular
                # operators, so it never declares convergence on its own)
                break
            if rel < best_rel:
                best_rel = rel
                since_best = 0
            else:
                since_best += 1
                if stagnation_window is not None and since_best >= stagnation_window:
                    failure = failures.STAGNATION
                    break

        # solve the small triangular system and update x with the valid
        # Arnoldi columns completed before convergence/failure/restart
        if completed > 0:
            try:
                y = np.linalg.solve(hessenberg[:completed, :completed], g[:completed])
            except np.linalg.LinAlgError:
                # singular projected system (happy breakdown gone wrong)
                if failure is None:
                    failure = failures.BREAKDOWN
                break
            update = basis[:completed].T @ y
            t0 = time.perf_counter()
            correction = precond.apply(update)
            precond_time += time.perf_counter() - t0
            if not np.isfinite(correction).all():
                if failure is None:
                    failure = failures.NON_FINITE_PRECONDITIONER
                break
            x = x + correction

    # final residual check
    final_rel = float(np.linalg.norm(rhs - matvec(x)) / rhs_norm)
    residual_history.append(final_rel)
    converged = converged or final_rel < tolerance
    if converged:
        failure = None
    elif failure is None:
        failure = (failures.NON_FINITE_RESIDUAL if not np.isfinite(final_rel)
                   else failures.MAX_ITERATIONS)

    return SolveResult(
        solution=x,
        converged=converged,
        iterations=total_iterations,
        residual_history=residual_history,
        elapsed_time=time.perf_counter() - start,
        preconditioner_time=precond_time,
        info={"solver": "gmres", "tolerance": tolerance, "restart": restart},
        failure_reason=failure,
    )
