"""Restarted GMRES solver (Saad & Schultz, 1986).

Included for completeness (the paper cites GMRES among the Krylov methods a
preconditioner accelerates) and used with non-symmetric preconditioners such
as Restricted Additive Schwarz in the ablation benches.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..ddm.asm import IdentityPreconditioner, Preconditioner
from .result import SolveResult

__all__ = ["gmres"]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def gmres(
    matrix: MatrixLike,
    rhs: np.ndarray,
    preconditioner: Optional[Preconditioner] = None,
    initial_guess: Optional[np.ndarray] = None,
    tolerance: float = 1e-6,
    restart: int = 50,
    max_iterations: Optional[int] = None,
) -> SolveResult:
    """Right-preconditioned restarted GMRES(m) with Givens rotations.

    >>> import numpy as np
    >>> A = np.array([[2.0, 1.0], [0.0, 1.5]])    # non-symmetric is fine
    >>> result = gmres(A, np.array([3.0, 3.0]), tolerance=1e-12)
    >>> result.converged, bool(np.allclose(A @ result.solution, [3.0, 3.0]))
    (True, True)
    """
    rhs = np.asarray(rhs, dtype=np.float64)
    n = rhs.shape[0]
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        matvec: Callable[[np.ndarray], np.ndarray] = lambda v: csr @ v
    else:
        arr = np.asarray(matrix)
        matvec = lambda v: arr @ v
    precond = preconditioner if preconditioner is not None else IdentityPreconditioner(n)
    max_iterations = max_iterations if max_iterations is not None else 10 * n
    restart = max(1, min(restart, n))

    rhs_norm = np.linalg.norm(rhs)
    if rhs_norm == 0.0:
        return SolveResult(np.zeros(n), True, 0, [0.0], info={"solver": "gmres"})

    start = time.perf_counter()
    precond_time = 0.0
    x = np.zeros(n) if initial_guess is None else np.asarray(initial_guess, dtype=np.float64).copy()
    residual_history = []
    total_iterations = 0
    converged = False

    while total_iterations < max_iterations and not converged:
        r = rhs - matvec(x)
        beta = np.linalg.norm(r)
        rel0 = float(beta / rhs_norm)
        if not residual_history:
            residual_history.append(rel0)
        if rel0 < tolerance:
            converged = True
            break

        # Arnoldi with modified Gram-Schmidt on the preconditioned operator A M^{-1}
        basis = np.zeros((restart + 1, n))
        hessenberg = np.zeros((restart + 1, restart))
        givens_c = np.zeros(restart)
        givens_s = np.zeros(restart)
        g = np.zeros(restart + 1)
        g[0] = beta
        basis[0] = r / beta
        inner_converged_at = -1

        for j in range(restart):
            if total_iterations >= max_iterations:
                break
            t0 = time.perf_counter()
            z = precond.apply(basis[j])
            precond_time += time.perf_counter() - t0
            w = matvec(z)
            for i in range(j + 1):
                hessenberg[i, j] = float(w @ basis[i])
                w -= hessenberg[i, j] * basis[i]
            hessenberg[j + 1, j] = np.linalg.norm(w)
            if hessenberg[j + 1, j] > 1e-14:
                basis[j + 1] = w / hessenberg[j + 1, j]
            # apply previous Givens rotations to the new column
            for i in range(j):
                temp = givens_c[i] * hessenberg[i, j] + givens_s[i] * hessenberg[i + 1, j]
                hessenberg[i + 1, j] = -givens_s[i] * hessenberg[i, j] + givens_c[i] * hessenberg[i + 1, j]
                hessenberg[i, j] = temp
            # new Givens rotation annihilating the sub-diagonal
            denom = np.hypot(hessenberg[j, j], hessenberg[j + 1, j])
            if denom == 0.0:
                givens_c[j], givens_s[j] = 1.0, 0.0
            else:
                givens_c[j] = hessenberg[j, j] / denom
                givens_s[j] = hessenberg[j + 1, j] / denom
            hessenberg[j, j] = denom
            hessenberg[j + 1, j] = 0.0
            g[j + 1] = -givens_s[j] * g[j]
            g[j] = givens_c[j] * g[j]

            total_iterations += 1
            rel = float(abs(g[j + 1]) / rhs_norm)
            residual_history.append(rel)
            if rel < tolerance:
                inner_converged_at = j
                converged = True
                break

        # solve the small triangular system and update x
        j_dim = (inner_converged_at + 1) if inner_converged_at >= 0 else min(restart, total_iterations if total_iterations < restart else restart)
        j_dim = max(j_dim, 1)
        y = np.linalg.solve(hessenberg[:j_dim, :j_dim], g[:j_dim]) if j_dim > 0 else np.zeros(0)
        update = basis[:j_dim].T @ y
        t0 = time.perf_counter()
        x = x + precond.apply(update)
        precond_time += time.perf_counter() - t0

    # final residual check
    final_rel = float(np.linalg.norm(rhs - matvec(x)) / rhs_norm)
    residual_history.append(final_rel)
    converged = converged or final_rel < tolerance

    return SolveResult(
        solution=x,
        converged=converged,
        iterations=total_iterations,
        residual_history=residual_history,
        elapsed_time=time.perf_counter() - start,
        preconditioner_time=precond_time,
        info={"solver": "gmres", "tolerance": tolerance, "restart": restart},
    )
