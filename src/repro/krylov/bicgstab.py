"""BiCGStab solver (van der Vorst, 1992).

The paper mentions BiCGStab (together with CG and GMRES) among the Krylov
methods whose efficiency preconditioning improves.  It is included here for
completeness, for non-symmetric variants of the preconditioned operator
(e.g. RAS), and as an extra baseline in ablation benches.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..ddm.asm import IdentityPreconditioner, Preconditioner
from . import failures
from .result import SolveResult

__all__ = ["bicgstab"]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def bicgstab(
    matrix: MatrixLike,
    rhs: np.ndarray,
    preconditioner: Optional[Preconditioner] = None,
    initial_guess: Optional[np.ndarray] = None,
    tolerance: float = 1e-6,
    max_iterations: Optional[int] = None,
    stagnation_window: Optional[int] = None,
) -> SolveResult:
    """Right-preconditioned BiCGStab with relative-residual stopping test.

    Breakdowns (``ρ = 0``, ``r̂ᵀv = 0``, ``ω = 0``), non-finite
    matvec/preconditioner output and (when ``stagnation_window`` is set)
    stagnation terminate the iteration with a machine-readable
    ``failure_reason`` (see :mod:`repro.krylov.failures`).

    >>> import numpy as np
    >>> A = np.array([[3.0, 1.0], [-1.0, 2.0]])   # non-symmetric is fine
    >>> result = bicgstab(A, np.array([1.0, 1.0]), tolerance=1e-12)
    >>> result.converged, bool(np.allclose(A @ result.solution, [1.0, 1.0]))
    (True, True)
    """
    rhs = np.asarray(rhs, dtype=np.float64)
    n = rhs.shape[0]
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        matvec: Callable[[np.ndarray], np.ndarray] = lambda v: csr @ v
    else:
        arr = np.asarray(matrix)
        matvec = lambda v: arr @ v
    precond = preconditioner if preconditioner is not None else IdentityPreconditioner(n)
    max_iterations = max_iterations if max_iterations is not None else 10 * n

    rhs_norm = np.linalg.norm(rhs)
    if rhs_norm == 0.0:
        return SolveResult(np.zeros(n), True, 0, [0.0], info={"solver": "bicgstab"})
    if not np.isfinite(rhs_norm):
        return SolveResult(
            np.zeros(n) if initial_guess is None
            else np.asarray(initial_guess, dtype=np.float64).copy(),
            False, 0, [float("inf")],
            info={"solver": "bicgstab"},
            failure_reason=failures.NON_FINITE_RHS,
        )

    start = time.perf_counter()
    precond_time = 0.0

    x = np.zeros(n) if initial_guess is None else np.asarray(initial_guess, dtype=np.float64).copy()
    r = rhs - matvec(x)
    r_hat = r.copy()
    rho_prev = alpha = omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)
    residual_history = [float(np.linalg.norm(r) / rhs_norm)]
    converged = residual_history[-1] < tolerance
    iteration = 0
    failure: Optional[str] = None
    if not converged and not np.isfinite(residual_history[-1]):
        failure = failures.NON_FINITE_RESIDUAL
    best_rel = residual_history[-1]
    since_best = 0

    while not converged and failure is None and iteration < max_iterations:
        rho = float(r_hat @ r)
        if rho == 0.0 or not np.isfinite(rho):
            failure = failures.RHO_BREAKDOWN
            break
        beta = (rho / rho_prev) * (alpha / omega) if iteration > 0 else 0.0
        p = r + beta * (p - omega * v)
        t0 = time.perf_counter()
        p_hat = precond.apply(p)
        precond_time += time.perf_counter() - t0
        if not np.isfinite(p_hat).all():
            failure = failures.NON_FINITE_PRECONDITIONER
            break
        v = matvec(p_hat)
        if not np.isfinite(v).all():
            failure = failures.NON_FINITE_OPERATOR
            break
        denom = float(r_hat @ v)
        if denom == 0.0 or not np.isfinite(denom):
            failure = failures.RHO_BREAKDOWN
            break
        alpha = rho / denom
        s = r - alpha * v
        if np.linalg.norm(s) / rhs_norm < tolerance:
            x += alpha * p_hat
            iteration += 1
            residual_history.append(float(np.linalg.norm(s) / rhs_norm))
            converged = True
            break
        t0 = time.perf_counter()
        s_hat = precond.apply(s)
        precond_time += time.perf_counter() - t0
        if not np.isfinite(s_hat).all():
            failure = failures.NON_FINITE_PRECONDITIONER
            break
        t = matvec(s_hat)
        if not np.isfinite(t).all():
            failure = failures.NON_FINITE_OPERATOR
            break
        tt = float(t @ t)
        omega = float(t @ s) / tt if tt > 0.0 else 0.0
        x += alpha * p_hat + omega * s_hat
        r = s - omega * t
        rho_prev = rho
        iteration += 1
        rel = float(np.linalg.norm(r) / rhs_norm)
        residual_history.append(rel)
        if not np.isfinite(rel):
            failure = failures.NON_FINITE_RESIDUAL
            break
        if rel < tolerance:
            converged = True
            break
        if omega == 0.0:
            # omega breakdown: the stabilisation step degenerated
            failure = failures.BREAKDOWN
            break
        if rel < best_rel:
            best_rel = rel
            since_best = 0
        else:
            since_best += 1
            if stagnation_window is not None and since_best >= stagnation_window:
                failure = failures.STAGNATION
                break

    if not converged and failure is None:
        failure = failures.MAX_ITERATIONS

    return SolveResult(
        solution=x,
        converged=converged,
        iterations=iteration,
        residual_history=residual_history,
        elapsed_time=time.perf_counter() - start,
        preconditioner_time=precond_time,
        info={"solver": "bicgstab", "tolerance": tolerance},
        failure_reason=failure,
    )
