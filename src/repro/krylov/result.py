"""Common result object for all iterative solvers.

Every Krylov routine in :mod:`repro.krylov` returns a :class:`SolveResult`
carrying the solution, the iteration count, the full relative-residual history
(the series plotted in the paper's Fig. 5b) and timing information used by the
performance tables (Table III's ``T`` and ``T_gnn``/``T_lu`` columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["SolveResult"]


@dataclass
class SolveResult:
    """Outcome of an iterative linear solve.

    Attributes
    ----------
    solution:
        The final iterate.
    converged:
        True if the stopping tolerance was reached within ``max_iterations``.
    iterations:
        Number of iterations performed (matrix-vector products of the Krylov
        loop, not counting the initial residual).
    residual_history:
        Relative residual norms ‖r_k‖/‖b‖, starting with the initial residual.
    elapsed_time:
        Total wall-clock time of the solve, in seconds.
    preconditioner_time:
        Cumulative wall-clock time spent applying the preconditioner
        (the ``T_lu`` / ``T_gnn`` columns of paper Table III).
    info:
        Free-form extra information (solver name, tolerance, ...).
    failure_reason:
        ``None`` on convergence; otherwise one of the machine-readable
        constants in :mod:`repro.krylov.failures` saying *why* the iteration
        stopped (non-finite operator/preconditioner output, rho breakdown,
        stagnation, iteration cap, ...).
    """

    solution: np.ndarray
    converged: bool
    iterations: int
    residual_history: List[float] = field(default_factory=list)
    elapsed_time: float = 0.0
    preconditioner_time: float = 0.0
    info: Dict[str, object] = field(default_factory=dict)
    failure_reason: Optional[str] = None

    @property
    def failed(self) -> bool:
        """True when the solve terminated with a stamped failure reason.

        >>> import numpy as np
        >>> SolveResult(np.zeros(2), True, 3).failed
        False
        >>> SolveResult(np.zeros(2), False, 3, failure_reason="stagnation").failed
        True
        """
        return self.failure_reason is not None

    @property
    def krylov_time(self) -> float:
        """Wall-clock time spent outside the preconditioner.

        The solvers measure ``preconditioner_time`` with ``time.perf_counter``
        around every ``apply``; the remainder of ``elapsed_time`` is the
        Krylov machinery itself (matvecs, orthogonalisation, norms).

        >>> import numpy as np
        >>> r = SolveResult(np.zeros(2), True, 3, elapsed_time=1.5, preconditioner_time=1.2)
        >>> round(r.krylov_time, 10)
        0.3
        """
        return max(self.elapsed_time - self.preconditioner_time, 0.0)

    @property
    def final_relative_residual(self) -> float:
        """The last entry of the residual history (or inf if empty).

        >>> import numpy as np
        >>> r = SolveResult(np.zeros(2), True, 3, residual_history=[1.0, 0.1, 1e-7])
        >>> r.final_relative_residual
        1e-07
        """
        return self.residual_history[-1] if self.residual_history else float("inf")

    def summary(self) -> str:
        """One-line human-readable summary.

        >>> import numpy as np
        >>> r = SolveResult(np.zeros(2), True, 3, residual_history=[1e-7], info={"solver": "pcg"})
        >>> r.summary().startswith("pcg: converged in 3 iterations")
        True
        """
        status = "converged" if self.converged else "NOT converged"
        if not self.converged and self.failure_reason is not None:
            status += f" ({self.failure_reason})"
        return (
            f"{self.info.get('solver', 'solver')}: {status} in {self.iterations} iterations, "
            f"relative residual {self.final_relative_residual:.3e}, "
            f"time {self.elapsed_time:.4f}s (preconditioner {self.preconditioner_time:.4f}s)"
        )
