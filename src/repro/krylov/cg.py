"""Conjugate Gradient and Preconditioned Conjugate Gradient solvers.

:func:`preconditioned_conjugate_gradient` is a line-for-line implementation of
Algorithm 1 in the paper (the stopping test is on the *relative* residual norm
``‖r‖/‖b‖``, which is the criterion used in all the paper's experiments).
:func:`conjugate_gradient` is the unpreconditioned "CG" baseline column of
Table I / Fig. 5.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..ddm.asm import IdentityPreconditioner, Preconditioner
from . import failures
from .result import SolveResult

__all__ = ["conjugate_gradient", "preconditioned_conjugate_gradient"]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def _as_matvec(matrix: MatrixLike) -> Callable[[np.ndarray], np.ndarray]:
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        return lambda v: csr @ v
    arr = np.asarray(matrix)
    return lambda v: arr @ v


def preconditioned_conjugate_gradient(
    matrix: MatrixLike,
    rhs: np.ndarray,
    preconditioner: Optional[Preconditioner] = None,
    initial_guess: Optional[np.ndarray] = None,
    tolerance: float = 1e-6,
    max_iterations: Optional[int] = None,
    callback: Optional[Callable[[int, float], None]] = None,
    stagnation_window: Optional[int] = None,
) -> SolveResult:
    """Preconditioned Conjugate Gradient (paper Algorithm 1).

    Parameters
    ----------
    matrix:
        SPD system matrix A.
    rhs:
        Right-hand side b.
    preconditioner:
        Object with ``apply(r) -> z``; identity (plain CG) if omitted.
    initial_guess:
        Starting iterate u_0 (zero if omitted).
    tolerance:
        Stopping threshold on the relative residual ‖r_k‖ / ‖b‖.
    max_iterations:
        Hard iteration cap (defaults to 10·N).
    callback:
        Optional ``callback(iteration, relative_residual)`` invoked per iteration.
    stagnation_window:
        If set, stop with ``failure_reason="stagnation"`` after this many
        consecutive iterations without a new best relative residual
        (disabled by default, so direct callers see the classic behaviour).

    Non-finite matvec or preconditioner output, an indefinite ``pᵀAp`` and a
    vanishing ``ρ`` all terminate the iteration immediately and stamp a
    machine-readable :attr:`SolveResult.failure_reason`
    (see :mod:`repro.krylov.failures`) instead of looping to the cap on NaNs.

    >>> import numpy as np
    >>> A = np.array([[4.0, 1.0], [1.0, 3.0]])
    >>> b = np.array([1.0, 2.0])
    >>> result = preconditioned_conjugate_gradient(A, b, tolerance=1e-12)
    >>> result.converged, bool(np.allclose(A @ result.solution, b))
    (True, True)
    """
    rhs = np.asarray(rhs, dtype=np.float64)
    n = rhs.shape[0]
    matvec = _as_matvec(matrix)
    precond = preconditioner if preconditioner is not None else IdentityPreconditioner(n)
    max_iterations = max_iterations if max_iterations is not None else 10 * n

    rhs_norm = np.linalg.norm(rhs)
    if rhs_norm == 0.0:
        return SolveResult(
            solution=np.zeros(n),
            converged=True,
            iterations=0,
            residual_history=[0.0],
            info={"solver": "pcg", "tolerance": tolerance},
        )
    if not np.isfinite(rhs_norm):
        return SolveResult(
            solution=np.zeros(n) if initial_guess is None
            else np.asarray(initial_guess, dtype=np.float64).copy(),
            converged=False,
            iterations=0,
            residual_history=[float("inf")],
            info={"solver": "pcg", "tolerance": tolerance},
            failure_reason=failures.NON_FINITE_RHS,
        )

    start = time.perf_counter()
    precond_time = 0.0

    u = np.zeros(n) if initial_guess is None else np.asarray(initial_guess, dtype=np.float64).copy()
    r = rhs - matvec(u)

    t0 = time.perf_counter()
    z = precond.apply(r)
    precond_time += time.perf_counter() - t0
    p = z.copy()

    residual_history = [float(np.linalg.norm(r) / rhs_norm)]
    rho = float(r @ z)
    converged = residual_history[-1] < tolerance
    iteration = 0
    failure: Optional[str] = None

    # pre-loop guards, mirroring the per-iteration ones below (the guard
    # ORDER here is part of the lockstep bit-identity contract — block.py
    # checks the same quantities in the same sequence)
    if not converged:
        if not np.isfinite(residual_history[-1]):
            failure = failures.NON_FINITE_RESIDUAL
        elif not np.isfinite(z).all():
            failure = failures.NON_FINITE_PRECONDITIONER
        elif rho == 0.0 or not np.isfinite(rho):
            failure = failures.RHO_BREAKDOWN

    best_rel = residual_history[-1]
    since_best = 0

    while not converged and failure is None and iteration < max_iterations:
        q = matvec(p)
        if not np.isfinite(q).all():
            failure = failures.NON_FINITE_OPERATOR
            break
        denom = float(p @ q)
        if not np.isfinite(denom):
            failure = failures.NON_FINITE_OPERATOR
            break
        if denom <= 0.0:
            # matrix not SPD (or severe round-off): stop with the current iterate
            failure = failures.INDEFINITE_OPERATOR
            break
        alpha = rho / denom
        u += alpha * p
        r -= alpha * q
        iteration += 1
        rel = float(np.linalg.norm(r) / rhs_norm)
        residual_history.append(rel)
        if callback is not None:
            callback(iteration, rel)
        if not np.isfinite(rel):
            failure = failures.NON_FINITE_RESIDUAL
            break
        if rel < tolerance:
            converged = True
            break
        if rel < best_rel:
            best_rel = rel
            since_best = 0
        else:
            since_best += 1
            if stagnation_window is not None and since_best >= stagnation_window:
                failure = failures.STAGNATION
                break
        t0 = time.perf_counter()
        z = precond.apply(r)
        precond_time += time.perf_counter() - t0
        if not np.isfinite(z).all():
            failure = failures.NON_FINITE_PRECONDITIONER
            break
        rho_next = float(r @ z)
        if rho_next == 0.0 or not np.isfinite(rho_next):
            failure = failures.RHO_BREAKDOWN
            break
        beta = rho_next / rho
        rho = rho_next
        p = z + beta * p

    if not converged and failure is None:
        failure = failures.MAX_ITERATIONS

    elapsed = time.perf_counter() - start
    return SolveResult(
        solution=u,
        converged=converged,
        iterations=iteration,
        residual_history=residual_history,
        elapsed_time=elapsed,
        preconditioner_time=precond_time,
        info={"solver": "pcg", "tolerance": tolerance, "preconditioner": type(precond).__name__},
        failure_reason=failure,
    )


def conjugate_gradient(
    matrix: MatrixLike,
    rhs: np.ndarray,
    initial_guess: Optional[np.ndarray] = None,
    tolerance: float = 1e-6,
    max_iterations: Optional[int] = None,
    stagnation_window: Optional[int] = None,
) -> SolveResult:
    """Unpreconditioned Conjugate Gradient (the "CG" baseline of the paper).

    >>> import numpy as np
    >>> result = conjugate_gradient(np.diag([1.0, 2.0, 3.0]), np.ones(3))
    >>> result.converged, result.info["solver"]
    (True, 'cg')
    """
    result = preconditioned_conjugate_gradient(
        matrix,
        rhs,
        preconditioner=None,
        initial_guess=initial_guess,
        tolerance=tolerance,
        max_iterations=max_iterations,
        stagnation_window=stagnation_window,
    )
    result.info["solver"] = "cg"
    return result
