"""Command-line entry point: ``python -m repro.serve``.

Starts the solve server (JSON + zero-copy binary frames on ``POST /solve``)::

    python -m repro.serve --port 8780
    python -m repro.serve --workers 4            # 4 sharded worker processes
    python -m repro.serve --workers 2 --threads-per-worker 2
    python -m repro.serve --in-process --workers 2   # PR-5 thread pool instead
    python -m repro.serve --checkpoint benchmarks/artifacts/<hash>/checkpoint.npz \\
        --preconditioner ddm-gnn --max-batch 8 --max-wait-ms 2

``--workers N`` forks N worker *processes* sharing one shared-memory copy of
the checkpoint weights; sessions shard across them by fingerprint.
``--in-process`` keeps everything in one process with N worker *threads*
(the PR-5 behaviour — handy under debuggers and on platforms without fork).

Then, from any HTTP client::

    curl -s localhost:8780/healthz
    curl -s -X POST localhost:8780/solve -H 'Content-Type: application/json' \\
        -d '{"problem": {"family": "poisson", "target_n": 400}}'
    curl -s localhost:8780/stats

Binary clients use :meth:`repro.serve.client.ServeClient.solve_binary`.
"""

from __future__ import annotations

import argparse
import sys

from ..solvers.config import SolverConfig
from .http import ServeHTTPServer
from .service import ServeConfig, SolveService
from .shard import ShardConfig, ShardedSolveService


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Concurrent solve service: session cache, micro-batching, latency SLOs.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8780, help="bind port (default 8780; 0 = ephemeral)")
    parser.add_argument("--checkpoint", default=None,
                        help="versioned DSS checkpoint served to model-based preconditioners")
    parser.add_argument("--preconditioner", default="ddm-lu",
                        help="default preconditioner for requests without a config (default ddm-lu)")
    parser.add_argument("--tolerance", type=float, default=1e-6,
                        help="default relative-residual tolerance (default 1e-6)")
    parser.add_argument("--subdomain-size", type=int, default=110,
                        help="default target sub-domain size (default 110)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (threads with --in-process; default 2)")
    parser.add_argument("--in-process", action="store_true",
                        help="single process, --workers threads (the PR-5 pool) "
                             "instead of sharded worker processes")
    parser.add_argument("--threads-per-worker", type=int, default=1,
                        help="serving threads inside each worker process (default 1)")
    parser.add_argument("--start-method", default=None, choices=("fork", "spawn"),
                        help="multiprocessing start method (default: fork when available)")
    parser.add_argument("--max-restarts", type=int, default=3,
                        help="restart budget per worker slot before the shard "
                             "is marked dead (default 3)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="micro-batch size bound (1 disables batching; default 8)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="micro-batch coalescing window in ms (default 2)")
    parser.add_argument("--cache-capacity", type=int, default=8,
                        help="prepared-session LRU capacity (default 8)")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="per-worker queue bound before 503 load shedding (default 64)")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="default per-request deadline in ms (default: none)")
    parser.add_argument("--fallback", action="append", default=None, metavar="KIND",
                        help="degradation-ladder rung for the default config "
                             "(repeatable, tried in order; e.g. --fallback ddm-lu)")
    parser.add_argument("--debug", action="store_true",
                        help="include tracebacks in internal-error responses "
                             "(never enable on untrusted networks)")
    args = parser.parse_args(argv)

    model = None
    if args.checkpoint:
        from ..gnn.checkpoint import load_model

        model = load_model(args.checkpoint)
        print(f"loaded model from {args.checkpoint}")

    solver_config = SolverConfig(
        preconditioner=args.preconditioner,
        tolerance=args.tolerance,
        subdomain_size=args.subdomain_size,
        checkpoint=args.checkpoint if args.preconditioner == "ddm-gnn" else None,
        fallback=args.fallback or [],
    )
    if args.in_process:
        service = SolveService(
            ServeConfig(
                workers=args.workers,
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                cache_capacity=args.cache_capacity,
                max_queue=args.max_queue,
                default_deadline_ms=args.deadline_ms,
            ),
            model=model,
            default_solver_config=solver_config,
        )
        pool = f"threads={args.workers}"
    else:
        service = ShardedSolveService(
            ServeConfig(
                workers=args.threads_per_worker,
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                cache_capacity=args.cache_capacity,
                max_queue=args.max_queue,
                default_deadline_ms=args.deadline_ms,
            ),
            model=model,
            default_solver_config=solver_config,
            shard_config=ShardConfig(
                workers=args.workers,
                threads_per_worker=args.threads_per_worker,
                start_method=args.start_method,
                max_restarts=args.max_restarts,
            ),
        )
        pool = (f"processes={args.workers}"
                f"×{args.threads_per_worker} thread(s), "
                f"pids={service.pids()}")
    server = ServeHTTPServer(service, host=args.host, port=args.port, debug=args.debug)
    host, port = server.address
    print(f"repro.serve listening on http://{host}:{port} "
          f"({pool}, max_batch={args.max_batch}, "
          f"max_wait_ms={args.max_wait_ms:g})")
    print("endpoints: POST /solve (JSON or application/x-repro-frame), "
          "GET /healthz, GET /stats — Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
