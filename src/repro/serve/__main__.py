"""Command-line entry point: ``python -m repro.serve``.

Starts the JSON-over-HTTP solve server::

    python -m repro.serve --port 8780
    python -m repro.serve --checkpoint benchmarks/artifacts/<hash>/checkpoint.npz \\
        --preconditioner ddm-gnn --max-batch 8 --max-wait-ms 2

Then, from any HTTP client::

    curl -s localhost:8780/healthz
    curl -s -X POST localhost:8780/solve -H 'Content-Type: application/json' \\
        -d '{"problem": {"family": "poisson", "target_n": 400}}'
    curl -s localhost:8780/stats
"""

from __future__ import annotations

import argparse
import sys

from ..solvers.config import SolverConfig
from .http import ServeHTTPServer
from .service import ServeConfig, SolveService


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Concurrent solve service: session cache, micro-batching, latency SLOs.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8780, help="bind port (default 8780; 0 = ephemeral)")
    parser.add_argument("--checkpoint", default=None,
                        help="versioned DSS checkpoint served to model-based preconditioners")
    parser.add_argument("--preconditioner", default="ddm-lu",
                        help="default preconditioner for requests without a config (default ddm-lu)")
    parser.add_argument("--tolerance", type=float, default=1e-6,
                        help="default relative-residual tolerance (default 1e-6)")
    parser.add_argument("--subdomain-size", type=int, default=110,
                        help="default target sub-domain size (default 110)")
    parser.add_argument("--workers", type=int, default=2, help="worker threads (default 2)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="micro-batch size bound (1 disables batching; default 8)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="micro-batch coalescing window in ms (default 2)")
    parser.add_argument("--cache-capacity", type=int, default=8,
                        help="prepared-session LRU capacity (default 8)")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="per-worker queue bound before 503 load shedding (default 64)")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="default per-request deadline in ms (default: none)")
    parser.add_argument("--fallback", action="append", default=None, metavar="KIND",
                        help="degradation-ladder rung for the default config "
                             "(repeatable, tried in order; e.g. --fallback ddm-lu)")
    parser.add_argument("--debug", action="store_true",
                        help="include tracebacks in internal-error responses "
                             "(never enable on untrusted networks)")
    args = parser.parse_args(argv)

    model = None
    if args.checkpoint:
        from ..gnn.checkpoint import load_model

        model = load_model(args.checkpoint)
        print(f"loaded model from {args.checkpoint}")

    service = SolveService(
        ServeConfig(
            workers=args.workers,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            cache_capacity=args.cache_capacity,
            max_queue=args.max_queue,
            default_deadline_ms=args.deadline_ms,
        ),
        model=model,
        default_solver_config=SolverConfig(
            preconditioner=args.preconditioner,
            tolerance=args.tolerance,
            subdomain_size=args.subdomain_size,
            checkpoint=args.checkpoint if args.preconditioner == "ddm-gnn" else None,
            fallback=args.fallback or [],
        ),
    )
    server = ServeHTTPServer(service, host=args.host, port=args.port, debug=args.debug)
    host, port = server.address
    print(f"repro.serve listening on http://{host}:{port} "
          f"(workers={args.workers}, max_batch={args.max_batch}, "
          f"max_wait_ms={args.max_wait_ms:g})")
    print("endpoints: POST /solve, GET /healthz, GET /stats — Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
