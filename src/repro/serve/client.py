"""Minimal stdlib client for the serve HTTP API.

Mirrors the three endpoints of :mod:`repro.serve.http`::

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8780")
    client.healthz()                          # liveness
    response = client.solve(problem={"family": "poisson", "target_n": 400})
    solution = response["solution"]           # list of floats
    client.stats()["latency_ms"]["total"]     # SLO percentiles

    # the zero-copy binary path: numpy in, numpy out, bitwise-exact
    response = client.solve_binary(problem={"family": "poisson"}, b=rhs)
    response["solution"]                      # np.ndarray (f64)

Retry policy: solve requests are idempotent (same problem/config/b → same
deterministic answer), so the client transparently retries *retryable*
failures — 503 overload responses and connection-level errors — with
exponential backoff and deterministic jitter, honouring the server's
``Retry-After`` hint when present.  Non-retryable errors (400 invalid
request, 404, 500, 504 deadline) surface immediately as
:class:`ServeClientError` with the server's stable error ``code``.

Uses :mod:`urllib.request` only, so scripts and load generators need no
third-party HTTP stack.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["ServeClient", "ServeClientError"]

#: HTTP statuses worth retrying — overload shedding is explicitly transient
_RETRYABLE_STATUSES = frozenset({503})


def _parse_error_payload(raw: bytes) -> Tuple[str, Optional[str], Optional[str]]:
    """Extract (message, code, trace_id) from an error body.

    Understands both the structured shape ``{"error": {"code", "message",
    "trace_id"}}`` and the legacy flat shape ``{"error": "message"}``.
    """
    try:
        payload = json.loads(raw.decode("utf-8"))
    except Exception:  # noqa: BLE001 - best-effort error detail
        return raw.decode("utf-8", errors="replace"), None, None
    detail = payload.get("error") if isinstance(payload, dict) else None
    if isinstance(detail, dict):
        trace_id = detail.get("trace_id")
        return (str(detail.get("message", detail)), detail.get("code"),
                trace_id if isinstance(trace_id, str) else None)
    if detail is not None:
        return str(detail), None, None
    return str(payload), None, None


class ServeClientError(RuntimeError):
    """Raised when the server answers with an error payload or bad status.

    ``status`` is the HTTP status, ``code`` the server's stable error code
    (``invalid_request``, ``overloaded``, ``deadline_exceeded``, ...; None
    for legacy/unstructured errors), ``retry_after_s`` the parsed
    ``Retry-After`` hint when the server sent one, and ``trace_id`` the
    server-side trace of the failed request (from the error body or the
    ``X-Trace-Id`` response header) — quote it when filing a report against
    server logs.
    """

    def __init__(self, status: int, message: str, code: Optional[str] = None,
                 retry_after_s: Optional[float] = None,
                 trace_id: Optional[str] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.code = code
        self.retry_after_s = retry_after_s
        self.trace_id = trace_id


class ServeClient:
    """Thin JSON client bound to one serve endpoint.

    ``retries`` bounds how many times a retryable failure (503, connection
    refused/reset) is retried per request; backoff sleeps
    ``backoff_s * 2**attempt`` plus deterministic jitter from ``seed``, or
    the server's ``Retry-After`` when larger.
    """

    def __init__(self, base_url: str, timeout: float = 60.0, retries: int = 2,
                 backoff_s: float = 0.05, seed: int = 0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self._jitter = random.Random(seed)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _error_from_http(error: urllib.error.HTTPError) -> ServeClientError:
        message, code, trace_id = _parse_error_payload(error.read())
        if trace_id is None:
            trace_id = error.headers.get("X-Trace-Id")
        retry_after = error.headers.get("Retry-After")
        try:
            retry_after_s = float(retry_after) if retry_after else None
        except ValueError:
            retry_after_s = None
        return ServeClientError(error.code, message or str(error.reason),
                                code=code, retry_after_s=retry_after_s,
                                trace_id=trace_id)

    def _request_once(self, path: str, payload: Optional[Dict],
                      retry_of: Optional[str] = None) -> Dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if retry_of is not None:
            # link this retry's server-side trace to the failed attempt's
            headers["X-Retry-Of"] = retry_of
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raise self._error_from_http(error) from None
        if isinstance(body, dict) and "error" in body:
            detail = body["error"]
            if isinstance(detail, dict):
                trace_id = detail.get("trace_id")
                raise ServeClientError(
                    int(detail.get("status", 200)),
                    str(detail.get("message", detail)),
                    code=detail.get("code"),
                    trace_id=trace_id if isinstance(trace_id, str) else None,
                )
            raise ServeClientError(200, str(detail))
        return body

    def _request_frame_once(self, path: str, frame_bytes: bytes,
                            retry_of: Optional[str] = None) -> bytes:
        """POST one binary frame; returns the raw response frame bytes.

        Error responses are JSON regardless of the request encoding (the
        server's contract), so failures parse into the same
        :class:`ServeClientError` as the JSON path.
        """
        from .proto import CONTENT_TYPE

        headers = {"Content-Type": CONTENT_TYPE, "Accept": CONTENT_TYPE}
        if retry_of is not None:
            headers["X-Retry-Of"] = retry_of
        request = urllib.request.Request(
            self.base_url + path,
            data=frame_bytes,
            headers=headers,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            raise self._error_from_http(error) from None

    def _with_retries(self, attempt_fn):
        """The shared retry loop: 503 + connection errors, capped backoff.

        ``attempt_fn`` receives the trace id of the previous failed attempt
        (or None) so retried requests carry ``X-Retry-Of`` and the server can
        stitch the attempts into one logical story.
        """
        attempt = 0
        retry_of: Optional[str] = None
        while True:
            try:
                return attempt_fn(retry_of)
            except ServeClientError as error:
                if error.status not in _RETRYABLE_STATUSES or attempt >= self.retries:
                    raise
                delay = error.retry_after_s
                if error.trace_id is not None:
                    retry_of = error.trace_id
            except urllib.error.URLError:
                # connection-level failure (refused, reset, DNS)
                if attempt >= self.retries:
                    raise
                delay = None
            backoff = self.backoff_s * (2.0 ** attempt)
            backoff += self._jitter.uniform(0.0, self.backoff_s)
            time.sleep(max(delay or 0.0, backoff))
            attempt += 1

    def _request(self, path: str, payload: Optional[Dict] = None) -> Dict:
        return self._with_retries(
            lambda retry_of: self._request_once(path, payload, retry_of))

    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict:
        return self._request("/healthz")

    def stats(self) -> Dict:
        return self._request("/stats")

    def metrics(self) -> str:
        """Fetch ``GET /metrics`` (Prometheus text exposition, not JSON)."""
        request = urllib.request.Request(self.base_url + "/metrics")
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")

    def solve(
        self,
        problem: Optional[Dict] = None,
        b: Optional[Sequence[float]] = None,
        x0: Optional[Sequence[float]] = None,
        config: Optional[Dict] = None,
        deadline_ms: Optional[float] = None,
    ) -> Dict:
        """POST one solve request; returns the decoded response payload."""
        payload: Dict = {}
        if problem is not None:
            payload["problem"] = problem
        if b is not None:
            payload["b"] = [float(v) for v in b]
        if x0 is not None:
            payload["x0"] = [float(v) for v in x0]
        if config is not None:
            payload["config"] = config
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        return self._request("/solve", payload)

    def solve_binary(
        self,
        problem: Optional[Dict] = None,
        b=None,
        x0=None,
        config: Optional[Dict] = None,
        deadline_ms: Optional[float] = None,
    ) -> Dict:
        """POST one solve as a binary frame; floats never transit as text.

        ``b`` may be a 1-D right-hand side or a 2-D ``(n, k)`` block whose
        columns fan out into ``k`` concurrent solves server-side (they
        coalesce in the service's micro-batching queue).  Returns the JSON
        response shape with ``solution`` (and per-column lists for blocks)
        as numpy arrays decoded zero-copy from the response frame —
        bitwise identical to the server's solve output.  Retry semantics
        match :meth:`solve`.
        """
        import numpy as np

        from .proto import decode_frame, encode_frame

        meta: Dict = {"problem": problem, "config": config,
                      "deadline_ms": float(deadline_ms) if deadline_ms is not None else None}
        arrays: Dict = {}
        if b is not None:
            b = np.asarray(b, dtype=np.float64)
            if b.ndim == 2:
                arrays["B"] = b
            else:
                arrays["b"] = b
        if x0 is not None:
            arrays["x0"] = np.asarray(x0, dtype=np.float64)
        frame_bytes = encode_frame("solve", meta, arrays)
        raw = self._with_retries(
            lambda retry_of: self._request_frame_once("/solve", frame_bytes, retry_of)
        )
        frame = decode_frame(raw)
        response: Dict = dict(frame.meta)
        response["solution"] = frame.arrays["solution"]
        response["final_relative_residual"] = frame.arrays["final_relative_residual"]
        if "residual_history" in frame.arrays:
            response["residual_history"] = frame.arrays["residual_history"]
        return response
