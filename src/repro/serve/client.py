"""Minimal stdlib client for the serve HTTP API.

Mirrors the three endpoints of :mod:`repro.serve.http`::

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8780")
    client.healthz()                          # liveness
    response = client.solve(problem={"family": "poisson", "target_n": 400})
    solution = response["solution"]           # list of floats
    client.stats()["latency_ms"]["total"]     # SLO percentiles

Uses :mod:`urllib.request` only, so scripts and load generators need no
third-party HTTP stack.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Optional, Sequence

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(RuntimeError):
    """Raised when the server answers with an error payload or bad status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Thin JSON client bound to one serve endpoint."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------ #
    def _request(self, path: str, payload: Optional[Dict] = None) -> Dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error detail
                detail = error.reason
            raise ServeClientError(error.code, str(detail)) from None
        if isinstance(body, dict) and "error" in body:
            raise ServeClientError(200, str(body["error"]))
        return body

    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict:
        return self._request("/healthz")

    def stats(self) -> Dict:
        return self._request("/stats")

    def solve(
        self,
        problem: Optional[Dict] = None,
        b: Optional[Sequence[float]] = None,
        x0: Optional[Sequence[float]] = None,
        config: Optional[Dict] = None,
    ) -> Dict:
        """POST one solve request; returns the decoded response payload."""
        payload: Dict = {}
        if problem is not None:
            payload["problem"] = problem
        if b is not None:
            payload["b"] = [float(v) for v in b]
        if x0 is not None:
            payload["x0"] = [float(v) for v in x0]
        if config is not None:
            payload["config"] = config
        return self._request("/solve", payload)
