"""Length-prefixed binary frame protocol for solve requests and responses.

JSON-over-HTTP spends most of a large solve request's cost on float
formatting and parsing: a 100k-dof right-hand side is ~2.4MB of decimal text
versus 800kB of raw float64.  This module defines the zero-copy wire format
shared by the binary HTTP path (``Content-Type: application/x-repro-frame``)
and the parent↔worker pipes of :mod:`repro.serve.shard`:

.. code-block:: text

    offset  size          content
    0       4             magic  b"RPB1"
    4       4             u32 little-endian header length H
    8       H             UTF-8 JSON header
    8+H..   pad           zero padding to the first 64-byte boundary
    ...                   raw array blocks, each 64-byte aligned

The JSON header carries ``{"v": 1, "kind": ..., "meta": {...}, "arrays":
[{"name", "dtype", "shape", "offset", "nbytes"}, ...], "total": ...}``.
Array blocks are C-contiguous raw bytes (the exact ``ndarray.tobytes()``
image), so both ends decode with :func:`numpy.frombuffer` — no copy, no
float formatting, and float64 payloads survive the round trip *bitwise*.
``total`` pins the full frame length: a truncated or oversized body is
detected before any array view is built.

Every malformed-frame condition raises
:class:`~repro.serve.errors.InvalidRequest` (bad magic, truncated prefix or
blocks, header that is not valid JSON, unknown dtype, shape/nbytes
mismatch, out-of-bounds block) — callers map it to a structured 400, never
a traceback.

>>> import numpy as np
>>> frame = decode_frame(encode_frame("demo", {"n": 3}, {"b": np.arange(3.0)}))
>>> frame.kind, frame.meta["n"], frame.arrays["b"].tolist()
('demo', 3, [0.0, 1.0, 2.0])
>>> decode_frame(b"JUNK" + bytes(12))
Traceback (most recent call last):
...
repro.serve.errors.InvalidRequest: bad frame magic b'JUNK' (expected b'RPB1')
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from .errors import InvalidRequest

__all__ = [
    "MAGIC",
    "CONTENT_TYPE",
    "PROTO_VERSION",
    "TRACE_META_KEY",
    "Frame",
    "encode_frame",
    "decode_frame",
    "extract_trace_meta",
    "make_trace_meta",
]

MAGIC = b"RPB1"
#: HTTP content type selecting the binary path (JSON stays the debug path)
CONTENT_TYPE = "application/x-repro-frame"
PROTO_VERSION = 1

_PREFIX = struct.Struct("<4sI")
_ALIGN = 64
#: hard bound on a frame body — rejects absurd ``total``/header claims before
#: any allocation is attempted (a 256M-dof f64 vector is ~2GB; nothing served
#: by this repository comes within two orders of magnitude of 1GB)
MAX_FRAME_BYTES = 1 << 30
_MAX_HEADER_BYTES = 1 << 24

#: dtypes allowed on the wire — the numeric types the solver stack produces
_WIRE_DTYPES = frozenset({"f8", "f4", "i8", "i4", "u8", "u4", "u1", "b1"})

#: meta key carrying trace context across process/HTTP hops.  Unlike every
#: other header field, the trace meta is advisory: a malformed value is
#: *dropped*, never an :class:`InvalidRequest` — observability must not be
#: able to fail a request.
TRACE_META_KEY = "trace"
_TRACE_ID_CHARS = frozenset("0123456789abcdefABCDEF-")
_MAX_TRACE_ID_LEN = 128


def _clean_trace_id(value: object) -> Optional[str]:
    if (isinstance(value, str) and 0 < len(value) <= _MAX_TRACE_ID_LEN
            and all(c in _TRACE_ID_CHARS for c in value)):
        return value
    return None


def make_trace_meta(trace_id: str, parent_span_id: Optional[str] = None) -> Dict[str, str]:
    """Build the ``meta["trace"]`` payload propagating a trace across a hop."""
    meta = {"trace_id": str(trace_id)}
    if parent_span_id is not None:
        meta["parent_span_id"] = str(parent_span_id)
    return meta


def extract_trace_meta(meta: Mapping[str, object]) -> Optional[Dict[str, Optional[str]]]:
    """Sanitise ``meta["trace"]`` from an incoming frame.

    Returns ``{"trace_id": ..., "parent_span_id": ...}`` when the field is
    well-formed (hex-ish ids of sane length), else ``None``.  Never raises:
    arbitrary JSON garbage in the trace slot must leave the request servable.

    >>> extract_trace_meta({"trace": {"trace_id": "ab12"}})
    {'trace_id': 'ab12', 'parent_span_id': None}
    >>> extract_trace_meta({"trace": {"trace_id": "nope!"}}) is None
    True
    >>> extract_trace_meta({"trace": [1, 2, 3]}) is None
    True
    >>> extract_trace_meta({}) is None
    True
    """
    try:
        payload = meta.get(TRACE_META_KEY)
    except AttributeError:
        return None
    if not isinstance(payload, dict):
        return None
    trace_id = _clean_trace_id(payload.get("trace_id"))
    if trace_id is None:
        return None
    parent = payload.get("parent_span_id")
    parent_id = _clean_trace_id(parent) if parent is not None else None
    if parent is not None and parent_id is None:
        # a valid trace id with a garbage parent still correlates the hop
        parent_id = None
    return {"trace_id": trace_id, "parent_span_id": parent_id}


def _json_default(value):
    """Make numpy scalars JSON-serialisable in frame metadata."""
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    raise TypeError(f"frame meta value of type {type(value).__name__} is not JSON-serialisable")


@dataclass
class Frame:
    """One decoded frame: a kind tag, JSON metadata and zero-copy arrays.

    ``arrays`` values are read-only :func:`numpy.frombuffer` views into the
    received bytes — copy before mutating.
    """

    kind: str
    meta: Dict[str, object] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)


def _pad_to(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def encode_frame(
    kind: str,
    meta: Optional[Mapping[str, object]] = None,
    arrays: Optional[Mapping[str, np.ndarray]] = None,
) -> bytes:
    """Serialise ``(kind, meta, arrays)`` into one length-pinned frame.

    Arrays are written as C-contiguous raw blocks in their native dtype
    (float64 stays float64 — the bitwise-parity guarantee); each block is
    64-byte aligned so the receiver's ``frombuffer`` views are aligned too.
    """
    entries = []
    blocks = []
    # first pass: compute block offsets after a header whose own length
    # depends on the offsets — resolved by fixing the header size iteratively
    normalised: Dict[str, np.ndarray] = {}
    for name, value in (arrays or {}).items():
        array = np.ascontiguousarray(value)
        if array.dtype.byteorder == ">":  # wire order is little-endian
            array = array.astype(array.dtype.newbyteorder("<"))
        if array.dtype.str[1:] not in _WIRE_DTYPES:
            raise ValueError(
                f"array {name!r} has non-wire dtype {array.dtype.str!r} "
                f"(supported: {sorted(_WIRE_DTYPES)})"
            )
        normalised[str(name)] = array

    def build_header(total: int) -> bytes:
        header = {
            "v": PROTO_VERSION,
            "kind": str(kind),
            "meta": dict(meta or {}),
            "arrays": entries,
            "total": total,
        }
        return json.dumps(header, default=_json_default).encode("utf-8")

    # fixed-point on the header length: the header is padded with trailing
    # whitespace (valid JSON) so it always ends on a 64-byte boundary; block
    # offsets then only grow in 64-byte steps as the header grows, which
    # makes the length map monotone non-decreasing — it converges
    header_bytes = b""
    for _ in range(16):
        entries.clear()
        blocks.clear()
        cursor = _pad_to(_PREFIX.size + len(header_bytes))
        for name, array in normalised.items():
            entries.append({
                "name": name,
                "dtype": array.dtype.str[1:],
                "shape": list(array.shape),
                "offset": cursor,
                "nbytes": array.nbytes,
            })
            blocks.append((cursor, array))
            cursor = _pad_to(cursor + array.nbytes)
        total = blocks[-1][0] + blocks[-1][1].nbytes if blocks else _PREFIX.size + len(header_bytes)
        candidate = build_header(total)
        candidate += b" " * (_pad_to(_PREFIX.size + len(candidate)) - _PREFIX.size - len(candidate))
        converged = len(candidate) == len(header_bytes)
        header_bytes = candidate
        if converged:
            break
    else:  # pragma: no cover - monotone map over a bounded range
        raise RuntimeError("frame header length did not converge")

    total = blocks[-1][0] + blocks[-1][1].nbytes if blocks else _PREFIX.size + len(header_bytes)
    out = bytearray(total)
    _PREFIX.pack_into(out, 0, MAGIC, len(header_bytes))
    out[_PREFIX.size:_PREFIX.size + len(header_bytes)] = header_bytes
    for offset, array in blocks:
        out[offset:offset + array.nbytes] = array.tobytes()
    return bytes(out)


def decode_frame(data: bytes) -> Frame:
    """Parse one frame; every malformed condition is a typed InvalidRequest.

    The returned :class:`Frame`'s arrays are zero-copy read-only views into
    ``data`` (``np.frombuffer``) — the caller keeps ``data`` alive implicitly
    through the views' ``base``.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise InvalidRequest(
            f"frame body must be bytes, got {type(data).__name__}"
        )
    data = bytes(data)
    if len(data) > MAX_FRAME_BYTES:
        raise InvalidRequest(
            f"oversized frame: {len(data)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    if len(data) < _PREFIX.size:
        raise InvalidRequest(
            f"truncated frame: {len(data)} bytes is shorter than the "
            f"{_PREFIX.size}-byte prefix"
        )
    magic, header_len = _PREFIX.unpack_from(data, 0)
    if magic != MAGIC:
        raise InvalidRequest(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if header_len > _MAX_HEADER_BYTES:
        raise InvalidRequest(f"frame header claims {header_len} bytes (too large)")
    if _PREFIX.size + header_len > len(data):
        raise InvalidRequest(
            f"truncated frame: header claims {header_len} bytes but only "
            f"{len(data) - _PREFIX.size} follow the prefix"
        )
    try:
        header = json.loads(data[_PREFIX.size:_PREFIX.size + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise InvalidRequest(f"frame header is not valid JSON: {error}") from error
    if not isinstance(header, dict):
        raise InvalidRequest("frame header must be a JSON object")
    if header.get("v") != PROTO_VERSION:
        raise InvalidRequest(
            f"unsupported frame version {header.get('v')!r} "
            f"(this server speaks v{PROTO_VERSION})"
        )
    kind = header.get("kind")
    if not isinstance(kind, str) or not kind:
        raise InvalidRequest(f"frame kind must be a non-empty string, got {kind!r}")
    meta = header.get("meta", {})
    if not isinstance(meta, dict):
        raise InvalidRequest("frame meta must be a JSON object")
    total = header.get("total")
    if not isinstance(total, int) or total < 0:
        raise InvalidRequest(f"frame total must be a non-negative int, got {total!r}")
    if total > len(data):
        raise InvalidRequest(
            f"truncated frame: header pins total={total} bytes but the body "
            f"has only {len(data)}"
        )
    if total < len(data):
        raise InvalidRequest(
            f"oversized frame: header pins total={total} bytes but the body "
            f"has {len(data)} (trailing garbage)"
        )
    entries = header.get("arrays", [])
    if not isinstance(entries, list):
        raise InvalidRequest("frame arrays table must be a list")

    arrays: Dict[str, np.ndarray] = {}
    for entry in entries:
        if not isinstance(entry, dict):
            raise InvalidRequest(f"array table entry must be an object, got {entry!r}")
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            raise InvalidRequest(f"array name must be a non-empty string, got {name!r}")
        if name in arrays:
            raise InvalidRequest(f"duplicate array name {name!r} in frame")
        dtype_tag = entry.get("dtype")
        if dtype_tag not in _WIRE_DTYPES:
            raise InvalidRequest(
                f"array {name!r} has unknown wire dtype {dtype_tag!r} "
                f"(supported: {sorted(_WIRE_DTYPES)})"
            )
        dtype = np.dtype(dtype_tag).newbyteorder("<")
        shape = entry.get("shape")
        if (not isinstance(shape, list)
                or any(not isinstance(dim, int) or dim < 0 for dim in shape)):
            raise InvalidRequest(
                f"array {name!r} shape must be a list of non-negative ints, got {shape!r}"
            )
        offset = entry.get("offset")
        nbytes = entry.get("nbytes")
        if not isinstance(offset, int) or not isinstance(nbytes, int) or offset < 0 or nbytes < 0:
            raise InvalidRequest(
                f"array {name!r} offset/nbytes must be non-negative ints"
            )
        count = 1
        for dim in shape:
            count *= dim
        if count * dtype.itemsize != nbytes:
            raise InvalidRequest(
                f"array {name!r} shape {shape} × dtype {dtype_tag} needs "
                f"{count * dtype.itemsize} bytes, header claims {nbytes}"
            )
        if offset + nbytes > len(data):
            raise InvalidRequest(
                f"truncated frame: array {name!r} block [{offset}, {offset + nbytes}) "
                f"exceeds the {len(data)}-byte body"
            )
        view = np.frombuffer(data, dtype=dtype, count=count, offset=offset)
        arrays[name] = view.reshape(shape)

    return Frame(kind=kind, meta=meta, arrays=arrays)
