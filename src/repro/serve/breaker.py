"""Per-session-key circuit breaker for the solve service.

A breaker guards the *primary* solver configuration of one session key.  When
``failure_threshold`` consecutive primary failures accumulate, the breaker
**opens**: the service stops preparing/solving with the failing primary and
routes requests straight onto the first fallback rung (no per-request primary
attempt, no repeated ladder latency).  After ``reset_after_s`` the breaker
goes **half-open** and admits exactly one probe request back onto the
primary; a successful probe closes the breaker, a failed one re-opens it.

State machine::

    closed --(N consecutive failures)--> open
    open --(reset_after_s elapsed)--> half-open (one probe admitted)
    half-open --(probe succeeds)--> closed
    half-open --(probe fails)--> open

The clock is injectable so tests drive the open→half-open transition
deterministically instead of sleeping.

>>> t = [0.0]
>>> b = CircuitBreaker(failure_threshold=2, reset_after_s=10.0, clock=lambda: t[0])
>>> b.allow_primary(), b.state
(True, 'closed')
>>> b.record_failure(); b.record_failure(); b.state
'open'
>>> b.allow_primary()
False
>>> t[0] = 11.0
>>> b.allow_primary(), b.state    # the single half-open probe
(True, 'half_open')
>>> b.allow_primary()             # a second concurrent probe is rejected
False
>>> b.record_success(); b.state
'closed'
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after_s < 0:
            raise ValueError("reset_after_s must be >= 0")
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self._total_failures = 0
        self._total_opens = 0

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open`` or ``half_open``."""
        with self._lock:
            return self._state

    def allow_primary(self) -> bool:
        """May this request attempt the primary configuration?

        Closed: always.  Open: only once ``reset_after_s`` has elapsed, which
        transitions to half-open and claims the probe slot.  Half-open: only
        if no probe is already in flight.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if (self._opened_at is not None
                        and self._clock() - self._opened_at >= self.reset_after_s):
                    self._state = HALF_OPEN
                    self._probe_in_flight = True
                    return True
                return False
            # half-open: a single probe at a time
            if not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        """A primary attempt succeeded: reset the failure streak, close."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != CLOSED:
                self._state = CLOSED
                self._opened_at = None

    def record_failure(self) -> None:
        """A primary attempt failed: extend the streak, maybe open."""
        with self._lock:
            self._consecutive_failures += 1
            self._total_failures += 1
            was_probe = self._probe_in_flight
            self._probe_in_flight = False
            if (self._state == HALF_OPEN and was_probe) or (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._total_opens += 1

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """One consistent view for ``/healthz`` and ``stats()``."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "total_failures": self._total_failures,
                "total_opens": self._total_opens,
                "opened_for_s": (
                    self._clock() - self._opened_at
                    if self._opened_at is not None and self._state == OPEN
                    else None
                ),
            }
