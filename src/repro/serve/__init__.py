"""``repro.serve`` — a concurrent solve service over prepared sessions.

The serving layer above :mod:`repro.solvers`: accept a stream of solve
requests, reuse prepared :class:`~repro.solvers.session.SolverSession`
objects across them (LRU keyed by problem/config/model content), coalesce
concurrent single-RHS requests into lockstep multi-RHS solves (bit-identical
per RHS), and measure the tail latency the ROADMAP's serving story is about.

Components:

* :class:`~repro.serve.service.SolveService` /
  :class:`~repro.serve.service.ServeConfig` — the service itself: session
  cache, micro-batching queue, pinned worker pool, metrics.
* :class:`~repro.serve.shard.ShardedSolveService` /
  :class:`~repro.serve.shard.ShardConfig` — the same surface over a
  pre-fork *process* pool: sessions shard by fingerprint via consistent
  hashing, checkpoint weights and installed operators live once in shared
  memory, a supervisor restarts dead workers
  (:class:`~repro.serve.errors.WorkerCrashed` types their in-flight
  failures).
* :mod:`repro.serve.proto` — the length-prefixed binary frame format (JSON
  header + raw aligned array blocks) used by the binary ``/solve`` path and
  the parent↔worker pipes; zero-copy on decode, bitwise-exact.
* :class:`~repro.serve.cache.SessionCache` — fingerprint-keyed LRU of
  prepared sessions.
* :class:`~repro.serve.metrics.ServeMetrics` /
  :class:`~repro.serve.metrics.LatencyHistogram` — p50/p95/p99 latency,
  throughput, cache hit-rate; counters live in a
  :class:`repro.obs.MetricsRegistry` rendered by ``GET /metrics``.
* :class:`~repro.serve.http.ServeHTTPServer` — stdlib HTTP front end
  (``python -m repro.serve``), JSON debug path + binary frame path;
  :class:`~repro.serve.client.ServeClient` is the matching client
  (``solve`` / ``solve_binary``).
* :mod:`repro.serve.problems` — deterministic problem-spec resolution for
  HTTP requests.
* :mod:`repro.serve.errors` — typed failures with stable codes
  (:class:`~repro.serve.errors.InvalidRequest`,
  :class:`~repro.serve.errors.ServiceOverloaded`,
  :class:`~repro.serve.errors.DeadlineExceeded`,
  :class:`~repro.serve.errors.WorkerCrashed`);
  :class:`~repro.serve.breaker.CircuitBreaker` guards each primary session
  key and reroutes onto fallback rungs while the primary is down.

Quickstart::

    from repro.serve import ServeConfig, SolveService

    with SolveService(ServeConfig(max_batch=8)) as service:
        result = service.solve(problem, b)
        print(service.stats()["latency_ms"]["total"]["p99_ms"])
"""

from .breaker import CircuitBreaker
from .cache import SessionCache
from .client import ServeClient, ServeClientError
from .errors import (
    DeadlineExceeded,
    InvalidRequest,
    ServeError,
    ServiceOverloaded,
    WorkerCrashed,
    error_from_code,
)
from .http import ServeHTTPServer
from .metrics import LatencyHistogram, ServeMetrics
from .problems import ProblemCache, build_problem_from_spec
from .proto import CONTENT_TYPE, Frame, decode_frame, encode_frame
from .service import ServeConfig, SolveService
from .shard import ShardConfig, ShardedSolveService

__all__ = [
    "SolveService",
    "ServeConfig",
    "ShardedSolveService",
    "ShardConfig",
    "SessionCache",
    "ProblemCache",
    "build_problem_from_spec",
    "ServeMetrics",
    "LatencyHistogram",
    "ServeHTTPServer",
    "ServeClient",
    "ServeClientError",
    "ServeError",
    "InvalidRequest",
    "ServiceOverloaded",
    "DeadlineExceeded",
    "WorkerCrashed",
    "error_from_code",
    "CircuitBreaker",
    "Frame",
    "encode_frame",
    "decode_frame",
    "CONTENT_TYPE",
]
