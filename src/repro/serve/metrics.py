"""Latency and throughput accounting for the solve service.

The serve layer's contract with its operators is an SLO: *p50/p95/p99 latency
under a given load*.  :class:`LatencyHistogram` keeps a bounded ring of raw
samples (milliseconds) and computes nearest-rank percentiles on demand —
exact over the window, no bucketing error, O(window) memory.
:class:`ServeMetrics` aggregates the three per-request phases the service
distinguishes (queue wait, solve, total) plus counters for requests, batches,
errors and per-batch occupancy.

Since the ``repro.obs`` refactor, every counter lives in a
:class:`repro.obs.MetricsRegistry` (one private registry per ``ServeMetrics``
so concurrent services in one process do not mix counts), and each observed
latency is *also* fed into a fixed-log-bucket registry histogram.  The
registry side is what ``GET /metrics`` renders (and what shard workers ship
back for merging); the exact-window :class:`LatencyHistogram` side is what
``stats()`` reports — the public ``snapshot()`` schema is unchanged.

Empty-window normalisation rule (applied in exactly one place,
:func:`window_stat`): **counters are always numbers (0 when nothing
happened); statistics over an empty observation window are always**
``None``.  So ``requests == 0`` coexists with ``p50_ms is None`` — a
deliberate asymmetry between "a count of zero events" and "a percentile of
zero samples", which does not exist.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional

from ..obs.metrics import MetricsRegistry

__all__ = ["LatencyHistogram", "ServeMetrics", "window_stat"]


def window_stat(value, count: int):
    """Normalise a window statistic: ``None`` when the window is empty.

    The single choke point for the counters-vs-window-statistics reporting
    rule (see module docstring).

    >>> window_stat(12.5, 3)
    12.5
    >>> window_stat(0.0, 0) is None
    True
    >>> window_stat(7, 0) is None
    True
    """
    return value if count else None


class LatencyHistogram:
    """Bounded reservoir of latency samples with exact window percentiles."""

    def __init__(self, window: int = 8192) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._samples: List[float] = []
        self._next = 0  # ring-buffer write position once the window is full
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value_ms: float) -> None:
        value_ms = float(value_ms)
        with self._lock:
            if len(self._samples) < self.window:
                self._samples.append(value_ms)
            else:
                self._samples[self._next] = value_ms
                self._next = (self._next + 1) % self.window
            self._count += 1
            self._total += value_ms
            if value_ms > self._max:
                self._max = value_ms

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile over the retained window (None when empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def snapshot(self) -> Dict[str, Optional[float]]:
        """count/mean/max plus the SLO percentiles, one consistent view.

        ``count`` is a counter (0 when empty); all statistics follow the
        :func:`window_stat` rule and are ``None`` over an empty window.
        """
        with self._lock:
            samples = list(self._samples)
            count, total, peak = self._count, self._total, self._max
        ordered = sorted(samples)

        def rank(q: float) -> Optional[float]:
            if not ordered:
                return None
            position = max(1, math.ceil(q / 100.0 * len(ordered)))
            return ordered[min(position, len(ordered)) - 1]

        return {
            "count": count,
            "mean_ms": window_stat(total / count if count else None, count),
            "max_ms": window_stat(peak, count),
            "p50_ms": rank(50.0),
            "p95_ms": rank(95.0),
            "p99_ms": rank(99.0),
        }


class ServeMetrics:
    """All service-level counters and histograms in one place.

    Phases per request (all milliseconds):

    ``queue``  — enqueue until the owning worker dequeued the request;
    ``solve``  — the worker's batch execution wall time (shared by every
    request in the batch: that *is* each request's serving time);
    ``total``  — queue + solve, i.e. what the caller experienced.

    Schema of :meth:`snapshot` (the ``/stats`` payload's ``metrics`` half) —
    counters are plain numbers, window statistics are ``None`` when no
    sample landed yet:

    >>> m = ServeMetrics()
    >>> s = m.snapshot()
    >>> (s["requests"], s["errors"], s["shed"], s["proto"]["json"])
    (0, 0, 0, 0)
    >>> print(s["mean_batch_size"], s["max_batch_size"],
    ...       s["latency_ms"]["total"]["p50_ms"])
    None None None
    >>> m.observe_request(queue_ms=1.0, solve_ms=3.0)
    >>> s = m.snapshot()
    >>> (s["requests"], s["latency_ms"]["total"]["p50_ms"])
    (1, 4.0)
    """

    def __init__(self, window: int = 8192, registry: Optional[MetricsRegistry] = None) -> None:
        self.queue = LatencyHistogram(window)
        self.solve = LatencyHistogram(window)
        self.total = LatencyHistogram(window)
        # Private registry by default: two services in one process (tests,
        # shard worker + parent) must not sum each other's counters.
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._requests = r.counter("repro_serve_requests_total", "Requests answered successfully.")
        self._errors = r.counter("repro_serve_errors_total", "Requests that raised.")
        self._batches = r.counter("repro_serve_batches_total", "Micro-batches executed.")
        self._batched_requests = r.counter(
            "repro_serve_batched_requests_total", "Requests carried inside micro-batches.")
        self._degraded = r.counter(
            "repro_serve_degraded_total", "Requests answered by a fallback ladder rung.")
        self._shed = r.counter(
            "repro_serve_shed_total", "Requests rejected because a worker queue was full.")
        self._deadline_timeouts = r.counter(
            "repro_serve_deadline_timeouts_total", "Requests whose deadline elapsed first.")
        self._proto = r.counter(
            "repro_serve_requests_by_proto_total", "Requests by wire encoding.")
        self._worker_restarts = r.counter(
            "repro_serve_worker_restarts_total", "Dead worker processes respawned.")
        self._worker_crashes = r.counter(
            "repro_serve_worker_crashes_total", "Worker processes that died unexpectedly.")
        self._max_batch = r.gauge("repro_serve_max_batch_size", "Largest micro-batch seen.")
        self._latency = r.histogram(
            "repro_serve_latency_ms", "Per-request latency by phase (ms).")
        self._started = time.perf_counter()
        self._started_wall = time.time()

    # ------------------------------------------------------------------ #
    def observe_request(self, queue_ms: float, solve_ms: float) -> None:
        self.queue.observe(queue_ms)
        self.solve.observe(solve_ms)
        self.total.observe(queue_ms + solve_ms)
        self._latency.observe(queue_ms, phase="queue")
        self._latency.observe(solve_ms, phase="solve")
        self._latency.observe(queue_ms + solve_ms, phase="total")
        self._requests.inc()

    def observe_batch(self, size: int) -> None:
        self._batches.inc()
        self._batched_requests.inc(int(size))
        self._max_batch.set_max(int(size))

    def observe_error(self) -> None:
        self._errors.inc()

    def observe_degraded(self) -> None:
        """A request was answered via a fallback rung (degradation ladder)."""
        self._degraded.inc()

    def observe_shed(self) -> None:
        """A request was rejected because the target worker queue was full."""
        self._shed.inc()

    def observe_deadline_timeout(self) -> None:
        """A request's deadline elapsed before its result was ready."""
        self._deadline_timeouts.inc()

    def observe_proto(self, proto: str) -> None:
        """Count one request by wire encoding (``"json"`` or ``"binary"``)."""
        self._proto.inc(proto=proto)

    def observe_worker_crash(self) -> None:
        """A worker process died with requests potentially in flight."""
        self._worker_crashes.inc()

    def observe_worker_restart(self) -> None:
        """The supervisor respawned a dead worker process."""
        self._worker_restarts.inc()

    # ------------------------------------------------------------------ #
    @property
    def requests(self) -> int:
        return int(self._requests.total())

    def snapshot(self) -> Dict[str, object]:
        requests = int(self._requests.total())
        batches = int(self._batches.total())
        batched = int(self._batched_requests.total())
        max_batch = int(self._max_batch.value())
        proto = {"json": int(self._proto.value(proto="json")),
                 "binary": int(self._proto.value(proto="binary"))}
        elapsed = max(time.perf_counter() - self._started, 1e-9)
        return {
            "uptime_s": elapsed,
            "started_unix": self._started_wall,
            "requests": requests,
            "errors": int(self._errors.total()),
            "degraded": int(self._degraded.total()),
            "shed": int(self._shed.total()),
            "deadline_timeouts": int(self._deadline_timeouts.total()),
            "proto": proto,
            "worker_restarts": int(self._worker_restarts.total()),
            "worker_crashes": int(self._worker_crashes.total()),
            "throughput_rps": requests / elapsed,
            "batches": batches,
            "mean_batch_size": window_stat(batched / batches if batches else None, batches),
            "max_batch_size": window_stat(max_batch, batches),
            "latency_ms": {
                "queue": self.queue.snapshot(),
                "solve": self.solve.snapshot(),
                "total": self.total.snapshot(),
            },
        }
