"""Latency and throughput accounting for the solve service.

The serve layer's contract with its operators is an SLO: *p50/p95/p99 latency
under a given load*.  :class:`LatencyHistogram` keeps a bounded ring of raw
samples (milliseconds) and computes nearest-rank percentiles on demand —
exact over the window, no bucketing error, O(window) memory.
:class:`ServeMetrics` aggregates the three per-request phases the service
distinguishes (queue wait, solve, total) plus counters for requests, batches,
errors and per-batch occupancy.

Everything is guarded by one lock and designed for the service's write
pattern: workers record a handful of floats per request; readers
(:meth:`ServeMetrics.snapshot`, the ``/stats`` endpoint) pay the sort.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional

__all__ = ["LatencyHistogram", "ServeMetrics"]


class LatencyHistogram:
    """Bounded reservoir of latency samples with exact window percentiles."""

    def __init__(self, window: int = 8192) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._samples: List[float] = []
        self._next = 0  # ring-buffer write position once the window is full
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value_ms: float) -> None:
        value_ms = float(value_ms)
        with self._lock:
            if len(self._samples) < self.window:
                self._samples.append(value_ms)
            else:
                self._samples[self._next] = value_ms
                self._next = (self._next + 1) % self.window
            self._count += 1
            self._total += value_ms
            if value_ms > self._max:
                self._max = value_ms

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile over the retained window (None when empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def snapshot(self) -> Dict[str, Optional[float]]:
        """count/mean/max plus the SLO percentiles, one consistent view."""
        with self._lock:
            samples = list(self._samples)
            count, total, peak = self._count, self._total, self._max
        if not samples:
            return {"count": 0, "mean_ms": None, "max_ms": None,
                    "p50_ms": None, "p95_ms": None, "p99_ms": None}
        ordered = sorted(samples)

        def rank(q: float) -> float:
            position = max(1, math.ceil(q / 100.0 * len(ordered)))
            return ordered[min(position, len(ordered)) - 1]

        return {
            "count": count,
            "mean_ms": total / count,
            "max_ms": peak,
            "p50_ms": rank(50.0),
            "p95_ms": rank(95.0),
            "p99_ms": rank(99.0),
        }


class ServeMetrics:
    """All service-level counters and histograms in one place.

    Phases per request (all milliseconds):

    ``queue``  — enqueue until the owning worker dequeued the request;
    ``solve``  — the worker's batch execution wall time (shared by every
    request in the batch: that *is* each request's serving time);
    ``total``  — queue + solve, i.e. what the caller experienced.
    """

    def __init__(self, window: int = 8192) -> None:
        self.queue = LatencyHistogram(window)
        self.solve = LatencyHistogram(window)
        self.total = LatencyHistogram(window)
        self._lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._batches = 0
        self._batched_requests = 0
        self._max_batch_seen = 0
        self._degraded = 0
        self._shed = 0
        self._deadline_timeouts = 0
        self._proto: Dict[str, int] = {"json": 0, "binary": 0}
        self._worker_restarts = 0
        self._worker_crashes = 0
        self._started = time.perf_counter()
        self._started_wall = time.time()

    # ------------------------------------------------------------------ #
    def observe_request(self, queue_ms: float, solve_ms: float) -> None:
        self.queue.observe(queue_ms)
        self.solve.observe(solve_ms)
        self.total.observe(queue_ms + solve_ms)
        with self._lock:
            self._requests += 1

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self._batches += 1
            self._batched_requests += int(size)
            if size > self._max_batch_seen:
                self._max_batch_seen = int(size)

    def observe_error(self) -> None:
        with self._lock:
            self._errors += 1

    def observe_degraded(self) -> None:
        """A request was answered via a fallback rung (degradation ladder)."""
        with self._lock:
            self._degraded += 1

    def observe_shed(self) -> None:
        """A request was rejected because the target worker queue was full."""
        with self._lock:
            self._shed += 1

    def observe_deadline_timeout(self) -> None:
        """A request's deadline elapsed before its result was ready."""
        with self._lock:
            self._deadline_timeouts += 1

    def observe_proto(self, proto: str) -> None:
        """Count one request by wire encoding (``"json"`` or ``"binary"``)."""
        with self._lock:
            self._proto[proto] = self._proto.get(proto, 0) + 1

    def observe_worker_crash(self) -> None:
        """A worker process died with requests potentially in flight."""
        with self._lock:
            self._worker_crashes += 1

    def observe_worker_restart(self) -> None:
        """The supervisor respawned a dead worker process."""
        with self._lock:
            self._worker_restarts += 1

    # ------------------------------------------------------------------ #
    @property
    def requests(self) -> int:
        with self._lock:
            return self._requests

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            requests = self._requests
            errors = self._errors
            batches = self._batches
            batched = self._batched_requests
            max_batch = self._max_batch_seen
            degraded = self._degraded
            shed = self._shed
            deadline_timeouts = self._deadline_timeouts
            proto = dict(self._proto)
            worker_restarts = self._worker_restarts
            worker_crashes = self._worker_crashes
        elapsed = max(time.perf_counter() - self._started, 1e-9)
        return {
            "uptime_s": elapsed,
            "started_unix": self._started_wall,
            "requests": requests,
            "errors": errors,
            "degraded": degraded,
            "shed": shed,
            "deadline_timeouts": deadline_timeouts,
            "proto": proto,
            "worker_restarts": worker_restarts,
            "worker_crashes": worker_crashes,
            "throughput_rps": requests / elapsed,
            "batches": batches,
            "mean_batch_size": (batched / batches) if batches else None,
            "max_batch_size": max_batch or None,
            "latency_ms": {
                "queue": self.queue.snapshot(),
                "solve": self.solve.snapshot(),
                "total": self.total.snapshot(),
            },
        }
