"""Typed serve-layer errors with stable codes and HTTP status mappings.

Every failure the service surfaces to a caller is one of these exception
types.  Each carries a machine-readable ``code`` (stable across releases —
clients and dashboards match on it) and the HTTP status the JSON front end
maps it to, so :mod:`repro.serve.http` never has to guess a status from an
exception message.

>>> InvalidRequest("bad shape").code, InvalidRequest("bad shape").http_status
('invalid_request', 400)
>>> issubclass(InvalidRequest, ValueError)   # legacy callers catch ValueError
True
>>> ServiceOverloaded("queue full", retry_after_s=0.25).retry_after_s
0.25
>>> issubclass(DeadlineExceeded, TimeoutError)
True

Errors also cross the process boundary of the sharded service: a worker
serialises ``(code, message, status, retry_after_s)`` into an error frame and
the parent rehydrates the matching type with :func:`error_from_code`, so a
caller sees the same exception class whether the solve ran in-process or in
a worker process.

>>> type(error_from_code("deadline_exceeded", "too slow")).__name__
'DeadlineExceeded'
>>> error_from_code("unknown-code", "boom").code
'internal'
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ServeError",
    "InvalidRequest",
    "ServiceOverloaded",
    "DeadlineExceeded",
    "WorkerCrashed",
    "error_from_code",
]


class ServeError(Exception):
    """Base class of all typed serve-layer failures."""

    #: stable machine-readable error code (the HTTP layer returns it verbatim)
    code: str = "internal"
    #: HTTP status the JSON front end maps this error to
    http_status: int = 500

    def __init__(self, message: str, retry_after_s: Optional[float] = None,
                 trace_id: Optional[str] = None) -> None:
        super().__init__(message)
        #: optional client back-off hint (serialised as a ``Retry-After`` header)
        self.retry_after_s = retry_after_s
        #: id of the trace this failure belongs to, when known — the HTTP
        #: layer stamps it so a 503/504 correlates with server-side spans
        self.trace_id = trace_id


class InvalidRequest(ServeError, ValueError):
    """Malformed request: bad shape/dtype/finiteness, unknown fields (HTTP 400).

    Subclasses :class:`ValueError` so pre-existing callers that caught
    ``ValueError`` from ``submit`` keep working unchanged.
    """

    code = "invalid_request"
    http_status = 400


class ServiceOverloaded(ServeError, RuntimeError):
    """Load shed: the target worker queue is at capacity (HTTP 503).

    Carries ``retry_after_s`` so clients can back off for the suggested
    interval instead of hammering a saturated service.
    """

    code = "overloaded"
    http_status = 503


class DeadlineExceeded(ServeError, TimeoutError):
    """The request's ``deadline_ms`` elapsed before a result was ready (HTTP 504).

    Raised *through the future* by the deadline reaper: a timed-out request
    fails fast even when its worker is stalled mid-solve.
    """

    code = "deadline_exceeded"
    http_status = 504


class WorkerCrashed(ServeError, RuntimeError):
    """A worker process died with the request in flight (HTTP 503).

    Raised through the future by the sharded-service supervisor when a
    worker's pipe breaks or its process exits: in-flight work on a dead
    shard fails fast and typed while the supervisor restarts the worker.
    The request is safe to retry (solves are idempotent), so the HTTP layer
    maps it to a retryable 503.
    """

    code = "worker_crashed"
    http_status = 503


#: serialisable error codes → exception types (the cross-process registry)
_ERRORS_BY_CODE = {
    cls.code: cls
    for cls in (InvalidRequest, ServiceOverloaded, DeadlineExceeded, WorkerCrashed)
}


def error_from_code(code: str, message: str,
                    retry_after_s: Optional[float] = None,
                    trace_id: Optional[str] = None) -> ServeError:
    """Rehydrate the typed error a serialised ``code`` names.

    Unknown codes (a newer worker talking to an older parent) degrade to the
    base :class:`ServeError` — still typed, still mapped to HTTP 500 —
    rather than raising a second error during error handling.
    """
    cls = _ERRORS_BY_CODE.get(code, ServeError)
    error = cls(message, retry_after_s=retry_after_s, trace_id=trace_id)
    if cls is ServeError and code:
        error.code = "internal"
    return error
