"""LRU cache of prepared solver sessions.

Session setup is the expensive part of a solve (partitioning, local
factorisations, coarse space, compiled DSS inference plans) and the whole
point of the setup/solve split is to pay it once per *operator*, not once per
request.  :class:`SessionCache` keys prepared
:class:`~repro.solvers.session.SolverSession` objects by their content
fingerprint (:func:`repro.solvers.fingerprint.session_key` — problem bytes ×
config × model/checkpoint content) and evicts least-recently-used entries
beyond ``capacity``.

Concurrency: a miss inserts a *pending* entry and builds outside the cache
lock, so a slow setup never blocks hits on other keys; racing requests for
the same key wait on the pending entry's event instead of building twice.
Eviction only removes ready entries — in-flight requests hold their own
session reference, so an evicted session finishes its work and is then
garbage collected.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional

from ..solvers.session import SolverSession

__all__ = ["SessionCache"]


class _Entry:
    """One cache slot: a session being built or ready (or failed)."""

    __slots__ = ("session", "error", "ready")

    def __init__(self) -> None:
        self.session: Optional[SolverSession] = None
        self.error: Optional[BaseException] = None
        self.ready = threading.Event()


class SessionCache:
    """Thread-safe LRU cache of prepared sessions keyed by fingerprint."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    def get_or_create(self, key: str, builder: Callable[[], SolverSession]) -> SolverSession:
        """Return the cached session for ``key``, building it on first use.

        ``builder`` runs outside the cache lock; concurrent callers with the
        same key block until the first builder finishes (and share its
        result or its exception).  A failed build leaves no cache entry
        behind, so the next request retries.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                creator = False
            else:
                entry = _Entry()
                self._entries[key] = entry
                self._misses += 1
                creator = True
                self._evict_locked(exclude=key)

        if creator:
            try:
                entry.session = builder()
            except BaseException as error:  # noqa: BLE001 - propagated to all waiters
                entry.error = error
                with self._lock:
                    # drop the poisoned entry so later requests can retry
                    if self._entries.get(key) is entry:
                        del self._entries[key]
                raise
            finally:
                entry.ready.set()
            return entry.session

        entry.ready.wait()
        if entry.error is not None:
            raise entry.error
        assert entry.session is not None
        return entry.session

    def _evict_locked(self, exclude: str) -> None:
        """Evict ready LRU entries down to capacity (caller holds the lock)."""
        while len(self._entries) > self.capacity:
            victim = None
            for candidate_key, candidate in self._entries.items():
                if candidate_key != exclude and candidate.ready.is_set():
                    victim = candidate_key
                    break
            if victim is None:
                # everything else is still building; allow temporary overflow
                break
            del self._entries[victim]
            self._evictions += 1

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self):
        with self._lock:
            return list(self._entries.keys())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def prune(self, predicate: Callable[[SolverSession], bool]) -> int:
        """Drop every *ready* entry whose session satisfies ``predicate``.

        The shared-memory lifecycle hook: before a sharded parent unlinks an
        installed problem's segment, workers prune the sessions built over it
        so no solver keeps dereferencing a withdrawn operator.  Entries still
        building are left alone (their builder holds its own references);
        in-flight requests likewise finish on their own session reference.
        Returns the number of entries dropped.
        """
        with self._lock:
            victims = [
                key for key, entry in self._entries.items()
                if entry.ready.is_set() and entry.session is not None
                and predicate(entry.session)
            ]
            for key in victims:
                del self._entries[key]
            self._evictions += len(victims)
        return len(victims)

    # ------------------------------------------------------------------ #
    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    def hit_rate(self) -> Optional[float]:
        """Hits over lookups since construction (None before any lookup)."""
        with self._lock:
            lookups = self._hits + self._misses
            return (self._hits / lookups) if lookups else None

    def stats(self) -> Dict[str, object]:
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": (self._hits / lookups) if lookups else None,
            }
