"""Stdlib HTTP front end for :class:`~repro.serve.service.SolveService`.

Endpoints:

``POST /solve`` (JSON — the debug path)
    Body: ``{"problem": {spec}|null, "config": {SolverConfig fields}|null,
    "b": [floats]|null, "x0": [floats]|null, "deadline_ms": float|null}``.
    The problem spec is resolved server-side (see
    :mod:`repro.serve.problems`); ``b`` defaults to the problem's assembled
    right-hand side.  Response carries the solution, the convergence summary
    and the serving metadata (queue time, batch size, worker, degradation).
``POST /solve`` (binary — ``Content-Type: application/x-repro-frame``)
    Body: one :mod:`repro.serve.proto` frame of kind ``"solve"`` —
    ``meta`` holds ``problem``/``config``/``deadline_ms`` and the arrays
    block holds ``b`` (one right-hand side) *or* ``B`` (an ``(n, k)``
    multi-column block that fans out into ``k`` concurrent submissions and
    coalesces in the service's micro-batching queue), plus optional ``x0``.
    The response is a ``"result"`` frame: raw f64 ``solution`` (``(n,)`` or
    ``(n, k)``), ``final_relative_residual`` and ``residual_history`` (for
    ``k == 1``) blocks, convergence lists in the header.  No float ever
    transits as text, and solutions are **bitwise** identical to the JSON
    path's parsed values.  Errors still answer as JSON with the structured
    contract below — a client that can't parse a frame can always parse the
    failure.
``GET /healthz``
    Liveness + failure-domain view: worker threads/processes, queue depths,
    circuit breaker states.  ``status`` is ``"ok"``, ``"degraded"`` (a
    breaker is open, fallback rungs serving, a worker was restarted) or
    ``"unhealthy"`` (a worker died for good).
``GET /stats``
    The service's full :meth:`~repro.serve.service.SolveService.stats` payload.
``GET /metrics``
    Prometheus text exposition (version 0.0.4) of the service's metrics
    registry.  For the sharded service this aggregates the parent registry
    with a snapshot pulled from every live worker process, merged
    element-wise (fixed log-spaced histogram buckets make that exact).

Every response carries an ``X-Trace-Id`` header: the id of the server-side
trace for that request (adopted from the client's ``X-Trace-Id`` header when
well-formed, minted otherwise).  Success bodies never change with tracing on
or off; error bodies carry the id inside the error object so a 503/504 log
line correlates with server spans.

Error handling contract: every error response is
``{"error": {"code", "message", "status", "trace_id"[, "retry_of"]}}`` with a
stable machine-readable ``code`` (see :mod:`repro.serve.errors`).  Overload
(503) responses carry a ``Retry-After`` header.  Tracebacks and internal
exception details are never leaked unless the server was constructed with
``debug=True``.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per in-flight
request, which is exactly what lets concurrent HTTP clients coalesce in the
service's micro-batching queue.  This front end is deliberately dependency
free; production deployments would put a real ASGI server in front of the
same :class:`SolveService`.
"""

from __future__ import annotations

import json
import math
import threading
import time
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from ..obs import trace as obs_trace
from ..obs.metrics import render_prometheus
from . import proto
from .errors import InvalidRequest, ServeError
from .service import SolveService

__all__ = ["ServeHTTPServer"]

#: content type of the Prometheus text exposition format
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    # the service is attached to the server object by ServeHTTPServer
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SolveService:
        return self.server.service  # type: ignore[attr-defined]

    # -- trace correlation ------------------------------------------------ #
    def _begin_request(self) -> None:
        """Assign this request its trace identity (cheap; always done).

        A client-supplied ``X-Trace-Id`` is adopted when well-formed so a
        caller can correlate its own logs; otherwise a fresh id is minted.
        ``X-Retry-Of`` lets a retrying client link the new trace to the
        failed attempt's id (the ``retry_of`` span attribute).
        """
        incoming = proto._clean_trace_id(self.headers.get("X-Trace-Id"))
        self._trace_id = incoming or obs_trace.new_trace_id()
        self._retry_of = proto._clean_trace_id(self.headers.get("X-Retry-Of"))

    # -- helpers --------------------------------------------------------- #
    def _send_json(self, payload: dict, status: int = 200,
                   retry_after_s: Optional[float] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            self.send_header("X-Trace-Id", trace_id)
        if retry_after_s is not None:
            self.send_header("Retry-After", str(max(0, math.ceil(retry_after_s))))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: str, message: str, status: int,
                         retry_after_s: Optional[float] = None) -> None:
        """The one error shape: ``{"error": {"code", "message", "status",
        "trace_id"[, "retry_of"]}}`` — the id correlates a 503/504 with
        server-side spans."""
        error = {"code": code, "message": message, "status": status,
                 "trace_id": getattr(self, "_trace_id", None)}
        retry_of = getattr(self, "_retry_of", None)
        if retry_of is not None:
            error["retry_of"] = retry_of
        self._send_json({"error": error}, status=status,
                        retry_after_s=retry_after_s)

    def _send_exception(self, error: BaseException) -> None:
        """Map an exception onto the structured error contract."""
        span = obs_trace.current_span()
        if span is not None and not span.terminal_events():
            span.add_event("error", error_type=type(error).__name__,
                           code=getattr(error, "code", None))
        if isinstance(error, ServeError):
            error.trace_id = getattr(self, "_trace_id", None)
            self._send_error_json(error.code, str(error), error.http_status,
                                  retry_after_s=error.retry_after_s)
            return
        if isinstance(error, (ValueError, KeyError, json.JSONDecodeError)):
            self._send_error_json("invalid_request", str(error), 400)
            return
        if isinstance(error, TimeoutError):
            self._send_error_json("deadline_exceeded", "request timed out", 504)
            return
        # internal error: never leak exception details unless debugging
        if getattr(self.server, "debug", False):
            message = f"{type(error).__name__}: {error}\n" + "".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            )
        else:
            message = "internal server error"
        self._send_error_json("internal", message, 500)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover - debug aid
            super().log_message(format, *args)

    # -- endpoints ------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._begin_request()
        if self.path == "/healthz":
            health = self.service.health()
            stats = self.service.metrics.snapshot()
            health["uptime_s"] = stats["uptime_s"]
            health["requests"] = stats["requests"]
            status = 200 if health["status"] in ("ok", "degraded") else 503
            self._send_json(health, status=status)
        elif self.path == "/stats":
            self._send_json(self.service.stats())
        elif self.path == "/metrics":
            try:
                self._send_metrics()
            except BaseException as error:  # noqa: BLE001 - mapped to JSON
                self._send_exception(error)
        else:
            self._send_error_json("not_found", f"unknown path {self.path!r}", 404)

    def _send_metrics(self) -> None:
        """Render the service's metrics registry as Prometheus text."""
        snapshot_fn = getattr(self.service, "metrics_snapshot", None)
        if callable(snapshot_fn):
            snapshot = snapshot_fn()
        else:  # duck-typed service without the aggregating method
            snapshot = self.service.metrics.registry.snapshot()
        body = render_prometheus(snapshot).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", METRICS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            self.send_header("X-Trace-Id", trace_id)
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._begin_request()
        if self.path != "/solve":
            self._send_error_json("not_found", f"unknown path {self.path!r}", 404)
            return
        content_type = (self.headers.get("Content-Type") or "").split(";")[0].strip()
        if content_type == proto.CONTENT_TYPE:
            self._solve_binary()
        else:
            self._solve_json()

    @staticmethod
    def _serve_info(result) -> dict:
        return {
            "queue_s": result.info.get("queue_s"),
            "batch_size": result.info.get("batch_size"),
            "worker": result.info.get("worker"),
            "shard": result.info.get("shard"),
            "setup_s": result.info.get("setup_s"),
            "preconditioner": result.info.get("preconditioner_kind"),
            "krylov": result.info.get("krylov"),
            "degraded": bool(result.info.get("degraded", False)),
            "rung": result.info.get("rung"),
            "failure_reason": result.info.get("failure_reason"),
            "primary_failure": result.info.get("primary_failure"),
            "breaker_rerouted": bool(result.info.get("breaker_rerouted", False)),
        }

    def _solve_json(self) -> None:
        """The JSON debug path: floats as text, one right-hand side."""
        with obs_trace.trace_root("http.request", trace_id=self._trace_id,
                                  path="/solve", proto="json") as root:
            if self._retry_of is not None:
                root.set_attribute("retry_of", self._retry_of)
            try:
                with obs_trace.span("ingress.decode"):
                    payload = self._read_json()
                    b = payload.get("b")
                    x0 = payload.get("x0")
                    deadline_ms = payload.get("deadline_ms")
                    if deadline_ms is not None:
                        deadline_ms = float(deadline_ms)
                    b = np.asarray(b, dtype=np.float64) if b is not None else None
                    x0 = np.asarray(x0, dtype=np.float64) if x0 is not None else None
                self.service.metrics.observe_proto("json")
                with obs_trace.span("serve.dispatch"):
                    result = self.service.solve(
                        payload.get("problem"),
                        b=b,
                        x0=x0,
                        solver_config=payload.get("config"),
                        deadline_ms=deadline_ms,
                    )
            except BaseException as error:  # noqa: BLE001 - mapped to JSON errors
                self._send_exception(error)
                return
            with obs_trace.span("response.encode"):
                self._send_json({
                    "solution": result.solution.tolist(),
                    "converged": bool(result.converged),
                    "iterations": int(result.iterations),
                    "final_relative_residual": float(result.final_relative_residual),
                    "elapsed_s": float(result.elapsed_time),
                    "serve": self._serve_info(result),
                })
            root.add_event("result", converged=bool(result.converged),
                           iterations=int(result.iterations))

    def _read_frame(self) -> "proto.Frame":
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise InvalidRequest("binary request needs a non-empty body")
        return proto.decode_frame(self.rfile.read(length))

    def _send_frame(self, frame_bytes: bytes) -> None:
        self.send_response(200)
        self.send_header("Content-Type", proto.CONTENT_TYPE)
        self.send_header("Content-Length", str(len(frame_bytes)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            self.send_header("X-Trace-Id", trace_id)
        self.end_headers()
        self.wfile.write(frame_bytes)

    def _solve_binary(self) -> None:
        """The zero-copy path: raw f64 blocks both ways, errors stay JSON."""
        decode_start = time.perf_counter()
        try:
            frame = self._read_frame()
        except BaseException as error:  # noqa: BLE001 - mapped to JSON errors
            self._send_exception(error)
            return
        # A frame may carry its own trace correlation in the header meta (a
        # relaying parent, or a client threading its own ids).  Malformed
        # meta is dropped silently — it must never fail the solve.
        trace_meta = proto.extract_trace_meta(frame.meta)
        parent_id = None
        if trace_meta is not None:
            self._trace_id = trace_meta["trace_id"]
            parent_id = trace_meta["parent_span_id"]
        with obs_trace.trace_root("http.request", trace_id=self._trace_id,
                                  parent_id=parent_id, path="/solve",
                                  proto="binary") as root:
            # The frame was read before the root could exist (its meta names
            # the trace) — back-date the root so decode/dispatch/encode tile
            # the request wall time.
            root.start = decode_start
            if self._retry_of is not None:
                root.set_attribute("retry_of", self._retry_of)
            root.child("ingress.decode", start=decode_start,
                       end=time.perf_counter())
            try:
                if frame.kind != "solve":
                    raise InvalidRequest(
                        f"expected a 'solve' frame, got {frame.kind!r}"
                    )
                meta = frame.meta
                deadline_ms = meta.get("deadline_ms")
                if deadline_ms is not None:
                    deadline_ms = float(deadline_ms)
                b = frame.arrays.get("b")
                block = frame.arrays.get("B")
                x0 = frame.arrays.get("x0")
                if block is not None:
                    if b is not None:
                        raise InvalidRequest("send either 'b' or 'B', not both")
                    if block.ndim != 2 or block.shape[1] < 1:
                        raise InvalidRequest(
                            f"'B' must be a 2-D (n, k) block, got shape {block.shape}"
                        )
                    if x0 is not None:
                        raise InvalidRequest(
                            "'x0' applies to single-column requests only"
                        )
                    columns = [np.ascontiguousarray(block[:, j], dtype=np.float64)
                               for j in range(block.shape[1])]
                else:
                    columns = [b]
                for _ in columns:
                    self.service.metrics.observe_proto("binary")
                # fan the columns out concurrently: same-session columns
                # coalesce in the micro-batching queue exactly like
                # concurrent clients do
                with obs_trace.span("serve.dispatch"):
                    futures = [
                        self.service.submit(
                            meta.get("problem"),
                            b=column,
                            x0=x0,
                            solver_config=meta.get("config"),
                            deadline_ms=deadline_ms,
                        )
                        for column in columns
                    ]
                    results = [future.result() for future in futures]
            except BaseException as error:  # noqa: BLE001 - mapped to JSON errors
                self._send_exception(error)
                return
            with obs_trace.span("response.encode"):
                arrays = {
                    "final_relative_residual": np.asarray(
                        [r.final_relative_residual for r in results], dtype=np.float64
                    ),
                }
                if block is not None:
                    arrays["solution"] = np.stack(
                        [r.solution for r in results], axis=1
                    )
                else:
                    arrays["solution"] = results[0].solution
                    arrays["residual_history"] = np.asarray(
                        results[0].residual_history, dtype=np.float64
                    )
                self._send_frame(proto.encode_frame("result", {
                    "k": len(results),
                    "converged": [bool(r.converged) for r in results],
                    "iterations": [int(r.iterations) for r in results],
                    "elapsed_s": [float(r.elapsed_time) for r in results],
                    "serve": [self._serve_info(r) for r in results],
                }, arrays))
            root.add_event("result", k=len(results),
                           converged=[bool(r.converged) for r in results])


class ServeHTTPServer:
    """A :class:`SolveService` behind a threading HTTP server.

    ``service`` is duck-typed: the single-process
    :class:`~repro.serve.service.SolveService` and the multi-process
    :class:`~repro.serve.shard.ShardedSolveService` both fit (``solve``,
    ``submit``, ``health``, ``stats``, ``metrics``).

    ``port=0`` binds an ephemeral port (the bound address is available as
    :attr:`address` after construction) — used by the tests.  ``debug=True``
    includes tracebacks in internal-error responses; leave it off anywhere
    untrusted clients can reach the port.
    """

    def __init__(self, service: SolveService, host: str = "127.0.0.1",
                 port: int = 8780, debug: bool = False) -> None:
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = service  # type: ignore[attr-defined]
        self._httpd.debug = bool(debug)  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServeHTTPServer":
        """Serve in a background thread (returns immediately)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    def __enter__(self) -> "ServeHTTPServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
