"""The concurrent solve service: session cache + micro-batching worker pool.

:class:`SolveService` is the serving layer the ROADMAP's "heavy traffic"
north star asks for, built directly on the setup/solve split of
:mod:`repro.solvers`:

1. **Session cache** — requests are keyed by
   :func:`repro.solvers.fingerprint.session_key` (problem bytes × solver
   config × model/checkpoint content); the expensive setup (partition,
   factorisations, coarse space, compiled DSS plans) is paid once per key
   and amortised over the request stream (:class:`~repro.serve.cache.SessionCache`).
   The solver config hash covers the inference ``precision``, so float32 and
   float64 requests always resolve to distinct cached sessions — a request
   can never be answered at a precision it did not ask for.
2. **Micro-batching queue** — concurrent single-RHS requests for the *same*
   session are coalesced into one
   :meth:`~repro.solvers.session.SolverSession.solve_many` call, bounded by
   ``max_batch`` and ``max_wait_ms``.  With the lockstep multi-RHS Krylov
   path this turns k solves' SpMVs into SpMMs and batches the preconditioner
   applications — for ddm-gnn, one fused multi-column DSS forward per
   inference batch instead of k sequential ones — **bit-identical per RHS**
   to sequential ``session.solve`` (the lockstep contract), so batching is
   purely a throughput optimisation.
3. **Worker pool** — sessions are *pinned* to workers by key hash, so one
   session is only ever driven from one thread and the per-session scratch
   buffers (``InferencePlan``, stacked-restriction arrays) stay safe; the
   session lock remains as defence in depth for out-of-band callers.
4. **Metrics** — per-request queue/solve/total latency histograms
   (p50/p95/p99), throughput and cache hit-rate via :meth:`SolveService.stats`.

Typical use::

    service = SolveService(model=model)
    result = service.solve(problem, b)                  # blocking
    future = service.submit(problem, b)                 # concurrent callers
    print(service.stats()["latency_ms"]["total"]["p99_ms"])
    service.close()
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Union

import numpy as np

from ..fem.problem import Problem
from ..krylov.result import SolveResult
from ..solvers.config import SolverConfig
from ..solvers.fingerprint import session_key
from ..solvers.session import SolverSession
from .cache import SessionCache
from .metrics import ServeMetrics
from .problems import ProblemCache

__all__ = ["ServeConfig", "SolveService"]


@dataclass
class ServeConfig:
    """Service-level knobs (solver knobs live on each request's SolverConfig).

    Attributes
    ----------
    workers:
        Worker threads; sessions are pinned to workers by key hash.
    max_batch:
        Maximum requests coalesced into one ``solve_many`` call (1 disables
        micro-batching: one solve per request).
    max_wait_ms:
        How long a freshly started batch waits for more same-session
        requests before executing.  Bounds the latency cost of batching.
    cache_capacity:
        LRU capacity of the prepared-session cache.
    problem_cache_capacity:
        LRU capacity for spec-resolved problems (HTTP requests).
    latency_window:
        Samples retained per latency histogram.
    solve_mode:
        Forwarded to ``solve_many`` for batched execution: "auto" (default;
        lockstep-fused when the Krylov method supports it), "fused" or
        "sequential".
    """

    workers: int = 2
    max_batch: int = 8
    max_wait_ms: float = 2.0
    cache_capacity: int = 8
    problem_cache_capacity: int = 16
    latency_window: int = 8192
    solve_mode: str = "auto"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.solve_mode not in ("auto", "fused", "sequential"):
            raise ValueError("solve_mode must be 'auto', 'fused' or 'sequential'")


class _Request:
    __slots__ = ("key", "session", "b", "x0", "future", "enqueued_at", "dequeued_at")

    def __init__(self, key: str, session: SolverSession, b: Optional[np.ndarray],
                 x0: Optional[np.ndarray]) -> None:
        self.key = key
        self.session = session
        self.b = b
        self.x0 = x0
        self.future: "Future[SolveResult]" = Future()
        self.enqueued_at = time.perf_counter()
        self.dequeued_at = 0.0


class _Worker(threading.Thread):
    """One serving thread: drains its queue, coalescing same-session runs."""

    def __init__(self, service: "SolveService", index: int) -> None:
        super().__init__(name=f"repro-serve-worker-{index}", daemon=True)
        self.service = service
        self.index = index
        self.queue: Deque[_Request] = deque()
        self.condition = threading.Condition()
        self.stopping = False

    # -- producer side -------------------------------------------------- #
    def submit(self, request: _Request) -> None:
        with self.condition:
            if self.stopping:
                raise RuntimeError("service is closed")
            self.queue.append(request)
            self.condition.notify()

    def stop(self) -> None:
        with self.condition:
            self.stopping = True
            self.condition.notify_all()

    # -- consumer side --------------------------------------------------- #
    def _take_batchable(self, first: _Request, limit: int) -> List[_Request]:
        """Pull queued requests that can join ``first``'s batch (same session,
        no per-request initial guess), preserving FIFO order of the rest."""
        taken: List[_Request] = []
        remaining: Deque[_Request] = deque()
        while self.queue and len(taken) < limit:
            candidate = self.queue.popleft()
            if candidate.key == first.key and candidate.x0 is None:
                taken.append(candidate)
            else:
                remaining.append(candidate)
        # put non-matching requests back in their original order
        remaining.extend(self.queue)
        self.queue.clear()
        self.queue.extend(remaining)
        return taken

    def run(self) -> None:
        config = self.service.config
        while True:
            with self.condition:
                while not self.queue and not self.stopping:
                    self.condition.wait()
                if not self.queue:
                    return  # stopping and drained
                first = self.queue.popleft()

            batch = [first]
            if config.max_batch > 1 and first.x0 is None:
                deadline = time.perf_counter() + config.max_wait_ms / 1e3
                while len(batch) < config.max_batch:
                    with self.condition:
                        extracted = self._take_batchable(first, config.max_batch - len(batch))
                        if not extracted:
                            remaining = deadline - time.perf_counter()
                            if remaining <= 0 or self.stopping:
                                break
                            self.condition.wait(remaining)
                            continue
                    batch.extend(extracted)

            self._execute(batch)

    def _execute(self, batch: List[_Request]) -> None:
        service = self.service
        now = time.perf_counter()
        for request in batch:
            request.dequeued_at = now
        session = batch[0].session
        solve_start = time.perf_counter()
        try:
            if len(batch) == 1:
                request = batch[0]
                results = [session.solve(request.b, x0=request.x0)]
            else:
                vectors = [
                    request.b if request.b is not None else session.problem.rhs
                    for request in batch
                ]
                results = session.solve_many(
                    np.stack(vectors), mode=service.config.solve_mode
                ).results
        except BaseException as error:  # noqa: BLE001 - delivered to the callers
            service.metrics.observe_error()
            for request in batch:
                request.future.set_exception(error)
            return
        solve_ms = (time.perf_counter() - solve_start) * 1e3
        service.metrics.observe_batch(len(batch))
        for request, result in zip(batch, results):
            queue_ms = (request.dequeued_at - request.enqueued_at) * 1e3
            result.info["queue_s"] = queue_ms / 1e3
            result.info["batch_size"] = len(batch)
            result.info["worker"] = self.index
            service.metrics.observe_request(queue_ms, solve_ms)
            request.future.set_result(result)


class SolveService:
    """Concurrent solve serving over cached sessions with micro-batching."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        model=None,
        default_solver_config: Union[SolverConfig, Dict, None] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.model = model
        if isinstance(default_solver_config, dict):
            default_solver_config = SolverConfig.from_dict(default_solver_config)
        self.default_solver_config = default_solver_config or SolverConfig(
            preconditioner="ddm-lu"
        )
        self.sessions = SessionCache(self.config.cache_capacity)
        self.problems = ProblemCache(self.config.problem_cache_capacity)
        self.metrics = ServeMetrics(self.config.latency_window)
        self._closed = False
        self._workers = [_Worker(self, i) for i in range(self.config.workers)]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------ #
    def _resolve_problem(self, problem: Union[Problem, Dict, None]) -> Problem:
        if isinstance(problem, Problem):
            return problem
        return self.problems.resolve(problem)

    def _resolve_config(self, solver_config: Union[SolverConfig, Dict, None]) -> SolverConfig:
        if solver_config is None:
            return self.default_solver_config
        if isinstance(solver_config, dict):
            return SolverConfig.from_dict(solver_config)
        return solver_config

    def session_for(
        self,
        problem: Union[Problem, Dict, None],
        solver_config: Union[SolverConfig, Dict, None] = None,
    ) -> SolverSession:
        """The cached prepared session for (problem, config) — built on miss."""
        problem = self._resolve_problem(problem)
        config = self._resolve_config(solver_config)
        key = session_key(problem, config, self.model)
        return self.sessions.get_or_create(
            key, lambda: SolverSession(problem, config, model=self.model)
        )

    # ------------------------------------------------------------------ #
    def submit(
        self,
        problem: Union[Problem, Dict, None],
        b: Optional[np.ndarray] = None,
        x0: Optional[np.ndarray] = None,
        solver_config: Union[SolverConfig, Dict, None] = None,
    ) -> "Future[SolveResult]":
        """Enqueue one solve; returns a future resolving to its SolveResult.

        ``problem`` is an assembled :class:`~repro.fem.problem.Problem`, a
        problem-spec dict (see :mod:`repro.serve.problems`), or None for the
        service's default spec.  Setup cost is paid synchronously on the
        first request for a new session key (subsequent requests are pure
        cache hits); the solve itself runs on the session's pinned worker,
        micro-batched with any concurrent same-session requests.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        resolved = self._resolve_problem(problem)
        config = self._resolve_config(solver_config)
        key = session_key(resolved, config, self.model)
        session = self.sessions.get_or_create(
            key, lambda: SolverSession(resolved, config, model=self.model)
        )
        if b is not None:
            b = np.asarray(b, dtype=np.float64)
            if b.shape != (resolved.num_dofs,):
                raise ValueError(
                    f"right-hand side must have shape ({resolved.num_dofs},), got {b.shape}"
                )
        if x0 is not None:
            x0 = np.asarray(x0, dtype=np.float64)
        request = _Request(key, session, b, x0)
        worker = self._workers[int(key[:8], 16) % len(self._workers)]
        worker.submit(request)
        return request.future

    def solve(
        self,
        problem: Union[Problem, Dict, None],
        b: Optional[np.ndarray] = None,
        x0: Optional[np.ndarray] = None,
        solver_config: Union[SolverConfig, Dict, None] = None,
        timeout: Optional[float] = None,
    ) -> SolveResult:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(problem, b=b, x0=x0, solver_config=solver_config).result(timeout)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """One consistent view of throughput, latency SLOs and cache health."""
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.sessions.stats()
        snapshot["cache_hit_rate"] = snapshot["cache"]["hit_rate"]
        snapshot["problem_cache_size"] = len(self.problems)
        snapshot["workers"] = len(self._workers)
        snapshot["config"] = {
            "max_batch": self.config.max_batch,
            "max_wait_ms": self.config.max_wait_ms,
            "solve_mode": self.config.solve_mode,
        }
        return snapshot

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work and join the workers (queued work is drained)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.stop()
        for worker in self._workers:
            worker.join(timeout)

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
