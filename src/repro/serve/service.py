"""The concurrent solve service: session cache + micro-batching worker pool.

:class:`SolveService` is the serving layer the ROADMAP's "heavy traffic"
north star asks for, built directly on the setup/solve split of
:mod:`repro.solvers`:

1. **Session cache** — requests are keyed by
   :func:`repro.solvers.fingerprint.session_key` (problem bytes × solver
   config × model/checkpoint content); the expensive setup (partition,
   factorisations, coarse space, compiled DSS plans) is paid once per key
   and amortised over the request stream (:class:`~repro.serve.cache.SessionCache`).
   The solver config hash covers the inference ``precision``, so float32 and
   float64 requests always resolve to distinct cached sessions — a request
   can never be answered at a precision it did not ask for.
2. **Micro-batching queue** — concurrent single-RHS requests for the *same*
   session are coalesced into one
   :meth:`~repro.solvers.session.SolverSession.solve_many` call, bounded by
   ``max_batch`` and ``max_wait_ms``.  With the lockstep multi-RHS Krylov
   path this turns k solves' SpMVs into SpMMs and batches the preconditioner
   applications — for ddm-gnn, one fused multi-column DSS forward per
   inference batch instead of k sequential ones — **bit-identical per RHS**
   to sequential ``session.solve`` (the lockstep contract), so batching is
   purely a throughput optimisation.
3. **Worker pool** — sessions are *pinned* to workers by key hash, so one
   session is only ever driven from one thread and the per-session scratch
   buffers (``InferencePlan``, stacked-restriction arrays) stay safe; the
   session lock remains as defence in depth for out-of-band callers.
4. **Metrics** — per-request queue/solve/total latency histograms
   (p50/p95/p99), throughput and cache hit-rate via :meth:`SolveService.stats`.

Failure domain (the robustness layer):

* **Validation at the boundary** — ``submit`` checks ``b``/``x0`` shape,
  dtype and finiteness and raises :class:`~repro.serve.errors.InvalidRequest`
  before anything is enqueued; malformed input never reaches a worker.
* **Bounded queues + load shedding** — each worker queue holds at most
  ``max_queue`` requests; beyond that ``submit`` raises
  :class:`~repro.serve.errors.ServiceOverloaded` (HTTP 503 with
  ``Retry-After``) instead of buffering unboundedly.
* **Per-request deadlines** — ``submit(deadline_ms=...)`` registers the
  future with a reaper thread that fails it with
  :class:`~repro.serve.errors.DeadlineExceeded` the moment the deadline
  passes, even if the owning worker is stalled mid-solve.  No injected fault
  leaves a future unresolved past its deadline.
* **Circuit breakers** — one :class:`~repro.serve.breaker.CircuitBreaker`
  per *primary* session key.  ``breaker_failures`` consecutive primary
  failures open it; while open, requests whose config names a fallback
  ladder are routed straight onto the first rung (a distinct cached
  session), and half-open probes re-admit the primary once it recovers.
* **Health** — :meth:`health` reports worker liveness, queue depths and
  breaker states (the ``/healthz`` payload).

Typical use::

    service = SolveService(model=model)
    result = service.solve(problem, b)                  # blocking
    future = service.submit(problem, b, deadline_ms=500)
    print(service.stats()["latency_ms"]["total"]["p99_ms"])
    service.close()
"""

from __future__ import annotations

import dataclasses
import heapq
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from ..fem.problem import Problem
from ..krylov.result import SolveResult
from ..obs import events as obs_events
from ..obs import trace as obs_trace
from ..solvers.config import SolverConfig
from ..solvers.fingerprint import session_key
from ..solvers.session import SolverSession
from .breaker import CircuitBreaker
from .cache import SessionCache
from .errors import DeadlineExceeded, InvalidRequest, ServiceOverloaded
from .metrics import ServeMetrics
from .problems import ProblemCache

__all__ = ["ServeConfig", "SolveService", "validate_vector"]


def validate_vector(
    name: str, vector: Optional[np.ndarray], num_dofs: int
) -> Optional[np.ndarray]:
    """Boundary validation shared by the in-process and sharded services.

    Checks shape, dtype coercibility and finiteness, raising
    :class:`~repro.serve.errors.InvalidRequest` so malformed input never
    reaches a worker (thread or process).
    """
    if vector is None:
        return None
    try:
        vector = np.asarray(vector, dtype=np.float64)
    except (TypeError, ValueError) as error:
        raise InvalidRequest(f"{name} must be a numeric vector: {error}") from error
    if vector.shape != (num_dofs,):
        raise InvalidRequest(
            f"{name} must have shape ({num_dofs},), got {vector.shape}"
        )
    if not np.isfinite(vector).all():
        raise InvalidRequest(f"{name} contains non-finite entries")
    return vector


@dataclass
class ServeConfig:
    """Service-level knobs (solver knobs live on each request's SolverConfig).

    Attributes
    ----------
    workers:
        Worker threads; sessions are pinned to workers by key hash.
    max_batch:
        Maximum requests coalesced into one ``solve_many`` call (1 disables
        micro-batching: one solve per request).
    max_wait_ms:
        How long a freshly started batch waits for more same-session
        requests before executing.  Bounds the latency cost of batching.
    cache_capacity:
        LRU capacity of the prepared-session cache.
    problem_cache_capacity:
        LRU capacity for spec-resolved problems (HTTP requests).
    latency_window:
        Samples retained per latency histogram.
    solve_mode:
        Forwarded to ``solve_many`` for batched execution: "auto" (default;
        lockstep-fused when the Krylov method supports it), "fused" or
        "sequential".
    max_queue:
        Bound on each worker's queue.  A submit that would exceed it is shed
        with :class:`~repro.serve.errors.ServiceOverloaded` instead of
        buffering unboundedly.
    default_deadline_ms:
        Deadline applied to requests that do not pass their own
        ``deadline_ms`` (None = no deadline).
    breaker_failures:
        Consecutive primary failures on one session key before its circuit
        breaker opens.
    breaker_reset_s:
        Seconds an open breaker waits before admitting a half-open probe.
    shed_retry_after_s:
        ``Retry-After`` hint attached to shed requests.
    """

    workers: int = 2
    max_batch: int = 8
    max_wait_ms: float = 2.0
    cache_capacity: int = 8
    problem_cache_capacity: int = 16
    latency_window: int = 8192
    solve_mode: str = "auto"
    max_queue: int = 64
    default_deadline_ms: Optional[float] = None
    breaker_failures: int = 5
    breaker_reset_s: float = 30.0
    shed_retry_after_s: float = 0.1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.solve_mode not in ("auto", "fused", "sequential"):
            raise ValueError("solve_mode must be 'auto', 'fused' or 'sequential'")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be positive or None")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.breaker_reset_s < 0:
            raise ValueError("breaker_reset_s must be >= 0")
        if self.shed_retry_after_s < 0:
            raise ValueError("shed_retry_after_s must be >= 0")

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-serialisable) — ships to worker processes.

        >>> ServeConfig(max_batch=4).to_dict()["max_batch"]
        4
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ServeConfig":
        """Rebuild from :meth:`to_dict` output, rejecting unknown fields.

        >>> ServeConfig.from_dict({"workers": 3}).workers
        3
        >>> try:
        ...     ServeConfig.from_dict({"worker": 3})
        ... except ValueError as error:
        ...     print(str(error).split(" (")[0])
        unknown serve-config fields: ['worker']
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown serve-config fields: {unknown} (known: {sorted(known)})"
            )
        return cls(**data)


class _Request:
    __slots__ = ("key", "session", "b", "x0", "future", "enqueued_at",
                 "dequeued_at", "breaker_key", "rerouted", "deadline_at",
                 "span")

    def __init__(self, key: str, session: SolverSession, b: Optional[np.ndarray],
                 x0: Optional[np.ndarray]) -> None:
        self.key = key
        self.session = session
        self.b = b
        self.x0 = x0
        self.future: "Future[SolveResult]" = Future()
        self.enqueued_at = time.perf_counter()
        self.dequeued_at = 0.0
        #: the *primary* session key — the breaker identity even when the
        #: request was rerouted onto a fallback rung's session
        self.breaker_key = key
        self.rerouted = False
        self.deadline_at: Optional[float] = None  # time.monotonic() deadline
        #: the caller's active span at submit time (None when tracing is off);
        #: the worker attaches retrospective queue/solve children to it
        self.span = obs_trace.current_span()


class _Reaper(threading.Thread):
    """Deadline enforcement: fails futures the moment their deadline passes.

    Workers may stall mid-solve (a hung BLAS call, an injected fault); the
    reaper guarantees the *caller* still gets a
    :class:`~repro.serve.errors.DeadlineExceeded` on time — the future fails
    fast even though the worker thread is still busy.
    """

    def __init__(self, service: "SolveService") -> None:
        super().__init__(name="repro-serve-reaper", daemon=True)
        self.service = service
        self.condition = threading.Condition()
        self._heap: List[Tuple[float, int, _Request]] = []
        self._seq = 0
        self.stopping = False

    def watch(self, request: _Request) -> None:
        if request.deadline_at is None:
            return
        with self.condition:
            heapq.heappush(self._heap, (request.deadline_at, self._seq, request))
            self._seq += 1
            self.condition.notify()

    def stop(self) -> None:
        with self.condition:
            self.stopping = True
            self.condition.notify_all()

    def run(self) -> None:
        while True:
            with self.condition:
                # drop entries whose futures resolved on their own
                while self._heap and self._heap[0][2].future.done():
                    heapq.heappop(self._heap)
                if self.stopping:
                    return
                if not self._heap:
                    self.condition.wait()
                    continue
                deadline, _, request = self._heap[0]
                now = time.monotonic()
                if deadline > now:
                    self.condition.wait(deadline - now)
                    continue
                heapq.heappop(self._heap)
            # fail the future outside the lock; the worker's own set_result
            # (if it ever finishes) is guarded against InvalidStateError
            try:
                request.future.set_exception(
                    DeadlineExceeded("request deadline exceeded")
                )
            except InvalidStateError:
                continue  # resolved in the meantime
            span = getattr(request, "span", None)
            if span is not None:
                span.add_event("deadline_exceeded")
            self.service.metrics.observe_deadline_timeout()
            self.service.metrics.observe_error()


class _Worker(threading.Thread):
    """One serving thread: drains its queue, coalescing same-session runs."""

    def __init__(self, service: "SolveService", index: int) -> None:
        super().__init__(name=f"repro-serve-worker-{index}", daemon=True)
        self.service = service
        self.index = index
        self.queue: Deque[_Request] = deque()
        self.condition = threading.Condition()
        self.stopping = False
        #: monotonic timestamp of the last main-loop heartbeat (healthz)
        self.last_beat = time.monotonic()

    # -- producer side -------------------------------------------------- #
    def submit(self, request: _Request, max_queue: int) -> None:
        with self.condition:
            if self.stopping:
                raise RuntimeError("service is closed")
            if len(self.queue) >= max_queue:
                raise ServiceOverloaded(
                    f"worker {self.index} queue is full "
                    f"({len(self.queue)}/{max_queue} requests)",
                    retry_after_s=self.service.config.shed_retry_after_s,
                )
            self.queue.append(request)
            self.condition.notify()

    def stop(self) -> None:
        with self.condition:
            self.stopping = True
            self.condition.notify_all()

    # -- consumer side --------------------------------------------------- #
    def _take_batchable(self, first: _Request, limit: int) -> List[_Request]:
        """Pull queued requests that can join ``first``'s batch (same session,
        no per-request initial guess), preserving FIFO order of the rest."""
        taken: List[_Request] = []
        remaining: Deque[_Request] = deque()
        while self.queue and len(taken) < limit:
            candidate = self.queue.popleft()
            if candidate.key == first.key and candidate.x0 is None:
                taken.append(candidate)
            else:
                remaining.append(candidate)
        # put non-matching requests back in their original order
        remaining.extend(self.queue)
        self.queue.clear()
        self.queue.extend(remaining)
        return taken

    def run(self) -> None:
        config = self.service.config
        while True:
            with self.condition:
                self.last_beat = time.monotonic()
                while not self.queue and not self.stopping:
                    self.condition.wait()
                    self.last_beat = time.monotonic()
                if not self.queue:
                    return  # stopping and drained
                first = self.queue.popleft()

            batch = [first]
            if config.max_batch > 1 and first.x0 is None:
                deadline = time.perf_counter() + config.max_wait_ms / 1e3
                while len(batch) < config.max_batch:
                    with self.condition:
                        extracted = self._take_batchable(first, config.max_batch - len(batch))
                        if not extracted:
                            remaining = deadline - time.perf_counter()
                            if remaining <= 0 or self.stopping:
                                break
                            self.condition.wait(remaining)
                            continue
                    batch.extend(extracted)

            self._execute(batch)

    def _execute(self, batch: List[_Request]) -> None:
        service = self.service
        # requests already failed by the deadline reaper (or cancelled) are
        # dropped before the expensive solve
        batch = [request for request in batch if not request.future.done()]
        if not batch:
            return
        now = time.perf_counter()
        for request in batch:
            request.dequeued_at = now
        session = batch[0].session
        solve_start = time.perf_counter()
        try:
            # in-session child spans (session.solve, precond.apply) attach to
            # the first request's trace; batch-mates get retrospective
            # queue/solve children of their own below
            with obs_trace.use_span(batch[0].span):
                if len(batch) == 1:
                    request = batch[0]
                    results = [session.solve(request.b, x0=request.x0)]
                else:
                    vectors = [
                        request.b if request.b is not None else session.problem.rhs
                        for request in batch
                    ]
                    results = session.solve_many(
                        np.stack(vectors), mode=service.config.solve_mode
                    ).results
        except BaseException as error:  # noqa: BLE001 - delivered to the callers
            service.metrics.observe_error()
            solve_end = time.perf_counter()
            for request in batch:
                service._record_outcome(request, ok=False)
                if request.span is not None:
                    self._stamp_span(request, solve_start, solve_end, len(batch))
                    request.span.add_event("error", error_type=type(error).__name__)
                try:
                    request.future.set_exception(error)
                except InvalidStateError:
                    pass  # deadline reaper got there first
            return
        solve_end = time.perf_counter()
        solve_ms = (solve_end - solve_start) * 1e3
        service.metrics.observe_batch(len(batch))
        for request, result in zip(batch, results):
            queue_ms = (request.dequeued_at - request.enqueued_at) * 1e3
            result.info["queue_s"] = queue_ms / 1e3
            result.info["batch_size"] = len(batch)
            result.info["worker"] = self.index
            if request.rerouted:
                result.info["breaker_rerouted"] = True
            degraded = bool(result.info.get("degraded"))
            if degraded or request.rerouted:
                service.metrics.observe_degraded()
            service._record_outcome(
                request, ok=result.converged and not degraded
            )
            service.metrics.observe_request(queue_ms, solve_ms)
            if request.span is not None:
                self._stamp_span(request, solve_start, solve_end, len(batch))
                request.span.add_event(
                    "result", converged=bool(result.converged),
                    iterations=int(result.iterations),
                )
            try:
                request.future.set_result(result)
            except InvalidStateError:
                pass  # deadline reaper got there first

    def _stamp_span(self, request: _Request, solve_start: float,
                    solve_end: float, batch_size: int) -> None:
        """Attach retrospective queue/solve children to the request's span."""
        span = request.span
        span.child("serve.queue", start=request.enqueued_at,
                   end=request.dequeued_at, worker=self.index)
        span.child("serve.solve", start=solve_start, end=solve_end,
                   worker=self.index, batch_size=batch_size)


class SolveService:
    """Concurrent solve serving over cached sessions with micro-batching."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        model=None,
        default_solver_config: Union[SolverConfig, Dict, None] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.model = model
        if isinstance(default_solver_config, dict):
            default_solver_config = SolverConfig.from_dict(default_solver_config)
        self.default_solver_config = default_solver_config or SolverConfig(
            preconditioner="ddm-lu"
        )
        self.sessions = SessionCache(self.config.cache_capacity)
        self.problems = ProblemCache(self.config.problem_cache_capacity)
        self.metrics = ServeMetrics(self.config.latency_window)
        self._closed = False
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        self._workers = [_Worker(self, i) for i in range(self.config.workers)]
        for worker in self._workers:
            worker.start()
        self._reaper = _Reaper(self)
        self._reaper.start()

    # ------------------------------------------------------------------ #
    def _resolve_problem(self, problem: Union[Problem, Dict, None]) -> Problem:
        if isinstance(problem, Problem):
            return problem
        return self.problems.resolve(problem)

    def _resolve_config(self, solver_config: Union[SolverConfig, Dict, None]) -> SolverConfig:
        if solver_config is None:
            return self.default_solver_config
        if isinstance(solver_config, dict):
            return SolverConfig.from_dict(solver_config)
        return solver_config

    def session_for(
        self,
        problem: Union[Problem, Dict, None],
        solver_config: Union[SolverConfig, Dict, None] = None,
    ) -> SolverSession:
        """The cached prepared session for (problem, config) — built on miss."""
        problem = self._resolve_problem(problem)
        config = self._resolve_config(solver_config)
        key = session_key(problem, config, self.model)
        return self.sessions.get_or_create(
            key, lambda: SolverSession(problem, config, model=self.model)
        )

    # -- validation ------------------------------------------------------ #
    def _validate_vector(
        self, name: str, vector: Optional[np.ndarray], num_dofs: int
    ) -> Optional[np.ndarray]:
        """Boundary validation: shape, dtype and finiteness, as InvalidRequest."""
        return validate_vector(name, vector, num_dofs)

    # -- circuit breakers ------------------------------------------------ #
    def _breaker_for(self, key: str) -> CircuitBreaker:
        with self._breakers_lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.config.breaker_failures,
                    reset_after_s=self.config.breaker_reset_s,
                )
                self._breakers[key] = breaker
            return breaker

    def _record_outcome(self, request: _Request, ok: bool) -> None:
        """Feed a request's outcome to its breaker.

        Only requests that actually attempted the *primary* configuration
        count: rerouted (breaker-open) requests ran a fallback rung and say
        nothing about the primary's health.
        """
        if request.rerouted:
            return
        with self._breakers_lock:
            breaker = self._breakers.get(request.breaker_key)
        if breaker is None:
            return
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    # ------------------------------------------------------------------ #
    def submit(
        self,
        problem: Union[Problem, Dict, None],
        b: Optional[np.ndarray] = None,
        x0: Optional[np.ndarray] = None,
        solver_config: Union[SolverConfig, Dict, None] = None,
        deadline_ms: Optional[float] = None,
    ) -> "Future[SolveResult]":
        """Enqueue one solve; returns a future resolving to its SolveResult.

        ``problem`` is an assembled :class:`~repro.fem.problem.Problem`, a
        problem-spec dict (see :mod:`repro.serve.problems`), or None for the
        service's default spec.  Setup cost is paid synchronously on the
        first request for a new session key (subsequent requests are pure
        cache hits); the solve itself runs on the session's pinned worker,
        micro-batched with any concurrent same-session requests.

        ``deadline_ms`` (or ``config.default_deadline_ms``) bounds how long
        the returned future may stay unresolved: past the deadline it fails
        with :class:`~repro.serve.errors.DeadlineExceeded` even if the worker
        is still busy.  A full worker queue sheds the request immediately
        with :class:`~repro.serve.errors.ServiceOverloaded`.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        caller_span = obs_trace.current_span()
        route_start = time.perf_counter()
        try:
            resolved = self._resolve_problem(problem)
            config = self._resolve_config(solver_config)
        except InvalidRequest:
            raise
        except (TypeError, ValueError, KeyError) as error:
            raise InvalidRequest(str(error)) from error
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        elif deadline_ms <= 0:
            raise InvalidRequest(f"deadline_ms must be positive, got {deadline_ms!r}")
        b = self._validate_vector("right-hand side", b, resolved.num_dofs)
        x0 = self._validate_vector("initial guess", x0, resolved.num_dofs)

        key = session_key(resolved, config, self.model)
        use_config, use_key, rerouted = config, key, False
        if config.fallback:
            breaker = self._breaker_for(key)
            if not breaker.allow_primary():
                # breaker open: skip the failing primary entirely and serve
                # from the first fallback rung's (cached) session
                use_config = dataclasses.replace(
                    config,
                    preconditioner=config.fallback[0],
                    fallback=list(config.fallback[1:]),
                )
                use_key = session_key(resolved, use_config, self.model)
                rerouted = True
                if caller_span is not None:
                    caller_span.add_event(
                        "breaker_reroute", rung=use_config.preconditioner
                    )
                if config.obs:
                    obs_events.get_ring().emit(
                        "breaker", action="reroute", key=key[:16],
                        rung=use_config.preconditioner,
                    )

        try:
            session = self.sessions.get_or_create(
                use_key, lambda: SolverSession(resolved, use_config, model=self.model)
            )
        except Exception:
            # a failed session build is a primary failure too (e.g. a
            # poisoned checkpoint): the breaker must see it so repeated
            # build failures eventually reroute to the fallback rung
            self.metrics.observe_error()
            if not rerouted and config.fallback:
                self._breaker_for(key).record_failure()
            raise

        request = _Request(use_key, session, b, x0)
        request.breaker_key = key
        request.rerouted = rerouted
        if deadline_ms is not None:
            request.deadline_at = time.monotonic() + deadline_ms / 1e3
        worker = self._workers[int(use_key[:8], 16) % len(self._workers)]
        if caller_span is not None:
            # routing covers validation, session resolution and worker pick
            caller_span.child("serve.route", start=route_start,
                              end=time.perf_counter(), worker=worker.index,
                              cache_key=use_key[:16], rerouted=rerouted)
        try:
            worker.submit(request, self.config.max_queue)
        except ServiceOverloaded:
            self.metrics.observe_shed()
            raise
        # register with the reaper only after the queue accepted the request
        self._reaper.watch(request)
        return request.future

    def solve(
        self,
        problem: Union[Problem, Dict, None],
        b: Optional[np.ndarray] = None,
        x0: Optional[np.ndarray] = None,
        solver_config: Union[SolverConfig, Dict, None] = None,
        timeout: Optional[float] = None,
        deadline_ms: Optional[float] = None,
    ) -> SolveResult:
        """Blocking convenience wrapper around :meth:`submit`."""
        future = self.submit(
            problem, b=b, x0=x0, solver_config=solver_config, deadline_ms=deadline_ms
        )
        return future.result(timeout)

    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, object]:
        """Liveness view: worker health, queue depths, breaker states.

        ``status`` is ``"ok"`` when every worker thread is alive and no
        breaker is open, ``"degraded"`` when the service still serves but a
        breaker is open (primary path down, fallback serving), and
        ``"unhealthy"`` when a worker thread has died.
        """
        now = time.monotonic()
        workers = [
            {
                "name": worker.name,
                "alive": worker.is_alive(),
                "queue_depth": len(worker.queue),
                "last_beat_age_s": max(0.0, now - worker.last_beat),
            }
            for worker in self._workers
        ]
        with self._breakers_lock:
            breakers = {key: b.snapshot() for key, b in self._breakers.items()}
        open_breakers = sum(1 for b in breakers.values() if b["state"] == "open")
        all_alive = all(w["alive"] for w in workers)
        if not all_alive or not self._reaper.is_alive():
            status = "unhealthy"
        elif open_breakers:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "workers": workers,
            "reaper_alive": self._reaper.is_alive(),
            "breakers": {
                "total": len(breakers),
                "open": open_breakers,
                "half_open": sum(
                    1 for b in breakers.values() if b["state"] == "half_open"
                ),
                "by_key": breakers,
            },
            "closed": self._closed,
        }

    def stats(self) -> Dict[str, object]:
        """One consistent view of throughput, latency SLOs and cache health."""
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.sessions.stats()
        snapshot["cache_hit_rate"] = snapshot["cache"]["hit_rate"]
        snapshot["problem_cache_size"] = len(self.problems)
        snapshot["workers"] = len(self._workers)
        with self._breakers_lock:
            states = [b.snapshot()["state"] for b in self._breakers.values()]
        snapshot["breakers"] = {
            "total": len(states),
            "open": states.count("open"),
            "half_open": states.count("half_open"),
        }
        snapshot["config"] = {
            "max_batch": self.config.max_batch,
            "max_wait_ms": self.config.max_wait_ms,
            "solve_mode": self.config.solve_mode,
            "max_queue": self.config.max_queue,
            "default_deadline_ms": self.config.default_deadline_ms,
        }
        return snapshot

    def metrics_snapshot(self) -> Dict[str, object]:
        """Registry snapshot for ``/metrics`` (gauges refreshed at read time)."""
        registry = self.metrics.registry
        depth = registry.gauge(
            "repro_serve_queue_depth", "Requests waiting per worker thread.")
        for worker in self._workers:
            depth.set(len(worker.queue), worker=str(worker.index))
        registry.gauge(
            "repro_serve_cached_sessions", "Prepared sessions in the LRU cache."
        ).set(self.sessions.stats()["size"])
        with self._breakers_lock:
            states = [b.snapshot()["state"] for b in self._breakers.values()]
        registry.gauge(
            "repro_serve_breakers_open", "Circuit breakers currently open."
        ).set(states.count("open"))
        return registry.snapshot()

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work and join the workers (queued work is drained)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.stop()
        for worker in self._workers:
            worker.join(timeout)
        self._reaper.stop()
        self._reaper.join(timeout)

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
