"""Pre-fork sharded solve service: one session cache per worker *process*.

PR 5 pinned sessions to worker *threads*; the GIL still serialised every
CPU-bound SpMV/SpMM, so single-process throughput plateaus at one core.
:class:`ShardedSolveService` lifts the same pinning idea over processes:

* **Consistent-hash sharding** — requests route by their
  :func:`~repro.solvers.fingerprint.session_key` over a virtual-node hash
  ring (:func:`build_ring`), so one session key always lands on one worker
  (sessions are never rebuilt in two processes) and adding a shard moves
  only ~1/N of the key space instead of reshuffling everything, keeping
  warm caches warm.
* **Shared memory, not N copies** — checkpoint weight arrays and installed
  problem operator arrays live in
  :mod:`multiprocessing.shared_memory` segments (:mod:`repro.solvers.shm`);
  workers attach zero-copy read-only views, so N replicas pay one copy of
  the big arrays.  The parent owns every segment and unlinks on close.
* **Binary frames on the pipes** — parent↔worker traffic is the same
  length-prefixed frame format as the binary HTTP path
  (:mod:`repro.serve.proto`): raw f64 blocks both ways, so the process
  boundary adds no float-text cost and results stay **bitwise** identical
  to in-process solves.
* **PR-7 semantics survive the boundary** — each worker runs a full
  :class:`~repro.serve.service.SolveService` inside (micro-batching,
  bounded queues + shedding, per-request deadlines, worker-local breakers,
  degradation ladder); the parent adds its own layer: per-primary-key
  breakers that count crashes, a deadline reaper over the futures it hands
  out, per-shard pending caps, and a supervisor that **restarts a dead
  worker** and fails its in-flight futures with the typed
  :class:`~repro.serve.errors.WorkerCrashed`.

The public surface duck-types :class:`~repro.serve.service.SolveService`
(``submit``/``solve``/``stats``/``health``/``metrics``/``close``), so the
HTTP front end and the benchmarks drive either service unchanged.

Supervision model: the per-shard receiver thread blocks on the worker's
pipe; a worker that exits (or is ``kill -9``-ed) closes its end, the
receiver sees EOF and runs the death protocol — fail in-flight futures
typed, feed the breakers, respawn the process (up to
``ShardConfig.max_restarts``) with a cleared install table.  A worker that
*wedges* without dying is covered by deadlines: the parent reaper fails its
futures on time and the per-shard pending cap sheds further traffic.
"""

from __future__ import annotations

import bisect
import dataclasses
import hashlib
import itertools
import multiprocessing as mp
import os
import pickle
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..fem.problem import Problem
from ..krylov.result import SolveResult
from ..obs import trace as obs_trace
from ..obs.metrics import merge_snapshots
from ..solvers.config import SolverConfig
from ..solvers.fingerprint import session_key
from ..solvers.registry import preconditioner_spec
from ..solvers.shm import SharedArrayBundle, model_to_shm, problem_to_shm
from .breaker import CircuitBreaker
from .errors import (
    InvalidRequest,
    ServeError,
    ServiceOverloaded,
    WorkerCrashed,
    error_from_code,
)
from .metrics import ServeMetrics
from .problems import ProblemCache
from .proto import (
    TRACE_META_KEY,
    decode_frame,
    encode_frame,
    extract_trace_meta,
    make_trace_meta,
)
from .service import ServeConfig, SolveService, _Reaper, validate_vector

__all__ = ["ShardConfig", "ShardedSolveService", "build_ring", "route"]

_START_METHOD_PREFERENCE = ("fork", "spawn")


def _shard_context(start_method: Optional[str]) -> mp.context.BaseContext:
    if start_method is not None:
        return mp.get_context(start_method)
    supported = mp.get_all_start_methods()
    for method in _START_METHOD_PREFERENCE:
        if method in supported:
            return mp.get_context(method)
    return mp.get_context()  # pragma: no cover - every platform has one


# --------------------------------------------------------------------------- #
# consistent hashing
# --------------------------------------------------------------------------- #
def build_ring(num_shards: int, virtual_nodes: int = 64) -> List[Tuple[int, int]]:
    """The sorted virtual-node ring: ``virtual_nodes`` points per shard.

    Each point is ``(hash, slot)`` with the hash drawn from SHA-256 of the
    point's name, so the ring is deterministic across processes and runs.

    >>> ring = build_ring(4, virtual_nodes=16)
    >>> len(ring), ring == sorted(ring)
    (64, True)
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if virtual_nodes < 1:
        raise ValueError("virtual_nodes must be >= 1")
    points = []
    for slot in range(num_shards):
        for vnode in range(virtual_nodes):
            digest = hashlib.sha256(f"shard:{slot}:vnode:{vnode}".encode()).digest()
            points.append((int.from_bytes(digest[:8], "big"), slot))
    points.sort()
    return points


def route(ring: Sequence[Tuple[int, int]], key: str) -> int:
    """Map a hex session key onto the first ring point at or after its hash.

    >>> ring = build_ring(3, virtual_nodes=32)
    >>> slots = {route(ring, f"{i:016x}") for i in range(0, 2**64, 2**58)}
    >>> slots == {0, 1, 2}
    True
    """
    value = int(key[:16], 16)
    index = bisect.bisect_left(ring, (value, -1))
    if index == len(ring):
        index = 0
    return ring[index][1]


# --------------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------------- #
@dataclass
class ShardConfig:
    """Process-pool knobs of the sharded service.

    Attributes
    ----------
    workers:
        Worker *processes*.  Sessions shard across them by consistent
        hashing of the session key.
    threads_per_worker:
        Serving threads of each worker's inner
        :class:`~repro.serve.service.SolveService` (1 keeps a worker
        strictly single-threaded; micro-batching still applies).
    virtual_nodes:
        Ring points per shard; more points → smoother key balance.
    start_method:
        Multiprocessing start method (None = first supported of
        ``fork``/``spawn``).
    restart_workers:
        Whether the supervisor respawns a dead worker.
    max_restarts:
        Restart budget per shard slot; beyond it the slot is marked dead and
        its requests fail fast with
        :class:`~repro.serve.errors.WorkerCrashed`.
    max_pending_per_shard:
        Parent-side cap on in-flight requests per shard (None = derived from
        the serve config's ``max_queue`` × ``threads_per_worker`` × 2).  The
        cap bounds pipe backlog onto a wedged worker; beyond it ``submit``
        sheds with :class:`~repro.serve.errors.ServiceOverloaded`.
    admin_timeout_s:
        How long ``stats``/``health`` wait for a worker's reply before
        reporting it unresponsive.
    faults:
        Cross-process chaos: ``(name, kwargs)`` specs from
        :mod:`repro.faults`, installed inside every worker at bootstrap
        (:func:`repro.faults.install_from_specs`).
    """

    workers: int = 2
    threads_per_worker: int = 1
    virtual_nodes: int = 64
    start_method: Optional[str] = None
    restart_workers: bool = True
    max_restarts: int = 3
    max_pending_per_shard: Optional[int] = None
    admin_timeout_s: float = 10.0
    faults: Sequence[Tuple[str, Dict[str, object]]] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.threads_per_worker < 1:
            raise ValueError("threads_per_worker must be >= 1")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.max_pending_per_shard is not None and self.max_pending_per_shard < 1:
            raise ValueError("max_pending_per_shard must be >= 1 or None")
        if self.admin_timeout_s <= 0:
            raise ValueError("admin_timeout_s must be positive")
        self.faults = tuple((str(name), dict(kwargs)) for name, kwargs in self.faults)


# --------------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------------- #
def _result_frame(req_id: int, result: SolveResult,
                  trace: Optional[Dict[str, object]] = None) -> bytes:
    meta = {
        "req_id": req_id,
        "converged": bool(result.converged),
        "iterations": int(result.iterations),
        "elapsed_s": float(result.elapsed_time),
        "preconditioner_s": float(result.preconditioner_time),
        "failure_reason": result.failure_reason,
        "info": result.info,
    }
    if trace is not None:
        meta[TRACE_META_KEY] = trace
    arrays = {
        "solution": np.asarray(result.solution, dtype=np.float64),
        "residual_history": np.asarray(result.residual_history, dtype=np.float64),
    }
    return encode_frame("result", meta, arrays)


def _error_frame(req_id: Optional[int], error: BaseException,
                 trace: Optional[Dict[str, object]] = None) -> bytes:
    if isinstance(error, ServeError):
        code, status, retry = error.code, error.http_status, error.retry_after_s
    else:
        code, status, retry = "internal", 500, None
    meta = {
        "req_id": req_id,
        "code": code,
        "status": status,
        "retry_after_s": retry,
        "message": f"{type(error).__name__}: {error}"
        if not isinstance(error, ServeError) else str(error),
    }
    if trace is not None:
        meta[TRACE_META_KEY] = trace
    return encode_frame("error", meta)


def _shard_worker_main(conn, bootstrap: Dict[str, object]) -> None:
    """Worker entry point: serve binary frames from the parent pipe.

    Bootstraps faults, the (shared-memory) model and an inner
    :class:`SolveService`, then loops on the pipe.  Solve frames are
    submitted *asynchronously* to the inner service — concurrent requests
    for one session still coalesce in its micro-batching queue — and each
    future's completion sends one result/error frame back.  The loop exits
    on a ``shutdown`` frame or pipe EOF (parent gone); exit is via
    ``os._exit`` so shared-memory finalisers never race interpreter
    teardown.
    """
    installed_faults = []
    try:
        if bootstrap.get("trace_enabled"):
            # mirror the parent's tracing state so session/preconditioner
            # child spans open inside the worker too (robust under spawn,
            # where module globals are not inherited)
            obs_trace.enable_tracing()
        fault_specs = bootstrap.get("fault_specs") or ()
        if fault_specs:
            from .. import faults as faults_module

            installed_faults = faults_module.install_from_specs(fault_specs)
        model = None
        if bootstrap.get("model_manifest") is not None:
            from ..solvers.shm import model_from_shm

            model = model_from_shm(bootstrap["model_manifest"])
        elif bootstrap.get("model_pickle") is not None:
            model = pickle.loads(bootstrap["model_pickle"])
        service = SolveService(
            ServeConfig.from_dict(bootstrap["serve_config"]),
            model=model,
            default_solver_config=bootstrap.get("default_solver_config"),
        )
    except BaseException as error:  # noqa: BLE001 - reported to the parent
        try:
            conn.send_bytes(encode_frame("fatal", {
                "message": f"worker bootstrap failed: {type(error).__name__}: {error}",
            }))
            conn.close()
        except Exception:
            pass
        os._exit(1)

    problems: Dict[str, Problem] = {}  # installed shm problems by fingerprint
    send_lock = threading.Lock()

    def send(frame_bytes: bytes) -> None:
        with send_lock:
            try:
                conn.send_bytes(frame_bytes)
            except (BrokenPipeError, OSError):
                os._exit(0)  # parent is gone; nothing left to serve

    def finish(req_id: int, future: "Future[SolveResult]",
               root: Optional[obs_trace.Span] = None) -> None:
        trace_payload = None
        if root is not None:
            root.finish()
            try:
                trace_payload = root.to_dict()
            except Exception:  # never let telemetry break the reply
                trace_payload = None
        try:
            result = future.result()
        except BaseException as error:  # noqa: BLE001 - serialised to the parent
            send(_error_frame(req_id, error, trace=trace_payload))
            return
        try:
            send(_result_frame(req_id, result, trace=trace_payload))
        except Exception as error:  # unserialisable info — still answer typed
            send(_error_frame(req_id, error))

    running = True
    while running:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):
            break
        try:
            frame = decode_frame(data)
        except InvalidRequest as error:
            send(_error_frame(None, error))
            continue
        meta = frame.meta
        req_id = meta.get("req_id")
        if frame.kind == "solve":
            try:
                ref = meta.get("problem_ref")
                if ref is not None:
                    try:
                        problem: Union[Problem, Dict, None] = problems[ref]
                    except KeyError:
                        raise InvalidRequest(
                            f"problem {ref[:12]}… is not installed on this worker"
                        ) from None
                else:
                    problem = meta.get("problem_spec")
                # re-root the parent's trace inside this process: a valid
                # trace meta yields a worker-local root whose finished tree
                # ships back in the reply frame; malformed meta is dropped
                trace_meta = extract_trace_meta(meta)
                root = None
                if trace_meta is not None and obs_trace.trace_enabled():
                    root = obs_trace.Span(
                        "worker.request",
                        trace_id=trace_meta["trace_id"],
                        parent_id=trace_meta["parent_span_id"],
                        pid=os.getpid(),
                    )
                with obs_trace.use_span(root):
                    future = service.submit(
                        problem,
                        b=frame.arrays.get("b"),
                        x0=frame.arrays.get("x0"),
                        solver_config=meta.get("config"),
                        deadline_ms=meta.get("deadline_ms"),
                    )
            except BaseException as error:  # noqa: BLE001 - serialised to the parent
                send(_error_frame(req_id, error))
            else:
                future.add_done_callback(
                    lambda done, rid=req_id, sp=root: finish(rid, done, sp)
                )
        elif frame.kind == "install_problem":
            try:
                from ..solvers.shm import problem_from_shm

                problem = problem_from_shm(meta["manifest"])
                problems[problem.fingerprint()] = problem
            except BaseException as error:  # noqa: BLE001
                send(_error_frame(req_id, error))
        elif frame.kind == "uninstall_problem":
            fingerprint = meta.get("fingerprint")
            dropped = problems.pop(fingerprint, None)
            service.sessions.prune(
                lambda s: s.problem.fingerprint() == fingerprint
            )
            if dropped is not None:
                bundle = getattr(dropped, "_shm_bundle", None)
                if bundle is not None:
                    bundle.close()
        elif frame.kind == "stats":
            send(encode_frame("stats_result",
                              {"req_id": req_id, "payload": service.stats()}))
        elif frame.kind == "metrics":
            # registry snapshot piggybacked on the stats admin path — the
            # parent merges it with its own for /metrics exposition
            send(encode_frame("metrics_result",
                              {"req_id": req_id,
                               "payload": service.metrics_snapshot()}))
        elif frame.kind == "health":
            send(encode_frame("health_result",
                              {"req_id": req_id, "payload": service.health()}))
        elif frame.kind == "shutdown":
            running = False
        # unknown kinds are ignored: an older worker keeps serving what it knows

    service.close()
    for fault in reversed(installed_faults):
        fault.deactivate()
    try:
        conn.close()
    except Exception:
        pass
    os._exit(0)


# --------------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------------- #
class _Pending:
    """One in-flight request on a shard (duck-types the reaper's interface)."""

    __slots__ = ("future", "breaker_key", "rerouted", "deadline_at",
                 "enqueued_at", "admin", "span", "sent_at")

    def __init__(self, breaker_key: str = "", rerouted: bool = False,
                 admin: bool = False) -> None:
        self.future: Future = Future()
        self.breaker_key = breaker_key
        self.rerouted = rerouted
        self.deadline_at: Optional[float] = None
        self.enqueued_at = time.perf_counter()
        self.admin = admin
        #: caller's span at submit time (parent side); the reply handler
        #: attaches the shard round-trip child and grafts the worker subtree
        self.span = None if admin else obs_trace.current_span()
        self.sent_at = self.enqueued_at


class _Shard:
    """Parent-side state of one worker slot: process, pipe, in-flight table."""

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.process: Optional[mp.process.BaseProcess] = None
        self.conn = None
        self.lock = threading.Lock()  # guards pending/installed/generation
        self.send_lock = threading.Lock()
        self.pending: Dict[int, _Pending] = {}
        self.installed: set = set()
        self.generation = 0
        self.restarts = 0
        self.dead = False
        self.dead_reason: Optional[str] = None
        self.stopping = False

    @property
    def pid(self) -> Optional[int]:
        process = self.process
        return process.pid if process is not None else None

    def alive(self) -> bool:
        process = self.process
        return process is not None and process.is_alive()


class ShardedSolveService:
    """A pre-fork pool of :class:`SolveService` workers behind one facade.

    Duck-types the single-process service: ``submit`` returns a future,
    ``solve`` blocks, ``stats``/``health`` aggregate the shards,
    ``metrics`` is the parent-side :class:`~repro.serve.metrics.ServeMetrics`.
    Construction forks the workers immediately (pre-fork: all shared-memory
    segments and the model are prepared *before* the first fork, so every
    worker inherits or attaches the same bytes).
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        model=None,
        default_solver_config: Union[SolverConfig, Dict, None] = None,
        shard_config: Optional[ShardConfig] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.shard_config = shard_config or ShardConfig()
        if isinstance(default_solver_config, dict):
            default_solver_config = SolverConfig.from_dict(default_solver_config)
        self.default_solver_config = default_solver_config or SolverConfig(
            preconditioner="ddm-lu"
        )
        self.metrics = ServeMetrics(self.config.latency_window)
        self.problems = ProblemCache(self.config.problem_cache_capacity)
        self._ctx = _shard_context(self.shard_config.start_method)
        self._ring = build_ring(self.shard_config.workers,
                                self.shard_config.virtual_nodes)
        self._req_ids = itertools.count(1)
        self._closed = False
        self._close_lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        self._problem_bundles: Dict[str, SharedArrayBundle] = {}
        self._bundles_lock = threading.Lock()
        cap = self.shard_config.max_pending_per_shard
        if cap is None:
            cap = max(2 * self.config.max_queue * self.shard_config.threads_per_worker, 8)
        self._max_pending = int(cap)

        # the model is prepared ONCE, before any fork: shared memory when it
        # is a DSS (weights attach zero-copy in every worker), pickle bytes
        # as the fallback for duck-typed models
        if model is None and self.default_solver_config.checkpoint and \
                preconditioner_spec(self.default_solver_config.preconditioner).needs_model:
            from ..gnn.checkpoint import load_model

            model = load_model(self.default_solver_config.checkpoint)
        self.model = model
        self._model_bundle: Optional[SharedArrayBundle] = None
        model_manifest = None
        model_pickle = None
        if model is not None:
            try:
                self._model_bundle = model_to_shm(model)
                model_manifest = self._model_bundle.manifest
            except ValueError:
                model_pickle = pickle.dumps(model)
        inner_config = dataclasses.replace(
            self.config, workers=self.shard_config.threads_per_worker
        )
        self._bootstrap = {
            "serve_config": inner_config.to_dict(),
            "default_solver_config": self.default_solver_config.to_dict(),
            "model_manifest": model_manifest,
            "model_pickle": model_pickle,
            "fault_specs": tuple(self.shard_config.faults),
            # snapshotted at construction: enable tracing BEFORE building the
            # pool if worker-side session spans are wanted
            "trace_enabled": obs_trace.trace_enabled(),
        }

        self._shards = [_Shard(slot) for slot in range(self.shard_config.workers)]
        # pre-fork: spawn every process before any receiver thread runs, so
        # fork never snapshots a parent thread mid-critical-section
        for shard in self._shards:
            self._spawn_locked(shard)
        for shard in self._shards:
            self._start_receiver(shard)
        self._reaper = _Reaper(self)
        self._reaper.start()

    # -- process lifecycle ---------------------------------------------- #
    def _spawn_locked(self, shard: _Shard) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, self._bootstrap),
            name=f"repro-serve-shard-{shard.slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent's copy; EOF detection needs it closed
        shard.conn = parent_conn
        shard.process = process
        shard.generation += 1
        shard.installed = set()

    def _start_receiver(self, shard: _Shard) -> None:
        thread = threading.Thread(
            target=self._receive_loop,
            args=(shard, shard.generation, shard.conn),
            name=f"repro-serve-shard-rx-{shard.slot}-g{shard.generation}",
            daemon=True,
        )
        thread.start()

    def _receive_loop(self, shard: _Shard, generation: int, conn) -> None:
        """Per-shard receiver; doubles as the supervisor's death detector."""
        while True:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                frame = decode_frame(data)
            except InvalidRequest:
                continue  # a torn frame from a dying worker; EOF follows
            self._handle_frame(shard, frame)
        self._on_shard_exit(shard, generation)

    def _handle_frame(self, shard: _Shard, frame) -> None:
        meta = frame.meta
        req_id = meta.get("req_id")
        if frame.kind == "fatal":
            shard.dead_reason = str(meta.get("message", "worker bootstrap failed"))
            return  # EOF follows; _on_shard_exit handles the fallout
        with shard.lock:
            pending = shard.pending.pop(req_id, None) if req_id is not None else None
        if pending is None:
            return  # reaped, duplicate, or a protocol-level error frame
        if pending.span is not None and frame.kind in ("result", "error"):
            roundtrip = pending.span.child(
                "shard.roundtrip", start=pending.sent_at,
                end=time.perf_counter(), shard=shard.slot,
            )
            worker_trace = meta.get(TRACE_META_KEY)
            if isinstance(worker_trace, dict):
                roundtrip.graft(worker_trace)
        if frame.kind == "result":
            result = SolveResult(
                solution=frame.arrays["solution"],
                converged=bool(meta["converged"]),
                iterations=int(meta["iterations"]),
                residual_history=[float(v) for v in frame.arrays["residual_history"]],
                elapsed_time=float(meta["elapsed_s"]),
                preconditioner_time=float(meta["preconditioner_s"]),
                info=dict(meta.get("info") or {}),
                failure_reason=meta.get("failure_reason"),
            )
            result.info["shard"] = shard.slot
            if pending.rerouted:
                result.info["breaker_rerouted"] = True
            degraded = bool(result.info.get("degraded"))
            if degraded or pending.rerouted:
                self.metrics.observe_degraded()
            self._record_outcome(pending, ok=result.converged and not degraded)
            total_ms = (time.perf_counter() - pending.enqueued_at) * 1e3
            solve_ms = min(float(meta["elapsed_s"]) * 1e3, total_ms)
            self.metrics.observe_request(total_ms - solve_ms, solve_ms)
            if pending.span is not None:
                pending.span.add_event(
                    "result", converged=bool(result.converged),
                    iterations=int(result.iterations), shard=shard.slot,
                )
            try:
                pending.future.set_result(result)
            except InvalidStateError:
                pass  # the parent reaper got there first
        elif frame.kind == "error":
            error = error_from_code(
                str(meta.get("code") or "internal"),
                str(meta.get("message") or "worker error"),
                retry_after_s=meta.get("retry_after_s"),
            )
            if pending.span is not None:
                pending.span.add_event("error", code=error.code, shard=shard.slot)
            self.metrics.observe_error()
            if error.code == "overloaded":
                self.metrics.observe_shed()
            if error.code not in ("overloaded", "deadline_exceeded") and not pending.admin:
                self._record_outcome(pending, ok=False)
            try:
                pending.future.set_exception(error)
            except InvalidStateError:
                pass
        elif frame.kind in ("stats_result", "health_result", "metrics_result"):
            try:
                pending.future.set_result(meta.get("payload"))
            except InvalidStateError:
                pass

    def _on_shard_exit(self, shard: _Shard, generation: int) -> None:
        """Death protocol: fail in-flight work typed, feed breakers, respawn."""
        with shard.lock:
            if shard.generation != generation:
                return  # a stale receiver of an already-replaced process
            drained = list(shard.pending.values())
            shard.pending.clear()
            shard.installed = set()
            stopping = shard.stopping or self._closed
            restart = (not stopping
                       and self.shard_config.restart_workers
                       and shard.dead_reason is None
                       and shard.restarts < self.shard_config.max_restarts)
            if restart:
                shard.restarts += 1
                self._spawn_locked(shard)
            elif not stopping:
                shard.dead = True
                if shard.dead_reason is None:
                    shard.dead_reason = (
                        f"worker {shard.slot} died and exhausted its "
                        f"{self.shard_config.max_restarts} restart(s)"
                    )
        reason = shard.dead_reason or f"worker {shard.slot} died mid-request"
        if not stopping:
            self.metrics.observe_worker_crash()
        for pending in drained:
            error = WorkerCrashed(
                "service closed before the request completed" if stopping
                else f"{reason}; the request was in flight and may be retried"
            )
            if pending.span is not None and not stopping:
                pending.span.add_event("worker_crashed", shard=shard.slot)
            if not stopping:
                self.metrics.observe_error()
                if not pending.admin:
                    self._record_outcome(pending, ok=False)
            try:
                pending.future.set_exception(error)
            except InvalidStateError:
                pass
        if restart:
            self.metrics.observe_worker_restart()
            self._start_receiver(shard)

    # -- breakers (parent layer: crash + end-to-end outcome accounting) -- #
    def _breaker_for(self, key: str) -> CircuitBreaker:
        with self._breakers_lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.config.breaker_failures,
                    reset_after_s=self.config.breaker_reset_s,
                )
                self._breakers[key] = breaker
            return breaker

    def _record_outcome(self, pending: _Pending, ok: bool) -> None:
        if pending.rerouted or not pending.breaker_key:
            return
        with self._breakers_lock:
            breaker = self._breakers.get(pending.breaker_key)
        if breaker is None:
            return
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    # -- request path ---------------------------------------------------- #
    def _resolve_problem(
        self, problem: Union[Problem, Dict, None]
    ) -> Tuple[Problem, Optional[Dict]]:
        """Resolve to (assembled problem, spec-or-None).

        Spec-described problems re-resolve deterministically inside the
        worker (same seed → same fingerprint), so only the tiny spec dict
        crosses the pipe; direct ``Problem`` objects are installed once via
        shared memory instead.
        """
        if isinstance(problem, Problem):
            return problem, None
        from .problems import _normalise_spec

        spec = _normalise_spec(problem)
        return self.problems.resolve(spec), spec

    def _resolve_config(
        self, solver_config: Union[SolverConfig, Dict, None]
    ) -> SolverConfig:
        if solver_config is None:
            return self.default_solver_config
        if isinstance(solver_config, dict):
            return SolverConfig.from_dict(solver_config)
        return solver_config

    def _shard_send(self, shard: _Shard, frame_bytes: bytes) -> None:
        try:
            with shard.send_lock:
                shard.conn.send_bytes(frame_bytes)
        except (BrokenPipeError, OSError) as error:
            raise WorkerCrashed(
                f"worker {shard.slot} is unreachable ({type(error).__name__}); "
                f"the supervisor is restarting it — retry the request"
            ) from error

    def _ensure_installed(self, shard: _Shard, problem: Problem) -> str:
        """Install a directly-passed problem's operator on a shard (once).

        The parent packs the arrays into shared memory on first sight of the
        fingerprint (one copy total) and sends each shard a manifest-only
        install frame before the first solve that references it; pipe FIFO
        ordering makes install-then-solve race-free without acks.
        """
        fingerprint = problem.fingerprint()
        with self._bundles_lock:
            if fingerprint not in self._problem_bundles:
                self._problem_bundles[fingerprint] = problem_to_shm(problem)
            manifest = self._problem_bundles[fingerprint].manifest
        with shard.lock:
            needs_install = fingerprint not in shard.installed
            if needs_install:
                shard.installed.add(fingerprint)
        if needs_install:
            try:
                self._shard_send(shard, encode_frame(
                    "install_problem", {"manifest": manifest}
                ))
            except WorkerCrashed:
                with shard.lock:
                    shard.installed.discard(fingerprint)
                raise
        return fingerprint

    def submit(
        self,
        problem: Union[Problem, Dict, None],
        b: Optional[np.ndarray] = None,
        x0: Optional[np.ndarray] = None,
        solver_config: Union[SolverConfig, Dict, None] = None,
        deadline_ms: Optional[float] = None,
    ) -> "Future[SolveResult]":
        """Enqueue one solve on the owning shard; returns a future.

        Mirrors :meth:`SolveService.submit
        <repro.serve.service.SolveService.submit>` exactly, with two
        process-boundary differences: worker-side failures (including load
        shed inside a worker) surface *through the future* rather than
        synchronously, and a worker crash fails the future with the typed
        :class:`~repro.serve.errors.WorkerCrashed` while the supervisor
        restarts the process.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        caller_span = obs_trace.current_span()
        route_start = time.perf_counter()
        try:
            resolved, spec = self._resolve_problem(problem)
            config = self._resolve_config(solver_config)
        except InvalidRequest:
            raise
        except (TypeError, ValueError, KeyError) as error:
            raise InvalidRequest(str(error)) from error
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        elif deadline_ms <= 0:
            raise InvalidRequest(f"deadline_ms must be positive, got {deadline_ms!r}")
        b = validate_vector("right-hand side", b, resolved.num_dofs)
        x0 = validate_vector("initial guess", x0, resolved.num_dofs)

        key = session_key(resolved, config, self.model)
        use_config, use_key, rerouted = config, key, False
        if config.fallback:
            breaker = self._breaker_for(key)
            if not breaker.allow_primary():
                use_config = dataclasses.replace(
                    config,
                    preconditioner=config.fallback[0],
                    fallback=list(config.fallback[1:]),
                )
                use_key = session_key(resolved, use_config, self.model)
                rerouted = True
                if caller_span is not None:
                    caller_span.add_event(
                        "breaker_reroute", rung=use_config.preconditioner
                    )

        shard = self._shards[route(self._ring, use_key)]
        if shard.dead:
            self.metrics.observe_error()
            raise WorkerCrashed(shard.dead_reason or
                                f"worker {shard.slot} is down")
        with shard.lock:
            if len(shard.pending) >= self._max_pending:
                depth = len(shard.pending)
                overloaded = True
            else:
                overloaded = False
        if overloaded:
            self.metrics.observe_shed()
            raise ServiceOverloaded(
                f"shard {shard.slot} has {depth} requests in flight "
                f"(cap {self._max_pending})",
                retry_after_s=self.config.shed_retry_after_s,
            )

        problem_ref = None
        if spec is None:
            problem_ref = self._ensure_installed(shard, resolved)

        req_id = next(self._req_ids)
        pending = _Pending(breaker_key=key, rerouted=rerouted)
        if deadline_ms is not None:
            pending.deadline_at = time.monotonic() + deadline_ms / 1e3
        meta = {
            "req_id": req_id,
            "problem_spec": spec,
            "problem_ref": problem_ref,
            "config": use_config.to_dict(),
            "deadline_ms": deadline_ms,
        }
        if caller_span is not None:
            # trace context crosses the fork in the frame header meta; the
            # worker re-roots under (trace_id, this span) and ships its
            # finished subtree back in the reply
            meta[TRACE_META_KEY] = make_trace_meta(
                caller_span.trace_id, caller_span.span_id
            )
            caller_span.child(
                "serve.route", start=route_start, end=time.perf_counter(),
                shard=shard.slot, cache_key=use_key[:16], rerouted=rerouted,
            )
        arrays: Dict[str, np.ndarray] = {}
        if b is not None:
            arrays["b"] = b
        if x0 is not None:
            arrays["x0"] = x0
        frame_bytes = encode_frame("solve", meta, arrays)
        pending.sent_at = time.perf_counter()
        with shard.lock:
            shard.pending[req_id] = pending
        try:
            self._shard_send(shard, frame_bytes)
        except WorkerCrashed:
            with shard.lock:
                shard.pending.pop(req_id, None)
            self.metrics.observe_error()
            raise
        self._reaper.watch(pending)
        return pending.future

    def solve(
        self,
        problem: Union[Problem, Dict, None],
        b: Optional[np.ndarray] = None,
        x0: Optional[np.ndarray] = None,
        solver_config: Union[SolverConfig, Dict, None] = None,
        timeout: Optional[float] = None,
        deadline_ms: Optional[float] = None,
    ) -> SolveResult:
        """Blocking convenience wrapper around :meth:`submit`."""
        future = self.submit(
            problem, b=b, x0=x0, solver_config=solver_config, deadline_ms=deadline_ms
        )
        return future.result(timeout)

    # -- admin: aggregated stats & health -------------------------------- #
    def _admin_request(self, shard: _Shard, kind: str):
        if shard.dead or shard.stopping:
            return None
        req_id = next(self._req_ids)
        pending = _Pending(admin=True)
        with shard.lock:
            shard.pending[req_id] = pending
        try:
            self._shard_send(shard, encode_frame(kind, {"req_id": req_id}))
            return pending.future.result(self.shard_config.admin_timeout_s)
        except Exception:
            return None
        finally:
            with shard.lock:
                shard.pending.pop(req_id, None)

    def stats(self) -> Dict[str, object]:
        """Parent metrics + per-shard worker stats, aggregated.

        ``cache_hit_rate`` and ``mean_batch_size`` aggregate across the
        shards' inner services (the quantities the benchmarks track);
        ``shards`` carries each worker's full stats payload (or an
        ``unresponsive`` marker) for debugging.
        """
        snapshot = self.metrics.snapshot()
        shard_payloads: List[Dict[str, object]] = []
        hits = misses = batches = batched = 0
        for shard in self._shards:
            payload = self._admin_request(shard, "stats")
            entry: Dict[str, object] = {
                "slot": shard.slot,
                "pid": shard.pid,
                "alive": shard.alive(),
                "restarts": shard.restarts,
                "pending": len(shard.pending),
            }
            if isinstance(payload, dict):
                entry["stats"] = payload
                cache = payload.get("cache") or {}
                hits += int(cache.get("hits") or 0)
                misses += int(cache.get("misses") or 0)
                nbatches = int(payload.get("batches") or 0)
                mean = payload.get("mean_batch_size")
                batches += nbatches
                if mean is not None:
                    batched += int(round(float(mean) * nbatches))
            else:
                entry["stats"] = {"error": "unresponsive"}
            shard_payloads.append(entry)
        lookups = hits + misses
        snapshot["workers"] = len(self._shards)
        snapshot["threads_per_worker"] = self.shard_config.threads_per_worker
        snapshot["shards"] = shard_payloads
        snapshot["cache"] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else None,
        }
        snapshot["cache_hit_rate"] = snapshot["cache"]["hit_rate"]
        snapshot["mean_batch_size"] = (batched / batches) if batches else None
        snapshot["problem_cache_size"] = len(self.problems)
        with self._breakers_lock:
            states = [b.snapshot()["state"] for b in self._breakers.values()]
        snapshot["breakers"] = {
            "total": len(states),
            "open": states.count("open"),
            "half_open": states.count("half_open"),
        }
        snapshot["config"] = {
            "max_batch": self.config.max_batch,
            "max_wait_ms": self.config.max_wait_ms,
            "solve_mode": self.config.solve_mode,
            "max_queue": self.config.max_queue,
            "default_deadline_ms": self.config.default_deadline_ms,
            "shard_workers": self.shard_config.workers,
            "threads_per_worker": self.shard_config.threads_per_worker,
            "max_pending_per_shard": self._max_pending,
        }
        return snapshot

    def metrics_snapshot(self) -> Dict[str, object]:
        """Merged registry snapshot: parent + every responsive shard.

        Counters and histograms sum element-wise (fixed buckets make the
        merge exact); the ``/metrics`` endpoint renders the result, so one
        scrape sees the whole pool.  An unresponsive shard contributes
        nothing — the parent's own counters still cover its crashes.
        """
        registry = self.metrics.registry
        depth = registry.gauge(
            "repro_serve_pending_requests", "In-flight requests per shard.")
        for shard in self._shards:
            depth.set(len(shard.pending), shard=str(shard.slot))
        with self._breakers_lock:
            states = [b.snapshot()["state"] for b in self._breakers.values()]
        registry.gauge(
            "repro_serve_breakers_open", "Circuit breakers currently open."
        ).set(states.count("open"))
        snapshots = [registry.snapshot()]
        for shard in self._shards:
            payload = self._admin_request(shard, "metrics")
            if isinstance(payload, dict):
                snapshots.append(payload)
        return merge_snapshots(snapshots)

    def health(self) -> Dict[str, object]:
        """Aggregated liveness: shard processes, restart counts, breakers.

        ``status`` is ``"unhealthy"`` when any shard slot is permanently
        dead (restart budget exhausted) or unresponsive to a health probe,
        ``"degraded"`` when a parent breaker is open or a shard has been
        restarted, else ``"ok"``.
        """
        workers = []
        any_dead = False
        any_restarted = False
        for shard in self._shards:
            payload = self._admin_request(shard, "health")
            alive = shard.alive()
            entry: Dict[str, object] = {
                "slot": shard.slot,
                "pid": shard.pid,
                "alive": alive,
                "dead": shard.dead,
                "restarts": shard.restarts,
                "pending": len(shard.pending),
                "installed_problems": len(shard.installed),
                "worker_health": payload if isinstance(payload, dict)
                else {"status": "unresponsive"},
            }
            workers.append(entry)
            any_dead = any_dead or shard.dead or not alive or payload is None
            any_restarted = any_restarted or shard.restarts > 0
        with self._breakers_lock:
            breakers = {key: b.snapshot() for key, b in self._breakers.items()}
        open_breakers = sum(1 for b in breakers.values() if b["state"] == "open")
        if any_dead or not self._reaper.is_alive():
            status = "unhealthy"
        elif open_breakers or any_restarted:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "sharded": True,
            "workers": workers,
            "reaper_alive": self._reaper.is_alive(),
            "breakers": {
                "total": len(breakers),
                "open": open_breakers,
                "half_open": sum(
                    1 for b in breakers.values() if b["state"] == "half_open"
                ),
                "by_key": breakers,
            },
            "closed": self._closed,
        }

    def pids(self) -> List[Optional[int]]:
        """The live worker process IDs by slot (None for a dead slot)."""
        return [shard.pid for shard in self._shards]

    # -- shutdown -------------------------------------------------------- #
    def close(self, timeout: float = 10.0) -> None:
        """Stop the pool: drain workers, join processes, release shared memory.

        Workers drain their queues (their inner ``SolveService.close``
        semantics), so already-accepted requests resolve before exit; a
        worker that ignores the deadline is terminated.  The parent owns
        every shared-memory segment and unlinks them last — after no worker
        can still be dereferencing the views.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for shard in self._shards:
            shard.stopping = True
            try:
                with shard.send_lock:
                    shard.conn.send_bytes(encode_frame("shutdown", {}))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + timeout
        for shard in self._shards:
            process = shard.process
            if process is None:
                continue
            process.join(max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(2.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(1.0)
        for shard in self._shards:
            try:
                shard.conn.close()
            except Exception:
                pass
        self._reaper.stop()
        self._reaper.join(timeout)
        with self._bundles_lock:
            for bundle in self._problem_bundles.values():
                bundle.close()
            self._problem_bundles.clear()
        if self._model_bundle is not None:
            self._model_bundle.close()
            self._model_bundle = None

    def __enter__(self) -> "ShardedSolveService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
