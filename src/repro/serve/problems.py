"""Problem resolution for serve requests: spec dict → assembled ``Problem``.

HTTP clients cannot ship an assembled sparse operator, so a request names a
problem *spec* — the registered family plus the deterministic generation
knobs — and the service assembles (and caches) the problem server-side::

    {"family": "poisson", "target_n": 640, "element_size": 0.07,
     "seed": 0, "kwargs": {}}

Resolution is deterministic: the seed feeds one RNG that drives both mesh
generation and the family factory, so the same spec always yields the same
mesh, operator and right-hand side — and therefore the same
:meth:`~repro.fem.problem.Problem.fingerprint`, which is what lets spec-based
requests share cached sessions.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from ..fem.problem import Problem
from ..gnn.checkpoint import config_hash
from ..mesh.shapes import mesh_for_target_size
from ..mesh.tet import box_mesh_for_target_size
from ..problems import make_problem, problem_spec

__all__ = ["ProblemCache", "build_problem_from_spec", "DEFAULT_PROBLEM_SPEC"]

DEFAULT_PROBLEM_SPEC: Dict[str, object] = {
    "family": "poisson",
    "target_n": 400,
    "element_size": 0.07,
    "seed": 0,
}

_SPEC_KEYS = frozenset({"family", "target_n", "element_size", "seed", "kwargs"})


def _normalise_spec(spec: Optional[Dict]) -> Dict[str, object]:
    spec = dict(spec or {})
    unknown = sorted(set(spec) - _SPEC_KEYS)
    if unknown:
        raise ValueError(
            f"unknown problem-spec fields: {unknown} (known: {sorted(_SPEC_KEYS)})"
        )
    merged = dict(DEFAULT_PROBLEM_SPEC)
    merged.update({k: v for k, v in spec.items() if v is not None})
    merged["kwargs"] = dict(merged.get("kwargs") or {})
    merged["target_n"] = int(merged["target_n"])
    merged["element_size"] = float(merged["element_size"])
    merged["seed"] = int(merged["seed"])
    if merged["target_n"] < 4:
        raise ValueError("target_n must be >= 4")
    return merged


def build_problem_from_spec(spec: Optional[Dict]) -> Problem:
    """Assemble the problem a spec describes (deterministic in the seed).

    Families registered with ``dim=3`` (``poisson3d``, ``heat3d``, …) resolve
    onto a deterministic structured tetrahedral box mesh sized by
    ``target_n`` — no RNG touches 3D mesh generation, so every worker
    reproduces the same mesh (and fingerprint) bit-for-bit.
    """
    spec = _normalise_spec(spec)
    rng = np.random.default_rng(spec["seed"])
    family = str(spec["family"])
    if int(problem_spec(family).default_kwargs.get("dim", 2)) == 3:
        mesh = box_mesh_for_target_size(max(int(spec["target_n"]), 8))
    else:
        mesh = mesh_for_target_size(
            spec["target_n"], element_size=spec["element_size"], rng=rng
        )
    return make_problem(family, mesh=mesh, rng=rng, **spec["kwargs"])


class ProblemCache:
    """Small LRU of assembled problems keyed by the spec's canonical hash.

    Mesh generation + assembly is cheap next to solver setup but far from
    free; a serving process typically sees a handful of distinct problem
    specs, so a small cache removes re-assembly from the request path
    entirely.  Thread-safe; assembly runs under the lock (it is rare and
    bounded, and a double build would waste more than it saves).
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._problems: "OrderedDict[str, Problem]" = OrderedDict()
        self._lock = threading.Lock()

    def resolve(self, spec: Optional[Dict]) -> Problem:
        spec = _normalise_spec(spec)
        key = config_hash(spec)
        with self._lock:
            problem = self._problems.get(key)
            if problem is not None:
                self._problems.move_to_end(key)
                return problem
            problem = build_problem_from_spec(spec)
            self._problems[key] = problem
            while len(self._problems) > self.capacity:
                self._problems.popitem(last=False)
            return problem

    def __len__(self) -> int:
        with self._lock:
            return len(self._problems)
