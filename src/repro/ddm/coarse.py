"""Coarse-space correction (second level of the ASM preconditioner).

The paper uses a Nicolaides coarse space: the coarse basis contains one vector
per sub-domain, equal to (a partition-of-unity weighting of) the constant
function restricted to that sub-domain.  The coarse operator
``A_0 = R_0 A R_0ᵀ`` is a dense K×K (tiny) matrix factorised once with LU and
reused at every preconditioner application (paper Eq. 13).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["NicolaidesCoarseSpace"]


class NicolaidesCoarseSpace:
    """Nicolaides coarse space built from an overlapping decomposition.

    Parameters
    ----------
    subdomain_nodes:
        The K overlapping node sets.
    num_global:
        Global number of degrees of freedom N.
    use_partition_of_unity:
        If True (default), each coarse basis vector is the constant 1 on the
        sub-domain weighted by the inverse node multiplicity, so the basis
        vectors sum to the global constant vector.  If False, plain indicator
        vectors are used.
    """

    def __init__(
        self,
        subdomain_nodes: Sequence[np.ndarray],
        num_global: int,
        use_partition_of_unity: bool = True,
    ) -> None:
        self.num_global = int(num_global)
        self.num_subdomains = len(subdomain_nodes)
        multiplicity = np.zeros(num_global)
        for nodes in subdomain_nodes:
            multiplicity[np.asarray(nodes, dtype=np.int64)] += 1.0
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        vals: List[np.ndarray] = []
        for i, nodes in enumerate(subdomain_nodes):
            nodes = np.asarray(nodes, dtype=np.int64)
            rows.append(np.full(len(nodes), i, dtype=np.int64))
            cols.append(nodes)
            if use_partition_of_unity:
                vals.append(1.0 / multiplicity[nodes])
            else:
                vals.append(np.ones(len(nodes)))
        self.r0 = sp.csr_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(self.num_subdomains, num_global),
        )
        self._inverse: Optional[np.ndarray] = None
        self._coarse_matrix: Optional[np.ndarray] = None

    def factorize(self, matrix: sp.spmatrix) -> "NicolaidesCoarseSpace":
        """Assemble and invert the coarse operator ``A_0 = R_0 A R_0ᵀ``.

        The coarse matrix is a tiny dense K×K SPD system, so its inverse is
        precomputed outright: each application is then one K×K GEMV (~1µs)
        instead of a SuperLU triangular solve whose per-call overhead
        dominates at this size — which matters on the preconditioner hot
        path, where the lockstep multi-RHS solver applies the coarse
        correction once per right-hand side per iteration.
        """
        coarse = (self.r0 @ matrix @ self.r0.T).tocsc()
        self._coarse_matrix = coarse.toarray()
        self._inverse = np.linalg.inv(self._coarse_matrix)
        return self

    @property
    def coarse_matrix(self) -> np.ndarray:
        if self._coarse_matrix is None:
            raise RuntimeError("coarse space not factorised; call factorize(A) first")
        return self._coarse_matrix

    def apply(self, residual: np.ndarray) -> np.ndarray:
        """Coarse correction ``R_0ᵀ (R_0 A R_0ᵀ)⁻¹ R_0 r`` (paper Eq. 13)."""
        if self._inverse is None:
            raise RuntimeError("coarse space not factorised; call factorize(A) first")
        coarse_residual = self.r0 @ residual
        coarse_solution = self._inverse @ coarse_residual
        return self.r0.T @ coarse_solution

    def apply_columns(self, residuals: np.ndarray) -> np.ndarray:
        """Coarse correction of every column of an ``(n, k)`` residual block.

        Column ``i`` is bit-identical to ``apply(residuals[:, i])``: the CSR
        SpMMs accumulate each column in SpMV order, and the tiny K×K
        inverse is applied one column at a time with exactly the GEMV call
        of :meth:`apply` (a K×k GEMM may block differently, which would
        break per-column bit-identity).
        """
        if self._inverse is None:
            raise RuntimeError("coarse space not factorised; call factorize(A) first")
        coarse_residuals = self.r0 @ np.asarray(residuals, dtype=np.float64)
        coarse_solutions = np.empty_like(coarse_residuals)
        for c in range(coarse_residuals.shape[1]):
            coarse_solutions[:, c] = self._inverse @ np.ascontiguousarray(coarse_residuals[:, c])
        return self.r0.T @ coarse_solutions
