"""Domain-decomposition substrate: restriction operators, coarse space, ASM.

Public surface:

* :class:`~repro.ddm.asm.AdditiveSchwarzPreconditioner` — one/two-level ASM
  (the DDM-LU baseline of the paper).
* :class:`~repro.ddm.asm.Preconditioner`,
  :class:`~repro.ddm.asm.IdentityPreconditioner` — preconditioner interface.
* :class:`~repro.ddm.coarse.NicolaidesCoarseSpace` — coarse (second) level.
* :class:`~repro.ddm.local_solvers.LULocalSolver`,
  :class:`~repro.ddm.local_solvers.JacobiLocalSolver`,
  :class:`~repro.ddm.local_solvers.LocalSolver` — local sub-domain solvers.
* :func:`~repro.ddm.restriction.restriction_matrix`,
  :func:`~repro.ddm.restriction.build_restrictions`,
  :func:`~repro.ddm.restriction.partition_of_unity` — R_i operators.
* :class:`~repro.ddm.restriction.StackedRestriction` — all R_i stacked into
  one block operator (the loop-free preconditioner hot path).
"""

from .asm import AdditiveSchwarzPreconditioner, IdentityPreconditioner, Preconditioner
from .coarse import NicolaidesCoarseSpace
from .local_solvers import JacobiLocalSolver, LocalSolver, LULocalSolver, extract_local_matrices
from .restriction import StackedRestriction, build_restrictions, partition_of_unity, restriction_matrix

__all__ = [
    "AdditiveSchwarzPreconditioner",
    "IdentityPreconditioner",
    "Preconditioner",
    "NicolaidesCoarseSpace",
    "LocalSolver",
    "LULocalSolver",
    "JacobiLocalSolver",
    "extract_local_matrices",
    "restriction_matrix",
    "build_restrictions",
    "partition_of_unity",
    "StackedRestriction",
]
