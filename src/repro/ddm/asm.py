"""Additive Schwarz preconditioners (one- and two-level), paper Eqs. (6)–(7).

The :class:`AdditiveSchwarzPreconditioner` is both:

* the **DDM-LU** baseline of the paper's experiments (local problems solved
  exactly by LU), and
* the template mirrored by the **DDM-GNN** preconditioner in
  :mod:`repro.core.ddm_gnn`, which swaps the local LU solves for batched DSS
  inference while keeping the coarse solve and the gluing identical.

All preconditioners expose ``apply(r) -> z`` and an ``aslinearoperator()``
helper so they can be plugged into any Krylov routine.
"""

from __future__ import annotations

import time
from typing import List, Literal, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..obs import trace as obs_trace
from ..partition.overlap import OverlappingDecomposition
from .coarse import NicolaidesCoarseSpace
from .local_solvers import LocalSolver, LULocalSolver, extract_local_matrices
from .restriction import StackedRestriction, build_restrictions, partition_of_unity

__all__ = ["AdditiveSchwarzPreconditioner", "Preconditioner", "IdentityPreconditioner"]


class Preconditioner:
    """Minimal preconditioner interface: ``apply`` a residual, get a correction."""

    def apply(self, residual: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def apply_columns(self, residuals: np.ndarray) -> np.ndarray:
        """Apply to every column of an ``(n, k)`` residual block.

        Contract (relied on by :func:`repro.krylov.block.lockstep_pcg`):
        column ``i`` of the result is **bit-identical** to
        ``apply(residuals[:, i])``.  The base implementation is a per-column
        loop, which satisfies the contract trivially; subclasses may override
        it with genuinely batched kernels as long as they preserve it.  The
        result is Fortran-ordered so each column stays a contiguous vector.
        """
        residuals = np.asarray(residuals, dtype=np.float64)
        out = np.empty(residuals.shape, order="F")
        for i in range(residuals.shape[1]):
            out[:, i] = self.apply(np.ascontiguousarray(residuals[:, i]))
        return out

    def aslinearoperator(self) -> spla.LinearOperator:
        """Wrap as a SciPy ``LinearOperator`` (for use with ``scipy`` Krylov solvers)."""
        n = self.shape[0]
        return spla.LinearOperator((n, n), matvec=self.apply)

    @property
    def shape(self) -> tuple:  # pragma: no cover - interface
        raise NotImplementedError


class IdentityPreconditioner(Preconditioner):
    """No preconditioning (plain CG baseline)."""

    def __init__(self, n: int) -> None:
        self._n = int(n)

    def apply(self, residual: np.ndarray) -> np.ndarray:
        return np.asarray(residual, dtype=np.float64)

    @property
    def shape(self) -> tuple:
        return (self._n, self._n)


class AdditiveSchwarzPreconditioner(Preconditioner):
    """Multi-level Additive Schwarz preconditioner.

    Parameters
    ----------
    matrix:
        The global system matrix A (SPD).
    decomposition:
        Overlapping decomposition of the mesh/graph.
    local_solver:
        How local problems are solved; defaults to exact LU (DDM-LU).
    levels:
        1 → one-level ASM (Eq. 6); 2 → two-level with Nicolaides coarse space
        (Eq. 7).  The paper always uses two levels.
    variant:
        "asm" (symmetric, Eq. 6/7) or "ras" (Restricted Additive Schwarz,
        partition-of-unity weighted extension — an extension for ablations;
        note RAS is non-symmetric so it should not be used with plain CG).
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        decomposition: OverlappingDecomposition,
        local_solver: Optional[LocalSolver] = None,
        levels: Literal[1, 2] = 2,
        variant: Literal["asm", "ras"] = "asm",
    ) -> None:
        if levels not in (1, 2):
            raise ValueError("levels must be 1 or 2")
        if variant not in ("asm", "ras"):
            raise ValueError("variant must be 'asm' or 'ras'")
        self.matrix = matrix.tocsr()
        self.decomposition = decomposition
        self.levels = int(levels)
        self.variant = variant
        n = self.matrix.shape[0]
        if n != decomposition.mesh.num_nodes:
            raise ValueError("matrix size does not match the mesh of the decomposition")

        subdomains = decomposition.subdomain_nodes
        self.restrictions = build_restrictions(subdomains, n)
        self.stacked_restriction = StackedRestriction(subdomains, n)
        self.local_matrices = extract_local_matrices(self.matrix, subdomains)
        self.local_solver = (local_solver or LULocalSolver()).setup(self.local_matrices)
        self._pou = partition_of_unity(subdomains, n) if variant == "ras" else None
        # stacked partition-of-unity weights (one row per stacked local dof)
        self._pou_weights = (
            np.concatenate([d.diagonal() for d in self._pou]) if self._pou is not None else None
        )
        # per-application scratch buffers (reused; `apply` allocates nothing
        # beyond the glued result and the coarse correction)
        total = self.stacked_restriction.total_rows
        self._stacked_residual = np.empty(total)
        self._stacked_solution = np.empty(total)

        self.coarse_space: Optional[NicolaidesCoarseSpace] = None
        if self.levels == 2:
            self.coarse_space = NicolaidesCoarseSpace(subdomains, n).factorize(self.matrix)

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        return self.matrix.shape

    @property
    def num_subdomains(self) -> int:
        return self.decomposition.num_subdomains

    # ------------------------------------------------------------------ #
    def local_residuals(self, residual: np.ndarray) -> List[np.ndarray]:
        """Restrict a global residual to every sub-domain (``R_i r``)."""
        return self.stacked_restriction.split(self.stacked_restriction.extract(residual))

    def apply(self, residual: np.ndarray) -> np.ndarray:
        """Apply the preconditioner: ``z = M⁻¹ r`` (Eq. 6 or 7).

        The hot path is loop-free: one stacked gather extracts every local
        residual, the local solver fills one stacked solution buffer, and one
        SpMV (``Rᵀ w``) glues all sub-domain corrections — numerically
        bit-identical to the classical per-sub-domain loop.
        """
        # Traced as a buffered leaf (one tuple append on the parent span, no
        # context-manager dispatch): this runs once per Krylov iteration, so
        # it is the instrumentation point the ≤2% overhead gate leans on.
        parent = obs_trace.current_span()
        start = time.perf_counter() if parent is not None else 0.0
        residual = np.asarray(residual, dtype=np.float64)
        stacked = self.stacked_restriction.extract(residual, out=self._stacked_residual)
        solutions = self.local_solver.solve_stacked(
            stacked, self.stacked_restriction.offsets, out=self._stacked_solution
        )
        if self._pou_weights is not None:
            np.multiply(solutions, self._pou_weights, out=solutions)
        correction = self.stacked_restriction.glue(solutions)

        if self.coarse_space is not None:
            correction += self.coarse_space.apply(residual)
        if parent is not None:
            parent.record_leaf("precond.apply", start, time.perf_counter())
        return correction

    def apply_columns(self, residuals: np.ndarray) -> np.ndarray:
        """Batched multi-column application (one gather/solve/glue per block).

        Column ``i`` is bit-identical to ``apply(residuals[:, i])``: the
        stacked gather copies values exactly, the local solver's multi-RHS
        solve processes each column through the same factor substitutions,
        and the gluing SpMM accumulates each column in the same per-node
        order as the single-column SpMV.  Used by the lockstep multi-RHS CG
        (:func:`repro.krylov.block.lockstep_pcg`), where it amortises the
        fixed per-call cost of the gather/solve/glue pipeline over the batch.
        """
        residuals = np.asarray(residuals, dtype=np.float64)
        if residuals.ndim == 1:
            return np.asfortranarray(self.apply(residuals)[:, None])
        parent = obs_trace.current_span()
        start = time.perf_counter() if parent is not None else 0.0
        stacked = self.stacked_restriction.extract_columns(residuals)
        solutions = self.local_solver.solve_stacked_columns(
            stacked, self.stacked_restriction.offsets
        )
        if self._pou_weights is not None:
            np.multiply(solutions, self._pou_weights[:, None], out=solutions)
        correction = np.asfortranarray(self.stacked_restriction.glue(solutions))
        if self.coarse_space is not None:
            correction += self.coarse_space.apply_columns(residuals)
        if parent is not None:
            parent.record_leaf("precond.apply_columns", start, time.perf_counter(),
                               {"k": int(residuals.shape[1])})
        return correction

    # ------------------------------------------------------------------ #
    def as_matrix(self) -> np.ndarray:
        """Assemble the dense preconditioner matrix (tests / small problems only).

        Directly evaluates Eq. (6)/(7):
        ``M⁻¹ = Σ_i R_iᵀ (R_i A R_iᵀ)⁻¹ R_i  [+ R_0ᵀ (R_0 A R_0ᵀ)⁻¹ R_0]``.
        """
        n = self.matrix.shape[0]
        if n > 2000:
            raise ValueError("as_matrix() is meant for small validation problems only")
        result = np.zeros((n, n))
        for r_i, a_i in zip(self.restrictions, self.local_matrices):
            inv = np.linalg.inv(a_i.toarray())
            result += r_i.T.toarray() @ inv @ r_i.toarray()
        if self.coarse_space is not None:
            r0 = self.coarse_space.r0.toarray()
            inv0 = np.linalg.inv(self.coarse_space.coarse_matrix)
            result += r0.T @ inv0 @ r0
        return result

    def fixed_point_iteration(
        self,
        rhs: np.ndarray,
        initial_guess: Optional[np.ndarray] = None,
        iterations: int = 10,
        relaxation: Optional[float] = None,
    ) -> np.ndarray:
        """Run the stationary Schwarz iteration ``u ← u + θ M⁻¹ (b − A u)`` (Eq. 8).

        Provided for completeness/tests; the paper always uses ASM as a
        preconditioner inside PCG rather than as a stationary solver.  The
        undamped additive iteration (θ=1) can diverge when sub-domains overlap
        (corrections are added once per covering sub-domain), so the default
        relaxation is one over the maximum node multiplicity of the
        decomposition, which restores convergence.
        """
        if relaxation is None:
            relaxation = 1.0 / float(self.decomposition.multiplicity().max())
        u = np.zeros(self.matrix.shape[0]) if initial_guess is None else np.asarray(initial_guess, dtype=np.float64).copy()
        for _ in range(iterations):
            u = u + relaxation * self.apply(rhs - self.matrix @ u)
        return u
