"""Local sub-domain solvers for Schwarz preconditioners.

The classical ASM/DDM-LU preconditioner solves every local problem
``(R_i A R_iᵀ) v_i = R_i r`` exactly with a sparse LU factorisation computed
once (paper Sec. II-A and the DDM-LU baseline of Sec. IV).  The abstract
interface also covers approximate local solvers, of which the GNN-based DSS
solver (in :mod:`repro.core.ddm_gnn`) is the paper's contribution.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["LocalSolver", "LULocalSolver", "JacobiLocalSolver", "extract_local_matrices"]


def extract_local_matrices(matrix: sp.spmatrix, subdomain_nodes: Sequence[np.ndarray]) -> List[sp.csr_matrix]:
    """Extract the local Dirichlet matrices ``A_i = R_i A R_iᵀ`` for every sub-domain."""
    csr = matrix.tocsr()
    locals_: List[sp.csr_matrix] = []
    for nodes in subdomain_nodes:
        idx = np.asarray(nodes, dtype=np.int64)
        locals_.append(csr[idx][:, idx].tocsr())
    return locals_


class LocalSolver(ABC):
    """Solves all local sub-domain systems for a given decomposition."""

    @abstractmethod
    def solve_all(self, local_residuals: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Return the local corrections ``v_i ≈ A_i⁻¹ r_i`` for every sub-domain."""

    @abstractmethod
    def setup(self, local_matrices: Sequence[sp.spmatrix]) -> "LocalSolver":
        """Prepare (e.g. factorise) the local operators; returns self."""

    def solve_stacked(
        self,
        stacked_residuals: np.ndarray,
        offsets: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Solve all local systems given one stacked residual vector.

        Segment ``i`` of ``stacked_residuals`` (delimited by ``offsets``) is the
        residual of sub-domain ``i``; the solutions are written back in the same
        layout, into ``out`` when given (the preconditioner hot path reuses one
        buffer across iterations).  The base implementation delegates to
        :meth:`solve_all`; solvers can override it to avoid the intermediate
        list entirely.
        """
        stacked_residuals = np.asarray(stacked_residuals, dtype=np.float64)
        if out is None:
            out = np.empty_like(stacked_residuals)
        segments = [
            stacked_residuals[offsets[i]:offsets[i + 1]] for i in range(len(offsets) - 1)
        ]
        for i, solution in enumerate(self.solve_all(segments)):
            out[offsets[i]:offsets[i + 1]] = solution
        return out


class LULocalSolver(LocalSolver):
    """Exact local solves via sparse LU factorisation (the DDM-LU baseline)."""

    def __init__(self) -> None:
        self._factors: List[spla.SuperLU] = []

    def setup(self, local_matrices: Sequence[sp.spmatrix]) -> "LULocalSolver":
        self._factors = [spla.splu(m.tocsc()) for m in local_matrices]
        return self

    def solve_all(self, local_residuals: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(local_residuals) != len(self._factors):
            raise ValueError("number of residuals does not match the number of factorised sub-domains")
        return [factor.solve(np.asarray(r, dtype=np.float64)) for factor, r in zip(self._factors, local_residuals)]

    def solve_stacked(
        self,
        stacked_residuals: np.ndarray,
        offsets: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if len(offsets) - 1 != len(self._factors):
            raise ValueError("number of segments does not match the number of factorised sub-domains")
        stacked_residuals = np.asarray(stacked_residuals, dtype=np.float64)
        if out is None:
            out = np.empty_like(stacked_residuals)
        for i, factor in enumerate(self._factors):
            lo, hi = offsets[i], offsets[i + 1]
            out[lo:hi] = factor.solve(stacked_residuals[lo:hi])
        return out


class JacobiLocalSolver(LocalSolver):
    """Cheap approximate local solves with a few damped-Jacobi sweeps.

    Not used by the paper, but a useful ablation baseline: it shows how PCG
    behaves when the local solver is *much* weaker than either LU or the DSS
    model, and it exercises the "approximate local solver" code path without
    requiring a trained network.
    """

    def __init__(self, sweeps: int = 10, damping: float = 0.6) -> None:
        if sweeps < 1:
            raise ValueError("sweeps must be >= 1")
        self.sweeps = int(sweeps)
        self.damping = float(damping)
        self._matrices: List[sp.csr_matrix] = []
        self._inv_diagonals: List[np.ndarray] = []

    def setup(self, local_matrices: Sequence[sp.spmatrix]) -> "JacobiLocalSolver":
        self._matrices = [m.tocsr() for m in local_matrices]
        self._inv_diagonals = []
        for m in self._matrices:
            diag = m.diagonal()
            if np.any(diag == 0.0):
                raise ValueError("zero diagonal entry; Jacobi local solver not applicable")
            self._inv_diagonals.append(1.0 / diag)
        return self

    def solve_all(self, local_residuals: Sequence[np.ndarray]) -> List[np.ndarray]:
        solutions: List[np.ndarray] = []
        for matrix, inv_diag, rhs in zip(self._matrices, self._inv_diagonals, local_residuals):
            x = np.zeros_like(rhs, dtype=np.float64)
            for _ in range(self.sweeps):
                x = x + self.damping * inv_diag * (rhs - matrix @ x)
            solutions.append(x)
        return solutions
