"""Local sub-domain solvers for Schwarz preconditioners.

The classical ASM/DDM-LU preconditioner solves every local problem
``(R_i A R_iᵀ) v_i = R_i r`` exactly with a sparse LU factorisation computed
once (paper Sec. II-A and the DDM-LU baseline of Sec. IV).  The abstract
interface also covers approximate local solvers, of which the GNN-based DSS
solver (in :mod:`repro.core.ddm_gnn`) is the paper's contribution.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["LocalSolver", "LULocalSolver", "JacobiLocalSolver", "extract_local_matrices"]


def extract_local_matrices(matrix: sp.spmatrix, subdomain_nodes: Sequence[np.ndarray]) -> List[sp.csr_matrix]:
    """Extract the local Dirichlet matrices ``A_i = R_i A R_iᵀ`` for every sub-domain."""
    csr = matrix.tocsr()
    locals_: List[sp.csr_matrix] = []
    for nodes in subdomain_nodes:
        idx = np.asarray(nodes, dtype=np.int64)
        locals_.append(csr[idx][:, idx].tocsr())
    return locals_


class LocalSolver(ABC):
    """Solves all local sub-domain systems for a given decomposition."""

    @abstractmethod
    def solve_all(self, local_residuals: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Return the local corrections ``v_i ≈ A_i⁻¹ r_i`` for every sub-domain."""

    @abstractmethod
    def setup(self, local_matrices: Sequence[sp.spmatrix]) -> "LocalSolver":
        """Prepare (e.g. factorise) the local operators; returns self."""

    def solve_stacked(
        self,
        stacked_residuals: np.ndarray,
        offsets: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Solve all local systems given one stacked residual vector.

        Segment ``i`` of ``stacked_residuals`` (delimited by ``offsets``) is the
        residual of sub-domain ``i``; the solutions are written back in the same
        layout, into ``out`` when given (the preconditioner hot path reuses one
        buffer across iterations).  The base implementation delegates to
        :meth:`solve_all`; solvers can override it to avoid the intermediate
        list entirely.
        """
        stacked_residuals = np.asarray(stacked_residuals, dtype=np.float64)
        if out is None:
            out = np.empty_like(stacked_residuals)
        segments = [
            stacked_residuals[offsets[i]:offsets[i + 1]] for i in range(len(offsets) - 1)
        ]
        for i, solution in enumerate(self.solve_all(segments)):
            out[offsets[i]:offsets[i + 1]] = solution
        return out

    def solve_stacked_columns(
        self,
        stacked_columns: np.ndarray,
        offsets: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Solve all local systems for every column of a stacked block.

        ``stacked_columns`` is ``(total_rows, k)`` — one stacked residual
        vector per column.  Column ``i`` of the result is **bit-identical**
        to ``solve_stacked(stacked_columns[:, i], offsets)`` (the contract
        :meth:`AdditiveSchwarzPreconditioner.apply_columns` relies on).  The
        base implementation loops columns; solvers with factor objects that
        handle multiple right-hand sides natively override it.
        """
        stacked_columns = np.asarray(stacked_columns, dtype=np.float64)
        if out is None:
            out = np.empty_like(stacked_columns)
        for c in range(stacked_columns.shape[1]):
            out[:, c] = self.solve_stacked(
                np.ascontiguousarray(stacked_columns[:, c]), offsets
            )
        return out


class LULocalSolver(LocalSolver):
    """Exact local solves via sparse LU factorisation (the DDM-LU baseline).

    All K local matrices are factorised as **one block-diagonal SuperLU
    factorisation** ``block_diag(A_1, …, A_K)``: the sub-domains are
    uncoupled, so the factor has no cross-block fill-in and one
    ``factor.solve`` call performs all K substitutions — the per-sub-domain
    Python loop (and its K-fold call overhead) disappears from the
    preconditioner hot path.  ``solve_all``, ``solve_stacked`` and
    ``solve_stacked_columns`` all route through the same factor object, so
    the three access paths stay bit-identical to each other.
    """

    def __init__(self) -> None:
        self._factor: Optional[spla.SuperLU] = None
        self._sizes: np.ndarray = np.zeros(0, dtype=np.int64)
        self._offsets: np.ndarray = np.zeros(1, dtype=np.int64)

    @property
    def num_blocks(self) -> int:
        return int(len(self._sizes))

    def setup(self, local_matrices: Sequence[sp.spmatrix]) -> "LULocalSolver":
        if not len(local_matrices):
            raise ValueError("need at least one local matrix")
        self._sizes = np.array([m.shape[0] for m in local_matrices], dtype=np.int64)
        self._offsets = np.concatenate([[0], np.cumsum(self._sizes)])
        if len(local_matrices) == 1:
            block = local_matrices[0].tocsc()
        else:
            block = sp.block_diag(local_matrices, format="csc")
        self._factor = spla.splu(block)
        return self

    def _require_factor(self) -> spla.SuperLU:
        if self._factor is None:
            raise RuntimeError("local solver not set up; call setup(local_matrices) first")
        return self._factor

    def solve_all(self, local_residuals: Sequence[np.ndarray]) -> List[np.ndarray]:
        factor = self._require_factor()
        if len(local_residuals) != self.num_blocks:
            raise ValueError("number of residuals does not match the number of factorised sub-domains")
        for i, residual in enumerate(local_residuals):
            if len(residual) != self._sizes[i]:
                raise ValueError(
                    f"residual {i} has length {len(residual)}, expected {self._sizes[i]}"
                )
        stacked = np.concatenate([np.asarray(r, dtype=np.float64) for r in local_residuals])
        solution = factor.solve(stacked)
        return [
            solution[self._offsets[i]:self._offsets[i + 1]] for i in range(self.num_blocks)
        ]

    def solve_stacked(
        self,
        stacked_residuals: np.ndarray,
        offsets: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        factor = self._require_factor()
        if len(offsets) - 1 != self.num_blocks:
            raise ValueError("number of segments does not match the number of factorised sub-domains")
        stacked_residuals = np.ascontiguousarray(stacked_residuals, dtype=np.float64)
        solution = factor.solve(stacked_residuals)
        if out is None:
            return solution
        out[...] = solution
        return out

    def solve_stacked_columns(
        self,
        stacked_columns: np.ndarray,
        offsets: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One block-diagonal solve per column.

        The substitutions deliberately run **one column at a time** even
        though SuperLU accepts multiple right-hand sides: its multi-RHS path
        accumulates supernode updates in a different order than its
        single-RHS path (observed ~1-ulp drift), which would break the
        bit-identity contract of
        :meth:`AdditiveSchwarzPreconditioner.apply_columns`.
        """
        factor = self._require_factor()
        if len(offsets) - 1 != self.num_blocks:
            raise ValueError("number of segments does not match the number of factorised sub-domains")
        stacked_columns = np.asarray(stacked_columns, dtype=np.float64)
        if out is None:
            out = np.empty_like(stacked_columns)
        for c in range(stacked_columns.shape[1]):
            out[:, c] = factor.solve(np.ascontiguousarray(stacked_columns[:, c]))
        return out


class JacobiLocalSolver(LocalSolver):
    """Cheap approximate local solves with a few damped-Jacobi sweeps.

    Not used by the paper, but a useful inexact-smoother baseline: it shows
    how PCG behaves when the local solver is *much* weaker than either LU or
    the DSS model, and it exercises the "approximate local solver" code path
    without requiring a trained network.

    Like :class:`LULocalSolver`, the K local matrices are assembled into one
    block-diagonal operator at setup, so a sweep over *all* sub-domains is a
    single SpMV (or, for a multi-column batch, a single SpMM) — CSR row
    accumulation within a block is bit-identical to the per-sub-domain loop,
    and every sweep is otherwise elementwise, which makes the whole solver
    exactly batchable: column ``i`` of :meth:`solve_stacked_columns` is
    bit-identical to a single-column :meth:`solve_stacked`.
    """

    def __init__(self, sweeps: int = 10, damping: float = 0.6) -> None:
        if sweeps < 1:
            raise ValueError("sweeps must be >= 1")
        self.sweeps = int(sweeps)
        self.damping = float(damping)
        self._block: Optional[sp.csr_matrix] = None
        self._inv_diagonal: np.ndarray = np.zeros(0)
        self._sizes: np.ndarray = np.zeros(0, dtype=np.int64)
        self._offsets: np.ndarray = np.zeros(1, dtype=np.int64)

    @property
    def num_blocks(self) -> int:
        return int(len(self._sizes))

    def setup(self, local_matrices: Sequence[sp.spmatrix]) -> "JacobiLocalSolver":
        if not len(local_matrices):
            raise ValueError("need at least one local matrix")
        self._sizes = np.array([m.shape[0] for m in local_matrices], dtype=np.int64)
        self._offsets = np.concatenate([[0], np.cumsum(self._sizes)])
        if len(local_matrices) == 1:
            self._block = local_matrices[0].tocsr()
        else:
            self._block = sp.block_diag(local_matrices, format="csr")
        diag = self._block.diagonal()
        if np.any(diag == 0.0):
            raise ValueError("zero diagonal entry; Jacobi local solver not applicable")
        self._inv_diagonal = 1.0 / diag
        return self

    def solve_all(self, local_residuals: Sequence[np.ndarray]) -> List[np.ndarray]:
        if self._block is None:
            raise RuntimeError("local solver not set up; call setup(local_matrices) first")
        if len(local_residuals) != self.num_blocks:
            raise ValueError("number of residuals does not match the number of sub-domains")
        for i, residual in enumerate(local_residuals):
            if len(residual) != self._sizes[i]:
                raise ValueError(
                    f"residual {i} has length {len(residual)}, expected {self._sizes[i]}"
                )
        stacked = np.concatenate([np.asarray(r, dtype=np.float64) for r in local_residuals])
        solution = self.solve_stacked(stacked, self._offsets)
        return [
            solution[self._offsets[i]:self._offsets[i + 1]] for i in range(self.num_blocks)
        ]

    def solve_stacked(
        self,
        stacked_residuals: np.ndarray,
        offsets: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if self._block is None:
            raise RuntimeError("local solver not set up; call setup(local_matrices) first")
        if len(offsets) - 1 != self.num_blocks:
            raise ValueError("number of segments does not match the number of sub-domains")
        rhs = np.ascontiguousarray(stacked_residuals, dtype=np.float64)
        x = np.zeros_like(rhs)
        for _ in range(self.sweeps):
            x = x + self.damping * self._inv_diagonal * (rhs - self._block @ x)
        if out is None:
            return x
        out[...] = x
        return out

    def solve_stacked_columns(
        self,
        stacked_columns: np.ndarray,
        offsets: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """All sweeps for every column at once: ``sweeps`` SpMMs total.

        Bit-identical per column to :meth:`solve_stacked` — the SpMM
        accumulates each column in SpMV order and the damping/diagonal
        scalings are elementwise.
        """
        if self._block is None:
            raise RuntimeError("local solver not set up; call setup(local_matrices) first")
        if len(offsets) - 1 != self.num_blocks:
            raise ValueError("number of segments does not match the number of sub-domains")
        rhs = np.asarray(stacked_columns, dtype=np.float64)
        x = np.zeros_like(rhs)
        inv_diag = self._inv_diagonal[:, None]
        for _ in range(self.sweeps):
            x = x + self.damping * inv_diag * (rhs - self._block @ x)
        if out is None:
            return x
        out[...] = x
        return out
