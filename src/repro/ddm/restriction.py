"""Restriction / extension operators for domain decomposition.

For an overlapping decomposition into K sub-domains, the boolean restriction
matrix ``R_i`` (paper Sec. II-A) selects the rows of a global vector that
belong to sub-domain ``i``; its transpose extends a local vector by zero.
A partition-of-unity variant (used by Restricted Additive Schwarz) weights the
extension by the inverse multiplicity of each node.

:class:`StackedRestriction` assembles all K operators into one block matrix
``R = [R_1; …; R_K]`` so the whole restriction step of a Schwarz application
is a single gather and the gluing step a single SpMV — this replaces the
per-sub-domain Python loops on the preconditioner hot path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = [
    "restriction_matrix",
    "build_restrictions",
    "partition_of_unity",
    "StackedRestriction",
]


def restriction_matrix(nodes: np.ndarray, num_global: int) -> sp.csr_matrix:
    """Boolean restriction matrix ``R`` of shape (len(nodes), num_global).

    ``R @ u`` extracts ``u[nodes]`` and ``R.T @ v`` scatters ``v`` back into a
    zero global vector, exactly the operators of Eq. (6) in the paper.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    k = len(nodes)
    if k and (nodes.min() < 0 or nodes.max() >= num_global):
        raise ValueError("node index out of range for restriction matrix")
    data = np.ones(k)
    rows = np.arange(k)
    return sp.csr_matrix((data, (rows, nodes)), shape=(k, num_global))


def build_restrictions(subdomain_nodes: Sequence[np.ndarray], num_global: int) -> List[sp.csr_matrix]:
    """Build one restriction matrix per sub-domain."""
    return [restriction_matrix(nodes, num_global) for nodes in subdomain_nodes]


class StackedRestriction:
    """All K restriction operators stacked into one CSR block matrix.

    ``R = [R_1; …; R_K]`` has shape ``(Σ_i k_i, n)``.  Because every row holds
    a single unit entry:

    * ``extract`` (``R @ v``, all local residuals at once) degenerates to a
      pure gather, so with an ``out=`` buffer it is allocation-free;
    * ``glue`` (``Rᵀ @ w``, the Σ_i R_iᵀ w_i extension) is one CSR SpMV whose
      per-node accumulation order matches the classical ascending-sub-domain
      loop bit for bit (the transpose is stored with sorted indices).

    ``offsets`` delimit the per-sub-domain segments of a stacked vector:
    segment ``i`` is ``stacked[offsets[i]:offsets[i + 1]]``.
    """

    def __init__(self, subdomain_nodes: Sequence[np.ndarray], num_global: int) -> None:
        nodes = [np.asarray(n, dtype=np.int64) for n in subdomain_nodes]
        if not nodes:
            raise ValueError("cannot stack an empty list of sub-domains")
        self.num_global = int(num_global)
        self.sizes = np.array([len(n) for n in nodes], dtype=np.int64)
        self.offsets = np.concatenate([[0], np.cumsum(self.sizes)])
        self.total_rows = int(self.offsets[-1])
        self.node_indices = np.concatenate(nodes) if self.total_rows else np.zeros(0, dtype=np.int64)
        if self.total_rows and (self.node_indices.min() < 0 or self.node_indices.max() >= num_global):
            raise ValueError("node index out of range for stacked restriction")
        #: sub-domain id of every stacked row (for per-segment scatter/gather)
        self.segment_ids = np.repeat(np.arange(len(nodes)), self.sizes)
        indptr = np.arange(self.total_rows + 1, dtype=np.int64)
        self.matrix = sp.csr_matrix(
            (np.ones(self.total_rows), self.node_indices.copy(), indptr),
            shape=(self.total_rows, self.num_global),
        )
        # Rᵀ in CSR with sorted indices: row = global node, columns = its
        # stacked positions in ascending sub-domain order (the loop order).
        self._transpose = self.matrix.T.tocsr()
        self._transpose.sort_indices()

    @property
    def num_subdomains(self) -> int:
        return int(len(self.sizes))

    @property
    def shape(self) -> tuple:
        return self.matrix.shape

    # ------------------------------------------------------------------ #
    def extract(self, global_vector: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """``R @ v``: every local residual, concatenated into one vector."""
        v = np.asarray(global_vector, dtype=np.float64)
        return np.take(v, self.node_indices, out=out)

    def extract_columns(self, global_columns: np.ndarray) -> np.ndarray:
        """``R @ V`` for an ``(n, k)`` block: a row gather, one array op.

        Column ``i`` of the result equals ``extract(global_columns[:, i])``
        exactly (gathers copy values bit-for-bit).
        """
        v = np.asarray(global_columns, dtype=np.float64)
        return np.take(v, self.node_indices, axis=0)

    def split(self, stacked: np.ndarray) -> List[np.ndarray]:
        """Views of the per-sub-domain segments of a stacked vector."""
        return [
            stacked[self.offsets[i]:self.offsets[i + 1]]
            for i in range(self.num_subdomains)
        ]

    def glue(self, stacked_values: np.ndarray) -> np.ndarray:
        """``Rᵀ @ w``: sum every sub-domain's extended contribution (one SpMV)."""
        return self._transpose @ np.asarray(stacked_values, dtype=np.float64)

    def segment_norms(
        self,
        stacked: np.ndarray,
        out: Optional[np.ndarray] = None,
        squares: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Euclidean norm of every per-sub-domain segment (``‖R_i r‖`` for all i).

        ``out`` (K,) and ``squares`` (total_rows,) are optional scratch
        buffers; the preconditioner hot path passes both so the per-iteration
        norm computation allocates nothing.
        """
        stacked = np.asarray(stacked, dtype=np.float64)
        if squares is None:
            squares = stacked * stacked
        else:
            np.multiply(stacked, stacked, out=squares)
        if out is None:
            return np.sqrt(np.add.reduceat(squares, self.offsets[:-1]))
        np.add.reduceat(squares, self.offsets[:-1], out=out)
        np.sqrt(out, out=out)
        return out


def partition_of_unity(subdomain_nodes: Sequence[np.ndarray], num_global: int) -> List[sp.csr_matrix]:
    """Diagonal partition-of-unity weights ``D_i`` with ``Σ_i R_iᵀ D_i R_i = I``.

    Each node's weight in sub-domain ``i`` is one over the number of
    sub-domains containing it.  Used by the Restricted Additive Schwarz (RAS)
    variant provided as an extension/ablation.
    """
    multiplicity = np.zeros(num_global)
    for nodes in subdomain_nodes:
        multiplicity[np.asarray(nodes, dtype=np.int64)] += 1.0
    weights: List[sp.csr_matrix] = []
    for nodes in subdomain_nodes:
        nodes = np.asarray(nodes, dtype=np.int64)
        w = 1.0 / multiplicity[nodes]
        weights.append(sp.diags(w).tocsr())
    return weights
