"""Restriction / extension operators for domain decomposition.

For an overlapping decomposition into K sub-domains, the boolean restriction
matrix ``R_i`` (paper Sec. II-A) selects the rows of a global vector that
belong to sub-domain ``i``; its transpose extends a local vector by zero.
A partition-of-unity variant (used by Restricted Additive Schwarz) weights the
extension by the inverse multiplicity of each node.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["restriction_matrix", "build_restrictions", "partition_of_unity"]


def restriction_matrix(nodes: np.ndarray, num_global: int) -> sp.csr_matrix:
    """Boolean restriction matrix ``R`` of shape (len(nodes), num_global).

    ``R @ u`` extracts ``u[nodes]`` and ``R.T @ v`` scatters ``v`` back into a
    zero global vector, exactly the operators of Eq. (6) in the paper.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    k = len(nodes)
    if k and (nodes.min() < 0 or nodes.max() >= num_global):
        raise ValueError("node index out of range for restriction matrix")
    data = np.ones(k)
    rows = np.arange(k)
    return sp.csr_matrix((data, (rows, nodes)), shape=(k, num_global))


def build_restrictions(subdomain_nodes: Sequence[np.ndarray], num_global: int) -> List[sp.csr_matrix]:
    """Build one restriction matrix per sub-domain."""
    return [restriction_matrix(nodes, num_global) for nodes in subdomain_nodes]


def partition_of_unity(subdomain_nodes: Sequence[np.ndarray], num_global: int) -> List[sp.csr_matrix]:
    """Diagonal partition-of-unity weights ``D_i`` with ``Σ_i R_iᵀ D_i R_i = I``.

    Each node's weight in sub-domain ``i`` is one over the number of
    sub-domains containing it.  Used by the Restricted Additive Schwarz (RAS)
    variant provided as an extension/ablation.
    """
    multiplicity = np.zeros(num_global)
    for nodes in subdomain_nodes:
        multiplicity[np.asarray(nodes, dtype=np.int64)] += 1.0
    weights: List[sp.csr_matrix] = []
    for nodes in subdomain_nodes:
        nodes = np.asarray(nodes, dtype=np.int64)
        w = 1.0 / multiplicity[nodes]
        weights.append(sp.diags(w).tocsr())
    return weights
