"""Graph/mesh partitioning substrate (METIS substitute).

Public surface:

* :func:`~repro.partition.partitioner.partition_mesh`,
  :func:`~repro.partition.partitioner.partition_mesh_target_size`,
  :func:`~repro.partition.partitioner.partition_graph`,
  :class:`~repro.partition.partitioner.Partition` — k-way partitioning.
* :class:`~repro.partition.overlap.OverlappingDecomposition`,
  :func:`~repro.partition.overlap.expand_overlap` — overlap expansion.
* :func:`~repro.partition.quality.analyse_partition` — diagnostics.
"""

from .overlap import OverlappingDecomposition, expand_overlap, overlapping_subdomains
from .partitioner import Partition, partition_graph, partition_mesh, partition_mesh_target_size
from .quality import PartitionReport, analyse_partition

__all__ = [
    "Partition",
    "partition_graph",
    "partition_mesh",
    "partition_mesh_target_size",
    "OverlappingDecomposition",
    "expand_overlap",
    "overlapping_subdomains",
    "PartitionReport",
    "analyse_partition",
]
