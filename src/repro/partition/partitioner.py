"""Graph partitioning for domain decomposition (METIS substitute).

The paper partitions each mesh into sub-meshes of ~1000 nodes with METIS.
This module implements a k-way node partitioner adequate for Additive Schwarz
methods:

1. **Seeding** — k seeds are chosen far apart (farthest-point BFS sampling).
2. **Greedy graph growing** — partitions grow in breadth-first waves from
   their seeds, always expanding the currently smallest partition, which keeps
   part sizes balanced and parts connected.
3. **Boundary refinement** — a few Kernighan–Lin-style sweeps move boundary
   nodes to a neighbouring partition when this reduces the edge cut without
   unbalancing the parts.

Partition quality only needs to be "good enough" here: ASM convergence depends
mildly on the edge cut, and the DDM operators are built from the node sets,
whatever their shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from ..mesh.mesh import TriangularMesh

__all__ = ["Partition", "partition_graph", "partition_mesh", "partition_mesh_target_size"]


@dataclass
class Partition:
    """Result of a k-way partition of a graph/mesh with ``n`` nodes.

    Attributes
    ----------
    assignment:
        (n,) int array mapping each node to its partition id in [0, k).
    num_parts:
        Number of partitions k.
    """

    assignment: np.ndarray
    num_parts: int

    def __post_init__(self) -> None:
        self.assignment = np.asarray(self.assignment, dtype=np.int64)
        if self.assignment.size and (self.assignment.min() < 0 or self.assignment.max() >= self.num_parts):
            raise ValueError("partition assignment out of range")

    def part_nodes(self, part: int) -> np.ndarray:
        """Node indices belonging to partition ``part`` (no overlap)."""
        return np.flatnonzero(self.assignment == part)

    def sizes(self) -> np.ndarray:
        """Size of every partition."""
        return np.bincount(self.assignment, minlength=self.num_parts)

    def imbalance(self) -> float:
        """max(size) / mean(size) — 1.0 is perfectly balanced."""
        sizes = self.sizes()
        return float(sizes.max() / max(sizes.mean(), 1e-300))

    def edge_cut(self, adjacency: sp.csr_matrix) -> int:
        """Number of graph edges whose endpoints lie in different partitions."""
        coo = sp.triu(adjacency, k=1).tocoo()
        return int(np.sum(self.assignment[coo.row] != self.assignment[coo.col]))


def _csr_neighbours(adjacency: sp.csr_matrix, node: int) -> np.ndarray:
    return adjacency.indices[adjacency.indptr[node]:adjacency.indptr[node + 1]]


def _bfs_order(adjacency: sp.csr_matrix, source: int) -> np.ndarray:
    """Nodes in BFS order from ``source`` (unreached nodes appended at the end)."""
    n = adjacency.shape[0]
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    count = 0
    queue = [source]
    visited[source] = True
    while queue:
        nxt: List[int] = []
        for u in queue:
            order[count] = u
            count += 1
            for v in _csr_neighbours(adjacency, u):
                if not visited[v]:
                    visited[v] = True
                    nxt.append(int(v))
        queue = nxt
    if count < n:
        rest = np.flatnonzero(~visited)
        order[count:] = rest
    return order


def _farthest_point_seeds(adjacency: sp.csr_matrix, k: int, rng: np.random.Generator) -> np.ndarray:
    """Pick k seeds spread out over the graph via iterated BFS distances."""
    n = adjacency.shape[0]
    seeds = [int(rng.integers(n))]
    dist = _bfs_distances(adjacency, seeds[0])
    for _ in range(1, k):
        candidate = int(np.argmax(dist))
        seeds.append(candidate)
        dist = np.minimum(dist, _bfs_distances(adjacency, candidate))
    return np.asarray(seeds, dtype=np.int64)


def _bfs_distances(adjacency: sp.csr_matrix, source: int) -> np.ndarray:
    n = adjacency.shape[0]
    dist = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    dist[source] = 0
    queue = [source]
    level = 0
    while queue:
        level += 1
        nxt: List[int] = []
        for u in queue:
            for v in _csr_neighbours(adjacency, u):
                if dist[v] > level:
                    dist[v] = level
                    nxt.append(int(v))
        queue = nxt
    dist[dist == np.iinfo(np.int64).max] = level + 1
    return dist


def partition_graph(
    adjacency: sp.csr_matrix,
    num_parts: int,
    rng: Optional[np.random.Generator] = None,
    refinement_sweeps: int = 3,
    balance_tolerance: float = 1.10,
) -> Partition:
    """K-way partition of a graph given by a symmetric adjacency matrix."""
    n = adjacency.shape[0]
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if num_parts == 1:
        return Partition(np.zeros(n, dtype=np.int64), 1)
    if num_parts > n:
        raise ValueError("cannot split a graph into more parts than nodes")
    rng = rng if rng is not None else np.random.default_rng(0)
    adjacency = adjacency.tocsr()

    assignment = -np.ones(n, dtype=np.int64)
    seeds = _farthest_point_seeds(adjacency, num_parts, rng)
    frontiers: List[List[int]] = []
    sizes = np.zeros(num_parts, dtype=np.int64)
    for p, s in enumerate(seeds):
        if assignment[s] < 0:
            assignment[s] = p
            sizes[p] = 1
            frontiers.append([int(s)])
        else:
            frontiers.append([])

    # greedy growing: always expand the smallest partition that still has a frontier
    active = set(range(num_parts))
    while active:
        # pick the smallest active partition
        p = min(active, key=lambda q: sizes[q])
        frontier = frontiers[p]
        new_frontier: List[int] = []
        grabbed = False
        for u in frontier:
            for v in _csr_neighbours(adjacency, u):
                if assignment[v] < 0:
                    assignment[v] = p
                    sizes[p] += 1
                    new_frontier.append(int(v))
                    grabbed = True
        frontiers[p] = new_frontier
        if not grabbed and not new_frontier:
            active.discard(p)

    # any unassigned nodes (disconnected graph): give them to the smallest part via BFS order
    unassigned = np.flatnonzero(assignment < 0)
    for u in unassigned:
        neigh = _csr_neighbours(adjacency, u)
        neigh_parts = assignment[neigh]
        neigh_parts = neigh_parts[neigh_parts >= 0]
        if len(neigh_parts):
            p = int(np.bincount(neigh_parts, minlength=num_parts).argmax())
        else:
            p = int(np.argmin(sizes))
        assignment[u] = p
        sizes[p] += 1

    partition = Partition(assignment, num_parts)
    for _ in range(refinement_sweeps):
        moved = _refine_boundary(adjacency, partition, balance_tolerance)
        if moved == 0:
            break
    return partition


def _refine_boundary(adjacency: sp.csr_matrix, partition: Partition, balance_tolerance: float) -> int:
    """One KL-style sweep: move boundary nodes to reduce the cut while staying balanced."""
    assignment = partition.assignment
    num_parts = partition.num_parts
    sizes = np.bincount(assignment, minlength=num_parts).astype(np.int64)
    n = adjacency.shape[0]
    max_size = int(np.ceil(balance_tolerance * n / num_parts))
    moved = 0
    coo = sp.triu(adjacency, k=1).tocoo()
    boundary_nodes = np.unique(
        np.concatenate(
            [
                coo.row[assignment[coo.row] != assignment[coo.col]],
                coo.col[assignment[coo.row] != assignment[coo.col]],
            ]
        )
    )
    for u in boundary_nodes:
        current = assignment[u]
        if sizes[current] <= 1:
            continue
        neigh = _csr_neighbours(adjacency, int(u))
        neigh_parts = assignment[neigh]
        counts = np.bincount(neigh_parts, minlength=num_parts)
        best = int(np.argmax(counts))
        # gain = edges to best part - edges kept in current part
        if best != current and counts[best] > counts[current] and sizes[best] < max_size:
            assignment[u] = best
            sizes[current] -= 1
            sizes[best] += 1
            moved += 1
    return moved


def partition_mesh(
    mesh: TriangularMesh,
    num_parts: int,
    rng: Optional[np.random.Generator] = None,
) -> Partition:
    """K-way partition of a mesh's node graph."""
    return partition_graph(mesh.adjacency, num_parts, rng=rng)


def partition_mesh_target_size(
    mesh: TriangularMesh,
    target_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Partition:
    """Partition a mesh into sub-meshes of approximately ``target_size`` nodes.

    This matches how the paper chooses the number of sub-domains:
    ``K = round(N / Ns)`` with Ns the sub-mesh size the DSS model was sized for.
    """
    if target_size < 1:
        raise ValueError("target_size must be >= 1")
    num_parts = max(int(np.round(mesh.num_nodes / target_size)), 1)
    return partition_mesh(mesh, num_parts, rng=rng)
