"""Overlap expansion for overlapping Schwarz methods.

Given a non-overlapping partition, each sub-domain is expanded by ``overlap``
layers of adjacent nodes (breadth-first over the node graph).  The paper uses
an overlap of 2 (and 4 in one ablation of Table I).
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp

from ..mesh.mesh import TriangularMesh
from .partitioner import Partition

__all__ = ["expand_overlap", "overlapping_subdomains", "OverlappingDecomposition"]


def expand_overlap(
    adjacency: sp.csr_matrix,
    nodes: np.ndarray,
    overlap: int,
) -> np.ndarray:
    """Expand a node set by ``overlap`` layers of graph neighbours.

    Returns the sorted union of the original nodes and the added layers.
    """
    if overlap < 0:
        raise ValueError("overlap must be >= 0")
    adjacency = adjacency.tocsr()
    n = adjacency.shape[0]
    selected = np.zeros(n, dtype=bool)
    selected[np.asarray(nodes, dtype=np.int64)] = True
    frontier = selected.copy()
    for _ in range(overlap):
        # all neighbours of the current frontier
        reached = (adjacency @ frontier.astype(np.float64)) > 0
        new = reached & ~selected
        if not new.any():
            break
        selected |= new
        frontier = new
    return np.flatnonzero(selected)


class OverlappingDecomposition:
    """An overlapping decomposition of a mesh into K sub-domains.

    Stores, for every sub-domain ``i``:

    * ``subdomain_nodes[i]`` — the sorted global node indices of the
      *overlapping* sub-domain (the ``R_i`` index set);
    * ``core_nodes[i]`` — the nodes of the original non-overlapping part
      (useful for restricted additive Schwarz and diagnostics).
    """

    def __init__(
        self,
        mesh: TriangularMesh,
        partition: Partition,
        overlap: int = 2,
    ) -> None:
        self.mesh = mesh
        self.partition = partition
        self.overlap = int(overlap)
        adjacency = mesh.adjacency
        self.core_nodes: List[np.ndarray] = []
        self.subdomain_nodes: List[np.ndarray] = []
        for part in range(partition.num_parts):
            core = partition.part_nodes(part)
            self.core_nodes.append(core)
            self.subdomain_nodes.append(expand_overlap(adjacency, core, overlap))

    @property
    def num_subdomains(self) -> int:
        return self.partition.num_parts

    def sizes(self) -> np.ndarray:
        """Number of nodes of every overlapping sub-domain."""
        return np.asarray([len(s) for s in self.subdomain_nodes], dtype=np.int64)

    def covers_all_nodes(self) -> bool:
        """True if every mesh node belongs to at least one sub-domain."""
        covered = np.zeros(self.mesh.num_nodes, dtype=bool)
        for nodes in self.subdomain_nodes:
            covered[nodes] = True
        return bool(covered.all())

    def multiplicity(self) -> np.ndarray:
        """For each node, the number of sub-domains containing it (≥1)."""
        count = np.zeros(self.mesh.num_nodes, dtype=np.int64)
        for nodes in self.subdomain_nodes:
            count[nodes] += 1
        return count


def overlapping_subdomains(
    mesh: TriangularMesh,
    partition: Partition,
    overlap: int = 2,
) -> List[np.ndarray]:
    """Convenience wrapper returning only the overlapping node sets."""
    return OverlappingDecomposition(mesh, partition, overlap).subdomain_nodes
