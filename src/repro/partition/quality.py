"""Partition-quality diagnostics.

These metrics are not needed by the solver itself but are reported by the
benchmark harnesses (sub-domain counts and sizes appear in every table of the
paper) and exercised by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
import scipy.sparse as sp

from ..mesh.mesh import TriangularMesh
from .partitioner import Partition

__all__ = ["PartitionReport", "analyse_partition"]


@dataclass(frozen=True)
class PartitionReport:
    """Summary statistics of a (possibly overlapping) decomposition."""

    num_parts: int
    min_size: int
    max_size: int
    mean_size: float
    imbalance: float
    edge_cut: int
    edge_cut_fraction: float
    connected_parts: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_parts": self.num_parts,
            "min_size": self.min_size,
            "max_size": self.max_size,
            "mean_size": self.mean_size,
            "imbalance": self.imbalance,
            "edge_cut": self.edge_cut,
            "edge_cut_fraction": self.edge_cut_fraction,
            "connected_parts": self.connected_parts,
        }


def _num_connected_parts(adjacency: sp.csr_matrix, partition: Partition) -> int:
    """Count how many partitions induce a connected subgraph."""
    connected = 0
    for part in range(partition.num_parts):
        nodes = partition.part_nodes(part)
        if len(nodes) == 0:
            continue
        sub = adjacency[np.ix_(nodes, nodes)].tocsr()
        n_components = sp.csgraph.connected_components(sub, directed=False, return_labels=False)
        if n_components == 1:
            connected += 1
    return connected


def analyse_partition(mesh: TriangularMesh, partition: Partition) -> PartitionReport:
    """Compute a :class:`PartitionReport` for a partition of ``mesh``."""
    adjacency = mesh.adjacency
    sizes = partition.sizes()
    total_edges = int(sp.triu(adjacency, k=1).nnz)
    cut = partition.edge_cut(adjacency)
    return PartitionReport(
        num_parts=partition.num_parts,
        min_size=int(sizes.min()),
        max_size=int(sizes.max()),
        mean_size=float(sizes.mean()),
        imbalance=partition.imbalance(),
        edge_cut=cut,
        edge_cut_fraction=cut / max(total_edges, 1),
        connected_parts=_num_connected_parts(adjacency, partition),
    )
