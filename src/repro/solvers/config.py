"""Declarative solver configuration — the one way every caller builds a solve.

A :class:`SolverConfig` names a preconditioner and a Krylov method from the
:mod:`repro.solvers.registry` registries, plus every knob of the setup phase
(sub-domain size, overlap, levels) and of the iteration phase (tolerance,
iteration cap).  It round-trips through plain dicts and JSON, so the
experiment harness, the benchmarks and ad-hoc scripts all construct sessions
through the same code path::

    config = SolverConfig(preconditioner="ddm-lu", krylov="gmres",
                          krylov_kwargs={"restart": 30})
    config = SolverConfig.from_dict(json.load(open("solver.json")))

``HybridSolverConfig`` in :mod:`repro.core.hybrid_solver` is an alias of this
class, so pre-existing call sites keep working unchanged.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["SolverConfig"]


@dataclass
class SolverConfig:
    """Configuration of a solver session.

    Attributes
    ----------
    preconditioner:
        Registered preconditioner kind (see
        :func:`~repro.solvers.registry.available_preconditioners`):
        ``"ddm-gnn"``, ``"ddm-lu"``, ``"ddm-jacobi"``, ``"ic0"`` or
        ``"none"``.
    krylov:
        Registered Krylov method (``"cg"``, ``"gmres"`` or ``"bicgstab"``).
    krylov_kwargs:
        Extra keyword arguments forwarded to the Krylov method (e.g.
        ``{"restart": 30}`` for GMRES).
    subdomain_size:
        Target sub-domain size Ns; used when ``num_subdomains`` is None.
    num_subdomains:
        Explicit number of sub-domains K (overrides ``subdomain_size``).
    overlap:
        Overlap width in graph layers (the paper uses 2, and 4 in ablations).
    levels:
        1 or 2 (two-level adds the Nicolaides coarse space).
    tolerance:
        Relative residual stopping threshold of the Krylov method.
    max_iterations:
        Iteration cap of the Krylov method.
    gnn_batch_size:
        Number of sub-domain graphs per DSS inference call (None = automatic).
    gnn_equilibrate:
        Diagonal equilibration of the DDM-GNN local solves; None (default)
        enables it exactly when the problem carries a κ field.
    jacobi_sweeps:
        Sweeps of the Jacobi local solver (``ddm-jacobi`` only).
    precision:
        Inference precision of the DDM-GNN local solves: ``"f64"`` (default,
        bit-compatible with the tape forward) or ``"f32"`` (float32-staged
        weights and scratch, casts at the source/output boundary; the Krylov
        iteration itself always runs in float64).  Other preconditioner
        families are exact solvers and ignore it.  The field enters
        :meth:`config_hash` — and therefore the serve-layer session keys —
        so cached f32 and f64 sessions never mix.
    seed:
        Seed for the partitioner.
    fallback:
        Degradation ladder: an ordered list of preconditioner kinds to try
        when a solve with the primary preconditioner fails (raises, breaks
        down, stagnates or runs out of iterations).  The session lazily
        prepares rung ``i`` on first use with the *same* partition seed and
        tolerances, re-solves, and stamps ``info["degraded"]``/``info["rung"]``
        on the result.  A typical production policy is
        ``fallback=["ddm-lu"]`` — the exact Schwarz path that cannot break
        down.  Enters :meth:`config_hash` (a config with a ladder is a
        different serving contract than one without).
    stagnation_window:
        Consecutive iterations without a new best relative residual before
        the Krylov method stops with ``failure_reason="stagnation"``.
        ``None`` disables the guard.  The default (250) is far beyond any
        healthy preconditioned solve in this repository, so it only fires on
        genuinely stalled iterations (e.g. a broken checkpoint).
    checkpoint:
        Optional path to a versioned checkpoint
        (:mod:`repro.gnn.checkpoint`); when the preconditioner needs a model
        and none is passed to ``prepare``, it is loaded from here.
    obs:
        Opt-in convergence telemetry (:mod:`repro.obs`): ``None`` (default,
        zero-cost) or a JSON-safe dict of options — ``{"convergence": True}``
        streams per-iteration residual, rung and breaker events into the
        process-wide event ring.  **Purely observational**: excluded from
        :meth:`config_hash` (and therefore from serve-layer session keys),
        and must never perturb solver numerics — telemetry on/off yields
        bit-identical solutions.
    """

    preconditioner: str = "ddm-gnn"
    krylov: str = "cg"
    krylov_kwargs: Dict[str, object] = field(default_factory=dict)
    subdomain_size: int = 1000
    num_subdomains: Optional[int] = None
    overlap: int = 2
    levels: int = 2
    tolerance: float = 1e-6
    max_iterations: Optional[int] = None
    gnn_batch_size: Optional[int] = None
    gnn_equilibrate: Optional[bool] = None
    jacobi_sweeps: int = 10
    precision: str = "f64"
    seed: int = 0
    fallback: List[str] = field(default_factory=list)
    stagnation_window: Optional[int] = 250
    checkpoint: Optional[str] = None
    obs: Optional[Dict] = None

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        if self.levels not in (1, 2):
            raise ValueError(
                f"levels must be 1 (one-level ASM) or 2 (Nicolaides coarse space), "
                f"got {self.levels!r}"
            )
        if self.precision not in ("f64", "f32"):
            raise ValueError(
                f"precision must be 'f64' or 'f32', got {self.precision!r}"
            )
        if isinstance(self.fallback, str):
            raise ValueError(
                "fallback must be a list of preconditioner kinds, not a string "
                f"(got {self.fallback!r})"
            )
        self.fallback = list(self.fallback)
        if any(not isinstance(kind, str) for kind in self.fallback):
            raise ValueError(f"fallback entries must be strings, got {self.fallback!r}")
        if self.preconditioner in self.fallback:
            raise ValueError(
                f"fallback may not repeat the primary preconditioner "
                f"{self.preconditioner!r}"
            )
        if len(set(self.fallback)) != len(self.fallback):
            # duplicates would make a rung's own config invalid when the
            # ladder promotes it (its remaining fallback would repeat it)
            raise ValueError(f"fallback entries must be unique, got {self.fallback!r}")
        if self.stagnation_window is not None and self.stagnation_window < 1:
            raise ValueError(
                f"stagnation_window must be a positive int or None, "
                f"got {self.stagnation_window!r}"
            )
        if self.obs is not None and not isinstance(self.obs, dict):
            raise ValueError(
                f"obs must be None or a dict of telemetry options, got {self.obs!r}"
            )

    def config_hash(self) -> str:
        """Stable SHA-256 over every solver-behaviour field.

        The ``checkpoint`` *path* is excluded: the session cache key
        (:func:`repro.solvers.fingerprint.session_key`) hashes the
        checkpoint's **content** separately, so moving a checkpoint file does
        not change a session's identity while retraining it does.  The
        ``obs`` telemetry options are excluded too: observation must never
        change which cached session answers a request.

        >>> a = SolverConfig(preconditioner="ddm-lu")
        >>> b = SolverConfig(preconditioner="ddm-lu", checkpoint="elsewhere.npz")
        >>> a.config_hash() == b.config_hash()
        True
        >>> a.config_hash() == SolverConfig(preconditioner="ic0").config_hash()
        False
        >>> c = SolverConfig(preconditioner="ddm-lu", obs={"convergence": True})
        >>> a.config_hash() == c.config_hash()
        True
        """
        from ..gnn.checkpoint import config_hash

        data = self.to_dict()
        data.pop("checkpoint", None)
        data.pop("obs", None)
        return config_hash(data)

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-serialisable).

        >>> SolverConfig(krylov="gmres").to_dict()["krylov"]
        'gmres'
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "SolverConfig":
        """Build a config from a plain dict, rejecting unknown fields.

        >>> SolverConfig.from_dict({"preconditioner": "ddm-lu", "overlap": 3}).overlap
        3
        >>> try:
        ...     SolverConfig.from_dict({"preconditionner": "typo"})
        ... except ValueError as error:
        ...     print(str(error).split(" (")[0])
        unknown solver-config fields: ['preconditionner']
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown solver-config fields: {unknown} (known: {sorted(known)})"
            )
        return cls(**data)

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "SolverConfig":
        """Load a config from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ValueError(f"solver config '{path}' must be a JSON object")
        return cls.from_dict(data)

    def save_json(self, path: Union[str, Path]) -> None:
        """Write the config as indented JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
