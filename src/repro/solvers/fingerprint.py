"""Content fingerprints for sessions: what identifies a prepared solve.

A prepared :class:`~repro.solvers.session.SolverSession` is fully determined
by three ingredients, and :func:`session_key` hashes exactly those:

* the **problem** — :meth:`repro.fem.problem.Problem.fingerprint` (operator,
  right-hand side, mesh, boundary data, κ field);
* the **solver configuration** — :meth:`SolverConfig.config_hash
  <repro.solvers.config.SolverConfig.config_hash>` (every setup/iteration
  knob — including the inference ``precision``, so a float32 session never
  answers for a float64 one — excluding the checkpoint *path*, whose content
  is hashed separately);
* the **model weights** — the checkpoint file's content hash when the config
  names one, else the in-memory model's parameter hash.

Two calls that agree on this key produce bit-identical sessions, so the key
is safe to use as a cache identity: the serve layer
(:mod:`repro.serve.cache`) reuses a prepared session for any request whose
key matches, amortising partitioning/factorisation/plan compilation across
the request stream.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

__all__ = [
    "model_fingerprint",
    "checkpoint_fingerprint",
    "session_key",
]

#: cache of checkpoint-file content hashes keyed by (path, mtime_ns, size)
_CHECKPOINT_HASHES: Dict[Tuple[str, int, int], str] = {}


def model_fingerprint(model) -> str:
    """Content hash of a model's parameters (name + bytes of every array).

    Models exposing ``state_dict()`` (the DSS family) hash reproducibly
    across processes.  Duck-typed models without one (test doubles,
    custom local solvers) fall back to a process-local identity — still a
    correct cache key within one service, just not stable across restarts.
    """
    state_dict = getattr(model, "state_dict", None)
    if not callable(state_dict):
        return f"object-{id(model):x}"
    digest = hashlib.sha256()
    for name, value in sorted(state_dict().items()):
        digest.update(str(name).encode("utf-8"))
        digest.update(b"=")
        digest.update(np.ascontiguousarray(np.asarray(value, dtype=np.float64)).tobytes())
        digest.update(b"|")
    config = getattr(model, "config", None)
    if config is not None:
        from ..gnn.checkpoint import config_hash

        digest.update(config_hash(config).encode("utf-8"))
    return digest.hexdigest()


def checkpoint_fingerprint(path: Union[str, Path]) -> str:
    """SHA-256 of a checkpoint file's bytes, cached by (path, mtime, size).

    Hashing content rather than the path means a retrained checkpoint saved
    to the same location invalidates cached sessions, while the same file
    reached through two paths does not duplicate them.
    """
    path = Path(path)
    stat = path.stat()
    key = (str(path.resolve()), stat.st_mtime_ns, stat.st_size)
    cached = _CHECKPOINT_HASHES.get(key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    value = digest.hexdigest()
    _CHECKPOINT_HASHES[key] = value
    return value


def session_key(problem, config, model=None) -> str:
    """The cache identity of a prepared session: ``(problem, config, model)``.

    ``config`` is a :class:`~repro.solvers.config.SolverConfig` (or plain
    dict of its fields).  The model contribution mirrors exactly what
    :class:`~repro.solvers.session.SolverSession` will actually use: nothing
    at all for model-free preconditioners (so e.g. two services holding
    different DSS models still share ``ddm-lu`` sessions), the passed
    model's parameter hash when one is given (an explicit model wins over
    ``config.checkpoint`` in the session too), else the checkpoint file's
    *content* hash.
    """
    from .config import SolverConfig
    from .registry import preconditioner_spec

    if config is None:
        config = SolverConfig()
    elif isinstance(config, dict):
        config = SolverConfig.from_dict(config)
    parts = [
        "problem:" + problem.fingerprint(),
        "config:" + config.config_hash(),
    ]
    if not preconditioner_spec(config.preconditioner).needs_model:
        parts.append("model:unused")
    elif model is not None:
        parts.append("model:" + model_fingerprint(model))
    elif config.checkpoint:
        parts.append("checkpoint:" + checkpoint_fingerprint(config.checkpoint))
    else:
        parts.append("model:none")
    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()
