"""Built-in Krylov method registrations (``cg``, ``gmres``, ``bicgstab``).

The implementations live in :mod:`repro.krylov`; this module only adapts them
to the registry contract.  All three already share the signature
``solve(matrix, rhs, preconditioner=None, initial_guess=None, tolerance=...,
max_iterations=None, **kwargs) -> SolveResult``, so the registrations are
direct.
"""

from __future__ import annotations

from ..krylov.bicgstab import bicgstab
from ..krylov.block import lockstep_pcg
from ..krylov.cg import preconditioned_conjugate_gradient
from ..krylov.gmres import gmres
from .registry import register_krylov

__all__ = []  # methods are consumed through the registry, not imported

register_krylov(
    "cg",
    description="Preconditioned Conjugate Gradient (paper Algorithm 1; SPD operators)",
    symmetric_only=True,
    lockstep=lockstep_pcg,
)(preconditioned_conjugate_gradient)

register_krylov(
    "gmres",
    description="Restarted GMRES(m) with Givens rotations (nonsymmetric operators)",
)(gmres)

register_krylov(
    "bicgstab",
    description="BiCGStab (van der Vorst; nonsymmetric operators, short recurrences)",
)(bicgstab)
