"""Setup/solve-split solver sessions: pay setup once, serve many right-hand sides.

:func:`prepare` is the entry point of the :mod:`repro.solvers` API.  It
performs **all** of the expensive, operator-dependent work exactly once —
mesh partitioning, local factorisations (or compiled DSS inference plans),
the coarse space — and returns a :class:`SolverSession` that serves any
number of right-hand sides against the prepared operator::

    session = prepare(problem, SolverConfig(preconditioner="ddm-lu"))
    result = session.solve()                  # b defaults to problem.rhs
    other = session.solve(b_new)              # amortised: zero re-setup
    many = session.solve_many(B)              # batched multi-RHS serving

This is the ``setup``/``apply`` split of production preconditioner libraries
(PETSc's ``PCSetUp``/``PCApply``): in a serving system the operator changes
rarely and the right-hand sides arrive continuously, so the setup cost must
be amortised over the stream.  The session keeps structured per-stage timing
(``setup_timings``) and per-solve diagnostics (``SolveResult.info`` carries a
``stage_timings`` dict), and counts setups vs solves so tests can assert the
amortisation invariant directly.

The Krylov method and the preconditioner are resolved by name through the
:mod:`repro.solvers.registry` registries; ``config`` may equivalently be a
plain dict (parsed JSON), which is how the experiment harness and the
benchmarks construct sessions through one code path.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from ..core.ddm_gnn import DDMGNNPreconditioner
from ..ddm.asm import Preconditioner
from ..fem.problem import Problem
from ..krylov.result import SolveResult
from ..partition.overlap import OverlappingDecomposition
from .config import SolverConfig
from .preconditioners import build_decomposition
from .registry import KrylovSpec, PreconditionerSpec, krylov_spec, preconditioner_spec

__all__ = ["SolverSession", "MultiSolveResult", "prepare"]

#: Krylov arguments the session always supplies itself; ``krylov_kwargs``
#: entries with these names would collide at call time, so they are rejected
#: at prepare time (tolerance/max_iterations belong on SolverConfig directly)
_RESERVED_KRYLOV_ARGS = frozenset(
    {"matrix", "rhs", "preconditioner", "initial_guess", "tolerance", "max_iterations"}
)


def _load_model_from_checkpoint(path: str):
    from ..gnn.checkpoint import load_model

    return load_model(path)


@dataclass
class MultiSolveResult:
    """Outcome of a multi-RHS :meth:`SolverSession.solve_many` call.

    ``results[i]`` is the full :class:`~repro.krylov.result.SolveResult` of
    right-hand side ``i`` — bit-identical to what a sequential
    :meth:`SolverSession.solve` on the same vector returns.
    """

    results: List[SolveResult] = field(default_factory=list)
    elapsed_time: float = 0.0

    @property
    def solutions(self) -> np.ndarray:
        """All solutions stacked, shape ``(num_rhs, n)``."""
        return np.stack([r.solution for r in self.results])

    @property
    def iterations(self) -> List[int]:
        return [r.iterations for r in self.results]

    @property
    def converged(self) -> bool:
        """True when every right-hand side converged."""
        return all(r.converged for r in self.results)

    @property
    def num_rhs(self) -> int:
        return len(self.results)

    def summary(self) -> str:
        if not self.results:
            return "0 right-hand sides"
        status = "converged" if self.converged else "NOT converged"
        iters = self.iterations
        return (
            f"{self.num_rhs} right-hand sides {status}, "
            f"iterations {min(iters)}..{max(iters)} (median {int(np.median(iters))}), "
            f"time {self.elapsed_time:.4f}s"
        )


class SolverSession:
    """A prepared solver: operator-dependent setup done, ready to serve RHS.

    Construct via :func:`prepare` (or :meth:`from_problem`).  Attributes of
    interest after construction:

    ``preconditioner``
        The built :class:`~repro.ddm.asm.Preconditioner`.
    ``decomposition``
        The :class:`~repro.partition.overlap.OverlappingDecomposition`, or
        None for non-DDM preconditioners.
    ``setup_timings``
        Per-stage wall times of the one-time setup:
        ``{"partition_s", "preconditioner_s", "total_s"}``.
    ``num_setups`` / ``num_solves``
        Amortisation counters: ``num_setups`` is 1 for the session's lifetime
        no matter how many right-hand sides are served.
    """

    def __init__(
        self,
        problem: Problem,
        config: Union[SolverConfig, Dict, None] = None,
        model=None,
    ) -> None:
        if config is None:
            config = SolverConfig()
        elif isinstance(config, dict):
            config = SolverConfig.from_dict(config)
        self.problem = problem
        self.config = config
        self.krylov: KrylovSpec = krylov_spec(config.krylov)
        self.preconditioner_kind: PreconditionerSpec = preconditioner_spec(config.preconditioner)
        if self.krylov.symmetric_only and not getattr(problem, "symmetric", True):
            raise ValueError(
                f"Krylov method '{config.krylov}' assumes a symmetric operator but the "
                f"problem is nonsymmetric; use krylov='gmres' or krylov='bicgstab'"
            )
        if self.preconditioner_kind.spd_only and not getattr(problem, "symmetric", True):
            raise ValueError(
                f"preconditioner '{config.preconditioner}' requires a symmetric (SPD) "
                f"operator but the problem is nonsymmetric"
            )

        # resolve the per-solve Krylov kwargs once, and reject unknown ones
        # here — before the expensive setup below, not on the first solve()
        self._krylov_kwargs: Dict[str, object] = dict(self.krylov.default_kwargs)
        self._krylov_kwargs.update(config.krylov_kwargs)
        reserved = sorted(_RESERVED_KRYLOV_ARGS & set(self._krylov_kwargs))
        if reserved:
            raise ValueError(
                f"krylov_kwargs may not override session-managed argument(s) {reserved}; "
                f"set tolerance/max_iterations on the SolverConfig itself"
            )
        parameters = inspect.signature(self.krylov.solve).parameters
        accepts_var_kwargs = any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        )
        if not accepts_var_kwargs:
            unknown = sorted(set(self._krylov_kwargs) - set(parameters))
            if unknown:
                raise ValueError(
                    f"Krylov method '{config.krylov}' does not accept "
                    f"keyword argument(s) {unknown}"
                )

        if self.preconditioner_kind.needs_model and model is None:
            if config.checkpoint:
                model = _load_model_from_checkpoint(config.checkpoint)
            elif config.preconditioner == "ddm-gnn":
                raise ValueError("the DDM-GNN preconditioner requires a DSS model")
            else:
                raise ValueError(
                    f"the '{config.preconditioner}' preconditioner requires a model "
                    f"(pass model=... or set config.checkpoint)"
                )
        self.model = model

        # -- one-time setup: partition, factorise/compile ------------------- #
        self.setup_timings: Dict[str, float] = {"partition_s": 0.0, "preconditioner_s": 0.0}
        start = time.perf_counter()
        self.decomposition: Optional[OverlappingDecomposition] = None
        if self.preconditioner_kind.needs_decomposition:
            t0 = time.perf_counter()
            self.decomposition = build_decomposition(problem, config)
            self.setup_timings["partition_s"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        self.preconditioner: Preconditioner = self.preconditioner_kind.build(
            problem, config, decomposition=self.decomposition, model=model
        )
        self.setup_timings["preconditioner_s"] = time.perf_counter() - t0
        self.setup_timings["total_s"] = time.perf_counter() - start
        self.setup_time = self.setup_timings["total_s"]

        # -- amortisation counters ------------------------------------------ #
        self.num_setups = 1
        self.num_solves = 0
        self.total_solve_time = 0.0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_problem(
        cls,
        problem: Problem,
        config: Union[SolverConfig, Dict, None] = None,
        model=None,
    ) -> "SolverSession":
        """Alias of the constructor, mirroring :func:`prepare`."""
        return cls(problem, config, model=model)

    # ------------------------------------------------------------------ #
    def solve(
        self,
        b: Optional[np.ndarray] = None,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        """Solve ``A x = b`` with the prepared preconditioner.

        ``b`` defaults to the problem's assembled right-hand side; ``x0`` is
        the initial guess (zero if omitted).  No setup is performed here —
        partitioning, factorisations and inference plans were all built by
        :func:`prepare`.  The result's ``info`` carries the amortised
        accounting: ``info["setup_s"]`` is the session setup time on the
        session's **first** solve and ``0.0`` on every later one.
        """
        config = self.config
        b = self.problem.rhs if b is None else np.asarray(b, dtype=np.float64)
        result: SolveResult = self.krylov.solve(
            self.problem.matrix,
            b,
            preconditioner=self.preconditioner,
            initial_guess=x0,
            tolerance=config.tolerance,
            max_iterations=config.max_iterations,
            **self._krylov_kwargs,
        )
        first = self.num_solves == 0
        self.num_solves += 1
        self.total_solve_time += result.elapsed_time

        setup_s = self.setup_time if first else 0.0
        result.info["preconditioner_kind"] = config.preconditioner
        result.info["krylov"] = config.krylov
        result.info["setup_s"] = setup_s
        result.info["setup_time"] = setup_s  # legacy key of HybridSolver.solve
        result.info["stage_timings"] = {
            "partition_s": self.setup_timings["partition_s"] if first else 0.0,
            "preconditioner_s": self.setup_timings["preconditioner_s"] if first else 0.0,
            "setup_s": setup_s,
            "krylov_s": result.krylov_time,
            "precond_apply_s": result.preconditioner_time,
            "solve_s": result.elapsed_time,
        }
        if self.decomposition is not None:
            result.info["num_subdomains"] = self.decomposition.num_subdomains
            result.info["subdomain_sizes"] = self.decomposition.sizes().tolist()
            result.info["overlap"] = config.overlap
        if isinstance(self.preconditioner, DDMGNNPreconditioner):
            result.info["gnn_stats"] = self.preconditioner.inference_stats()
        return result

    def solve_many(
        self,
        B: Union[np.ndarray, Iterable[np.ndarray]],
        x0: Optional[np.ndarray] = None,
    ) -> MultiSolveResult:
        """Serve a batch of right-hand sides against the prepared operator.

        ``B`` is a sequence of right-hand-side vectors (or a 2-D array whose
        **rows** are right-hand sides).  Every solve reuses the session's
        preconditioner — the setup cost is paid zero additional times — and
        each per-RHS result is bit-identical to a sequential
        :meth:`solve` call on the same vector (the solves are independent;
        batching here amortises setup, not floating-point work).
        """
        if not isinstance(B, np.ndarray):
            B = list(B)  # materialise generators before the array conversion
        vectors = np.atleast_2d(np.asarray(B, dtype=np.float64))
        if vectors.ndim != 2:
            raise ValueError("solve_many expects a sequence of right-hand-side vectors")
        if vectors.shape[1] != self.problem.num_dofs:
            raise ValueError(
                f"right-hand sides must have length {self.problem.num_dofs} "
                f"(got shape {vectors.shape})"
            )
        start = time.perf_counter()
        results = [self.solve(row, x0=x0) for row in vectors]
        return MultiSolveResult(results=results, elapsed_time=time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    def diagnostics(self) -> Dict[str, object]:
        """Structured session diagnostics (setup stages, amortisation counters)."""
        info: Dict[str, object] = {
            "preconditioner_kind": self.config.preconditioner,
            "krylov": self.config.krylov,
            "num_setups": self.num_setups,
            "num_solves": self.num_solves,
            "setup_timings": dict(self.setup_timings),
            "total_solve_time": self.total_solve_time,
            "amortised_setup_s": self.setup_time / max(self.num_solves, 1),
        }
        if self.decomposition is not None:
            info["num_subdomains"] = self.decomposition.num_subdomains
            info["overlap"] = self.config.overlap
        if isinstance(self.preconditioner, DDMGNNPreconditioner):
            info["gnn_stats"] = self.preconditioner.inference_stats()
        return info

    def summary(self) -> str:
        """One-line human-readable session summary."""
        return (
            f"SolverSession({self.config.preconditioner}+{self.config.krylov}, "
            f"n={self.problem.num_dofs}, setup {self.setup_time:.3f}s, "
            f"{self.num_solves} solve(s))"
        )


def prepare(
    problem: Problem,
    config: Union[SolverConfig, Dict, None] = None,
    model=None,
) -> SolverSession:
    """Build a :class:`SolverSession`: all operator-dependent setup, once.

    Parameters
    ----------
    problem:
        Any :class:`~repro.fem.problem.Problem` (including every family from
        :func:`repro.problems.make_problem`).
    config:
        A :class:`~repro.solvers.config.SolverConfig`, a plain dict of its
        fields (parsed JSON), or None for the defaults.
    model:
        A trained :class:`~repro.gnn.dss.DSS` (required by ``ddm-gnn`` unless
        ``config.checkpoint`` points at a versioned checkpoint to load).
    """
    return SolverSession(problem, config, model=model)
