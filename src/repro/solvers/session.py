"""Setup/solve-split solver sessions: pay setup once, serve many right-hand sides.

:func:`prepare` is the entry point of the :mod:`repro.solvers` API.  It
performs **all** of the expensive, operator-dependent work exactly once —
mesh partitioning, local factorisations (or compiled DSS inference plans),
the coarse space — and returns a :class:`SolverSession` that serves any
number of right-hand sides against the prepared operator::

    session = prepare(problem, SolverConfig(preconditioner="ddm-lu"))
    result = session.solve()                  # b defaults to problem.rhs
    other = session.solve(b_new)              # amortised: zero re-setup
    many = session.solve_many(B)              # batched multi-RHS serving

This is the ``setup``/``apply`` split of production preconditioner libraries
(PETSc's ``PCSetUp``/``PCApply``): in a serving system the operator changes
rarely and the right-hand sides arrive continuously, so the setup cost must
be amortised over the stream.  The session keeps structured per-stage timing
(``setup_timings``) and per-solve diagnostics (``SolveResult.info`` carries a
``stage_timings`` dict), and counts setups vs solves so tests can assert the
amortisation invariant directly.

The Krylov method and the preconditioner are resolved by name through the
:mod:`repro.solvers.registry` registries; ``config`` may equivalently be a
plain dict (parsed JSON), which is how the experiment harness and the
benchmarks construct sessions through one code path.
"""

from __future__ import annotations

import dataclasses
import inspect
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from ..core.ddm_gnn import DDMGNNPreconditioner
from ..ddm.asm import Preconditioner
from ..fem.problem import Problem
from ..krylov.result import SolveResult
from ..obs import events as obs_events
from ..obs import trace as obs_trace
from ..partition.overlap import OverlappingDecomposition
from .config import SolverConfig
from .fingerprint import session_key
from .preconditioners import build_decomposition
from .registry import KrylovSpec, PreconditionerSpec, krylov_spec, preconditioner_spec

__all__ = ["SolverSession", "MultiSolveResult", "prepare"]

#: Krylov arguments the session always supplies itself; ``krylov_kwargs``
#: entries with these names would collide at call time, so they are rejected
#: at prepare time (tolerance/max_iterations belong on SolverConfig directly)
_RESERVED_KRYLOV_ARGS = frozenset(
    {"matrix", "rhs", "preconditioner", "initial_guess", "tolerance",
     "max_iterations", "stagnation_window"}
)


def _load_model_from_checkpoint(path: str):
    from ..gnn.checkpoint import load_model

    return load_model(path)


@dataclass
class MultiSolveResult:
    """Outcome of a multi-RHS :meth:`SolverSession.solve_many` call.

    ``results[i]`` is the full :class:`~repro.krylov.result.SolveResult` of
    right-hand side ``i`` — bit-identical to what a sequential
    :meth:`SolverSession.solve` on the same vector returns.
    """

    results: List[SolveResult] = field(default_factory=list)
    elapsed_time: float = 0.0
    #: how the batch was executed: "sequential" (per-RHS solves) or "fused"
    #: (lockstep multi-RHS Krylov; bit-identical per RHS either way)
    mode: str = "sequential"

    @property
    def solutions(self) -> np.ndarray:
        """All solutions stacked, shape ``(num_rhs, n)``."""
        return np.stack([r.solution for r in self.results])

    @property
    def iterations(self) -> List[int]:
        return [r.iterations for r in self.results]

    @property
    def converged(self) -> bool:
        """True when every right-hand side converged."""
        return all(r.converged for r in self.results)

    @property
    def num_rhs(self) -> int:
        return len(self.results)

    def summary(self) -> str:
        if not self.results:
            return "0 right-hand sides"
        status = "converged" if self.converged else "NOT converged"
        iters = self.iterations
        text = (
            f"{self.num_rhs} right-hand sides {status} ({self.mode}), "
            f"iterations {min(iters)}..{max(iters)} (median {int(np.median(iters))}), "
            f"time {self.elapsed_time:.4f}s"
        )
        # serving metadata, when the results came through the serve layer's
        # micro-batching queue (repro.serve stamps queue_s/batch_size)
        queue_times = [
            float(r.info["queue_s"]) for r in self.results if "queue_s" in r.info
        ]
        if queue_times:
            text += f", queue p50 {np.median(queue_times) * 1e3:.2f}ms"
        batch_sizes = [
            int(r.info["batch_size"]) for r in self.results if "batch_size" in r.info
        ]
        if batch_sizes:
            text += f", batch size {min(batch_sizes)}..{max(batch_sizes)}"
        # time-marching metadata, when the results belong to a march
        # (repro.timestepping stamps steps/amortized_step_ms)
        steps_values = {int(r.info["steps"]) for r in self.results if "steps" in r.info}
        step_costs = [
            float(r.info["amortized_step_ms"])
            for r in self.results
            if "amortized_step_ms" in r.info
        ]
        if len(steps_values) == 1 and step_costs:
            text += (
                f", {float(np.median(step_costs)):.3f} ms/step amortized "
                f"over {steps_values.pop()} steps"
            )
        return text


class SolverSession:
    """A prepared solver: operator-dependent setup done, ready to serve RHS.

    Construct via :func:`prepare` (or :meth:`from_problem`).  Attributes of
    interest after construction:

    ``preconditioner``
        The built :class:`~repro.ddm.asm.Preconditioner`.
    ``decomposition``
        The :class:`~repro.partition.overlap.OverlappingDecomposition`, or
        None for non-DDM preconditioners.
    ``setup_timings``
        Per-stage wall times of the one-time setup:
        ``{"partition_s", "preconditioner_s", "total_s"}``.
    ``num_setups`` / ``num_solves``
        Amortisation counters: ``num_setups`` is 1 for the session's lifetime
        no matter how many right-hand sides are served.
    """

    def __init__(
        self,
        problem: Problem,
        config: Union[SolverConfig, Dict, None] = None,
        model=None,
    ) -> None:
        if config is None:
            config = SolverConfig()
        elif isinstance(config, dict):
            config = SolverConfig.from_dict(config)
        self.problem = problem
        self.config = config
        self.krylov: KrylovSpec = krylov_spec(config.krylov)
        self.preconditioner_kind: PreconditionerSpec = preconditioner_spec(config.preconditioner)
        if self.krylov.symmetric_only and not getattr(problem, "symmetric", True):
            raise ValueError(
                f"Krylov method '{config.krylov}' assumes a symmetric operator but the "
                f"problem is nonsymmetric; use krylov='gmres' or krylov='bicgstab'"
            )
        if self.preconditioner_kind.spd_only and not getattr(problem, "symmetric", True):
            raise ValueError(
                f"preconditioner '{config.preconditioner}' requires a symmetric (SPD) "
                f"operator but the problem is nonsymmetric"
            )

        # resolve the per-solve Krylov kwargs once, and reject unknown ones
        # here — before the expensive setup below, not on the first solve()
        self._krylov_kwargs: Dict[str, object] = dict(self.krylov.default_kwargs)
        self._krylov_kwargs.update(config.krylov_kwargs)
        reserved = sorted(_RESERVED_KRYLOV_ARGS & set(self._krylov_kwargs))
        if reserved:
            raise ValueError(
                f"krylov_kwargs may not override session-managed argument(s) {reserved}; "
                f"set tolerance/max_iterations on the SolverConfig itself"
            )
        parameters = inspect.signature(self.krylov.solve).parameters
        accepts_var_kwargs = any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        )
        if not accepts_var_kwargs:
            unknown = sorted(set(self._krylov_kwargs) - set(parameters))
            if unknown:
                raise ValueError(
                    f"Krylov method '{config.krylov}' does not accept "
                    f"keyword argument(s) {unknown}"
                )
        # the stagnation guard is passed only to methods that declare it, so
        # duck-typed registered solvers keep working unchanged
        self._stagnation_kwargs: Dict[str, object] = (
            {"stagnation_window": config.stagnation_window}
            if "stagnation_window" in parameters else {}
        )
        self._lockstep_stagnation_kwargs: Dict[str, object] = {}
        if self.krylov.lockstep is not None:
            lockstep_params = inspect.signature(self.krylov.lockstep).parameters
            if "stagnation_window" in lockstep_params:
                self._lockstep_stagnation_kwargs = {
                    "stagnation_window": config.stagnation_window
                }

        # validate the degradation ladder up front: unknown rung names should
        # fail at prepare time, not on the first primary failure
        for kind in config.fallback:
            preconditioner_spec(kind)

        if self.preconditioner_kind.needs_model and model is None:
            if config.checkpoint:
                model = _load_model_from_checkpoint(config.checkpoint)
            elif config.preconditioner == "ddm-gnn":
                raise ValueError("the DDM-GNN preconditioner requires a DSS model")
            else:
                raise ValueError(
                    f"the '{config.preconditioner}' preconditioner requires a model "
                    f"(pass model=... or set config.checkpoint)"
                )
        self.model = model

        # -- one-time setup: partition, factorise/compile ------------------- #
        self.setup_timings: Dict[str, float] = {"partition_s": 0.0, "preconditioner_s": 0.0}
        start = time.perf_counter()
        self.decomposition: Optional[OverlappingDecomposition] = None
        if self.preconditioner_kind.needs_decomposition:
            t0 = time.perf_counter()
            self.decomposition = build_decomposition(problem, config)
            self.setup_timings["partition_s"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        self.preconditioner: Preconditioner = self.preconditioner_kind.build(
            problem, config, decomposition=self.decomposition, model=model
        )
        self.setup_timings["preconditioner_s"] = time.perf_counter() - t0
        self.setup_timings["total_s"] = time.perf_counter() - start
        self.setup_time = self.setup_timings["total_s"]

        # -- amortisation counters ------------------------------------------ #
        self.num_setups = 1
        self.num_solves = 0
        self.total_solve_time = 0.0

        # -- degradation ladder (lazily prepared fallback rungs) ------------ #
        self._rungs: Dict[int, "SolverSession"] = {}
        self.num_degraded = 0

        # -- concurrency ----------------------------------------------------- #
        #: serialises solves: the preconditioners reuse per-session scratch
        #: buffers (stacked residual/solution arrays, compiled InferencePlan
        #: buffers), so two concurrent ``solve`` calls on one session would
        #: silently corrupt each other's results.  The lock is reentrant so
        #: ``solve_many``'s sequential path can call ``solve`` while holding
        #: it.  Callers that need true intra-problem parallelism should give
        #: each worker its own session via :meth:`clone_for_worker`.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_problem(
        cls,
        problem: Problem,
        config: Union[SolverConfig, Dict, None] = None,
        model=None,
    ) -> "SolverSession":
        """Alias of the constructor, mirroring :func:`prepare`."""
        return cls(problem, config, model=model)

    # ------------------------------------------------------------------ #
    def solve(
        self,
        b: Optional[np.ndarray] = None,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        """Solve ``A x = b`` with the prepared preconditioner.

        ``b`` defaults to the problem's assembled right-hand side; ``x0`` is
        the initial guess (zero if omitted).  No setup is performed here —
        partitioning, factorisations and inference plans were all built by
        :func:`prepare`.  The result's ``info`` carries the amortised
        accounting: ``info["setup_s"]`` is the session setup time on the
        session's **first** solve and ``0.0`` on every later one.

        Thread safety: solves are serialised on a per-session lock (the
        preconditioner scratch buffers are session state); concurrent callers
        are correct but not parallel — see :meth:`clone_for_worker`.

        Degradation ladder: when ``config.fallback`` names fallback rungs and
        the primary solve fails — raises, or returns a non-converged result
        (breakdown, stagnation, iteration cap) — the session lazily prepares
        the next rung (same problem, same partition seed, same tolerances)
        and re-solves.  The returned result then carries
        ``info["degraded"] = True``, ``info["rung"]`` and the full
        ``info["ladder_attempts"]`` trail.
        """
        b = self.problem.rhs if b is None else np.asarray(b, dtype=np.float64)
        with obs_trace.span("session.solve",
                            preconditioner=self.config.preconditioner,
                            krylov=self.config.krylov) as span:
            try:
                with self._lock:
                    result = self._solve_locked(b, x0)
            except Exception as error:
                if not self.config.fallback:
                    raise
                return self._degrade(b, x0, primary_result=None, primary_error=error)
            if result.converged or not self.config.fallback:
                span.set_attribute("converged", bool(result.converged))
                span.set_attribute("iterations", int(result.iterations))
                return result
            return self._degrade(b, x0, primary_result=result, primary_error=None)

    def _emit_iteration_events(self, result: SolveResult, column: Optional[int] = None) -> None:
        """Stream one solve's per-iteration residuals into the event ring.

        Purely observational and free when telemetry is off: the rows are
        derived *after* the solve from ``result.residual_history`` (which the
        Krylov method records unconditionally), so the iteration hot loop
        carries no telemetry cost at all and solves with telemetry on are
        bit-identical to solves with it off.  ``residual_history[0]`` is the
        initial residual; entries 1..k are the performed iterations.
        """
        if not self.config.obs:
            return
        history = result.residual_history
        if len(history) < 2:
            return
        kind = self.config.preconditioner
        method = self.config.krylov
        ts = time.time()
        extra = {} if column is None else {"column": int(column)}
        obs_events.get_ring().extend([
            {"ts": ts, "kind": "iteration", "iteration": i,
             "residual": float(rel), "preconditioner": kind, "krylov": method,
             **extra}
            for i, rel in enumerate(history[1:], 1)
        ])

    def _emit_terminal(self, result: SolveResult) -> None:
        """Stream a solve's outcome into the event ring (telemetry on only)."""
        if not self.config.obs:
            return
        obs_events.get_ring().emit(
            "terminal",
            converged=bool(result.converged),
            iterations=int(result.iterations),
            failure_reason=result.failure_reason,
            residual=float(result.residual_history[-1])
            if result.residual_history else None,
            preconditioner=self.config.preconditioner,
        )

    def _solve_locked(self, b: np.ndarray, x0: Optional[np.ndarray]) -> SolveResult:
        """One primary solve; caller holds the session lock."""
        config = self.config
        result: SolveResult = self.krylov.solve(
            self.problem.matrix,
            b,
            preconditioner=self.preconditioner,
            initial_guess=x0,
            tolerance=config.tolerance,
            max_iterations=config.max_iterations,
            **self._stagnation_kwargs,
            **self._krylov_kwargs,
        )
        self._stamp_info(result)
        self._emit_iteration_events(result)
        self._emit_terminal(result)
        return result

    # -- degradation ladder -------------------------------------------- #
    def _rung_session(self, index: int) -> "SolverSession":
        """The prepared session for fallback rung ``index`` (lazy, cached).

        The rung config is the primary config with only the preconditioner
        kind swapped (and no further fallback): same partition seed, same
        tolerance/iteration budget, so rung results are deterministic and
        reproducible against an independently prepared reference session.
        """
        with self._lock:
            rung = self._rungs.get(index)
            if rung is None:
                kind = self.config.fallback[index]
                rung_config = dataclasses.replace(
                    self.config, preconditioner=kind, fallback=[]
                )
                spec = preconditioner_spec(kind)
                model = self.model if spec.needs_model else None
                rung = SolverSession(self.problem, rung_config, model=model)
                self._rungs[index] = rung
        return rung

    def _degrade(
        self,
        b: np.ndarray,
        x0: Optional[np.ndarray],
        primary_result: Optional[SolveResult],
        primary_error: Optional[Exception],
    ) -> SolveResult:
        """Walk the fallback ladder after a primary failure."""
        self.num_degraded += 1
        primary_failure = (
            f"{type(primary_error).__name__}: {primary_error}"
            if primary_error is not None
            else primary_result.failure_reason
        )
        observing = bool(self.config.obs)
        if observing:
            obs_events.get_ring().emit(
                "rung", action="primary_failed",
                rung=self.config.preconditioner, rung_index=0,
                failure=primary_failure,
            )
        span = obs_trace.current_span()
        if span is not None:
            span.add_event("rung_descent", primary=self.config.preconditioner,
                           failure=primary_failure)
        attempts: List[Dict[str, object]] = [
            {"rung": self.config.preconditioner, "rung_index": 0,
             "failure": primary_failure}
        ]
        last_result: Optional[SolveResult] = None
        last_error = primary_error
        for index, kind in enumerate(self.config.fallback):
            try:
                rung = self._rung_session(index)
                result = rung.solve(b, x0=x0)
            except Exception as error:  # a rung may fail too; try the next one
                attempts.append({"rung": kind, "rung_index": index + 1,
                                 "failure": f"{type(error).__name__}: {error}"})
                if observing:
                    obs_events.get_ring().emit(
                        "rung", action="rung_failed", rung=kind,
                        rung_index=index + 1,
                        failure=f"{type(error).__name__}: {error}",
                    )
                last_error = error
                continue
            attempts.append({"rung": kind, "rung_index": index + 1,
                             "failure": result.failure_reason})
            if observing:
                obs_events.get_ring().emit(
                    "rung",
                    action="rung_converged" if result.converged else "rung_failed",
                    rung=kind, rung_index=index + 1,
                    failure=result.failure_reason,
                )
            result.info["degraded"] = True
            result.info["rung"] = kind
            result.info["rung_index"] = index + 1
            result.info["primary_failure"] = primary_failure
            result.info["ladder_attempts"] = list(attempts)
            if result.converged:
                return result
            last_result = result
        if last_result is not None:
            last_result.info["ladder_attempts"] = list(attempts)
            return last_result
        if primary_result is not None:
            primary_result.info["ladder_attempts"] = list(attempts)
            return primary_result
        raise last_error

    def _stamp_info(self, result: SolveResult) -> None:
        """Attach session accounting to a fresh result (first solve pays setup)."""
        first = self.num_solves == 0
        self.num_solves += 1
        self.total_solve_time += result.elapsed_time

        config = self.config
        setup_s = self.setup_time if first else 0.0
        result.info["preconditioner_kind"] = config.preconditioner
        result.info["krylov"] = config.krylov
        result.info["precision"] = config.precision
        result.info.setdefault("degraded", False)
        if result.failure_reason is not None:
            result.info["failure_reason"] = result.failure_reason
        result.info["setup_s"] = setup_s
        result.info["setup_time"] = setup_s  # legacy key of HybridSolver.solve
        result.info["stage_timings"] = {
            "partition_s": self.setup_timings["partition_s"] if first else 0.0,
            "preconditioner_s": self.setup_timings["preconditioner_s"] if first else 0.0,
            "setup_s": setup_s,
            "krylov_s": result.krylov_time,
            "precond_apply_s": result.preconditioner_time,
            "solve_s": result.elapsed_time,
        }
        if self.decomposition is not None:
            result.info["num_subdomains"] = self.decomposition.num_subdomains
            result.info["subdomain_sizes"] = self.decomposition.sizes().tolist()
            result.info["overlap"] = config.overlap
        if isinstance(self.preconditioner, DDMGNNPreconditioner):
            result.info["gnn_stats"] = self.preconditioner.inference_stats()

    def solve_many(
        self,
        B: Union[np.ndarray, Iterable[np.ndarray]],
        x0: Optional[np.ndarray] = None,
        mode: str = "auto",
    ) -> MultiSolveResult:
        """Serve a batch of right-hand sides against the prepared operator.

        ``B`` is a sequence of right-hand-side vectors (or a 2-D array whose
        **rows** are right-hand sides).  Every solve reuses the session's
        preconditioner — the setup cost is paid zero additional times — and
        each per-RHS result is bit-identical to a sequential
        :meth:`solve` call on the same vector.

        ``mode`` selects the execution strategy:

        * ``"fused"`` — the Krylov method's lockstep multi-RHS implementation
          (:func:`repro.krylov.block.lockstep_pcg` for CG): one iteration
          advances every still-active right-hand side, amortising SpMVs into
          SpMMs and preconditioner applications into multi-column blocks.
          Bit-identical per RHS by the lockstep contract.
        * ``"sequential"`` — one :meth:`solve` per right-hand side.
        * ``"auto"`` (default) — fused when the method registers a lockstep
          implementation and no custom ``krylov_kwargs`` are in play, else
          sequential.
        """
        if mode not in ("auto", "fused", "sequential"):
            raise ValueError("mode must be 'auto', 'fused' or 'sequential'")
        if not isinstance(B, np.ndarray):
            B = list(B)  # materialise generators before the array conversion
        vectors = np.atleast_2d(np.asarray(B, dtype=np.float64))
        if vectors.ndim != 2:
            raise ValueError("solve_many expects a sequence of right-hand-side vectors")
        if vectors.shape[1] != self.problem.num_dofs:
            raise ValueError(
                f"right-hand sides must have length {self.problem.num_dofs} "
                f"(got shape {vectors.shape})"
            )
        fused_available = self.krylov.lockstep is not None and not self._krylov_kwargs
        if mode == "fused" and not fused_available:
            raise ValueError(
                f"Krylov method '{self.config.krylov}' has no lockstep implementation "
                f"(or custom krylov_kwargs are set); use mode='sequential'"
            )
        use_fused = fused_available if mode == "auto" else (mode == "fused")

        start = time.perf_counter()
        if use_fused and len(vectors) > 1:
            try:
                with self._lock, obs_trace.span(
                        "session.solve_many", num_rhs=len(vectors), mode="fused"):
                    results = self.krylov.lockstep(
                        self.problem.matrix,
                        vectors,
                        preconditioner=self.preconditioner,
                        initial_guess=x0,
                        tolerance=self.config.tolerance,
                        max_iterations=self.config.max_iterations,
                        **self._lockstep_stagnation_kwargs,
                    )
                    for column, result in enumerate(results):
                        self._stamp_info(result)
                        self._emit_iteration_events(result, column=column)
                        self._emit_terminal(result)
            except Exception as error:
                if not self.config.fallback:
                    raise
                # the whole lockstep sweep failed (e.g. the preconditioner
                # raised): route every right-hand side through the ladder
                results = [
                    self._degrade(row, x0, primary_result=None, primary_error=error)
                    for row in vectors
                ]
                return MultiSolveResult(
                    results=results,
                    elapsed_time=time.perf_counter() - start,
                    mode="sequential",
                )
            if self.config.fallback:
                # columns that individually failed (compacted out of the
                # lockstep batch with a failure_reason) re-solve on the ladder
                for i, result in enumerate(results):
                    if not result.converged:
                        results[i] = self._degrade(
                            vectors[i], x0, primary_result=result, primary_error=None
                        )
            return MultiSolveResult(
                results=results, elapsed_time=time.perf_counter() - start, mode="fused"
            )
        with self._lock, obs_trace.span(
                "session.solve_many", num_rhs=len(vectors), mode="sequential"):
            results = [self.solve(row, x0=x0) for row in vectors]
        return MultiSolveResult(
            results=results, elapsed_time=time.perf_counter() - start, mode="sequential"
        )

    # ------------------------------------------------------------------ #
    def march(
        self,
        u0: Optional[np.ndarray] = None,
        dt: Optional[float] = None,
        steps: int = 1,
        warm_start: bool = True,
        record_states: bool = False,
    ):
        """March a time-dependent problem ``steps`` θ-steps through this session.

        Requires the session to have been prepared over a
        :class:`~repro.timestepping.problem.TimeDependentProblem` (e.g.
        ``make_problem("heat")``); the constant step operator
        ``M/dt + θ·A`` is exactly the prepared operator, so setup is paid
        zero additional times and every step is a pure :meth:`solve`.
        Returns a :class:`~repro.timestepping.march.MarchResult` with one
        :class:`SolveResult` per step — bit-identical to issuing the same
        ``solve`` calls by hand.  See :func:`repro.timestepping.march.march`.
        """
        from ..timestepping.march import march as _march

        with obs_trace.span("session.march", steps=int(steps)):
            return _march(
                self, u0=u0, dt=dt, steps=steps,
                warm_start=warm_start, record_states=record_states,
            )

    def march_many(
        self,
        U0,
        dt: Optional[float] = None,
        steps: int = 1,
        mode: str = "auto",
        record_states: bool = False,
    ):
        """March independent trajectories in lockstep through :meth:`solve_many`.

        ``U0`` stacks the initial states as rows; each trajectory's result is
        bit-identical to ``march(u0=U0[j], warm_start=False)`` per the
        lockstep contract.  See :func:`repro.timestepping.march.march_many`.
        """
        from ..timestepping.march import march_many as _march_many

        return _march_many(
            self, U0, dt=dt, steps=steps, mode=mode, record_states=record_states,
        )

    # ------------------------------------------------------------------ #
    def __reduce__(self):
        """Pickle as a deterministic rebuild recipe, not as live state.

        A prepared session holds unpicklable objects (SuperLU
        factorisations, compiled inference plans), so pickling transports
        only the three ingredients that fully determine it — problem, config,
        model — and unpickling re-runs :func:`prepare`.  The partition seed
        lives on the config, so the rebuilt session is **bitwise-equivalent**:
        same fingerprint, same solve results.  This is what lets a sharded
        serving parent ship sessions to freshly restarted workers.
        """
        return (_rebuild_session, (self.problem, self.config.to_dict(), self.model))

    def fingerprint(self) -> str:
        """Content hash identifying this prepared session.

        Hashes ``(problem fingerprint, config hash, model/checkpoint
        content)`` via :func:`repro.solvers.fingerprint.session_key`: two
        sessions with equal fingerprints were prepared from bit-identical
        ingredients and serve bit-identical results.  This is the key under
        which :mod:`repro.serve` caches prepared sessions.
        """
        return session_key(self.problem, self.config, self.model)

    def clone_for_worker(self) -> "SolverSession":
        """A freshly prepared session over the same problem/config/model.

        The documented escape hatch for true intra-problem parallelism:
        solves on one session are serialised by its lock (shared scratch
        buffers), so a worker pool that wants concurrent solves of the *same*
        problem gives each worker its own clone.  The clone re-runs the setup
        (partition, factorisations, plan compilation) and therefore shares no
        mutable state — only the immutable problem and model objects.
        """
        return SolverSession(self.problem, self.config, model=self.model)

    # ------------------------------------------------------------------ #
    def diagnostics(self) -> Dict[str, object]:
        """Structured session diagnostics (setup stages, amortisation counters)."""
        info: Dict[str, object] = {
            "preconditioner_kind": self.config.preconditioner,
            "krylov": self.config.krylov,
            "num_setups": self.num_setups,
            "num_solves": self.num_solves,
            "setup_timings": dict(self.setup_timings),
            "total_solve_time": self.total_solve_time,
            "amortised_setup_s": self.setup_time / max(self.num_solves, 1),
            "num_degraded": self.num_degraded,
            "fallback": list(self.config.fallback),
            "rungs_prepared": [
                self.config.fallback[i] for i in sorted(self._rungs)
            ],
        }
        if self.decomposition is not None:
            info["num_subdomains"] = self.decomposition.num_subdomains
            info["overlap"] = self.config.overlap
        if isinstance(self.preconditioner, DDMGNNPreconditioner):
            info["gnn_stats"] = self.preconditioner.inference_stats()
        return info

    def summary(self) -> str:
        """One-line human-readable session summary."""
        return (
            f"SolverSession({self.config.preconditioner}+{self.config.krylov}, "
            f"n={self.problem.num_dofs}, setup {self.setup_time:.3f}s, "
            f"{self.num_solves} solve(s))"
        )


def _rebuild_session(problem: Problem, config_dict: Dict, model) -> "SolverSession":
    """Unpickling target of :meth:`SolverSession.__reduce__` (module-level
    so pickles resolve it by qualified name)."""
    return SolverSession(problem, SolverConfig.from_dict(config_dict), model=model)


def prepare(
    problem: Problem,
    config: Union[SolverConfig, Dict, None] = None,
    model=None,
) -> SolverSession:
    """Build a :class:`SolverSession`: all operator-dependent setup, once.

    Parameters
    ----------
    problem:
        Any :class:`~repro.fem.problem.Problem` (including every family from
        :func:`repro.problems.make_problem`).
    config:
        A :class:`~repro.solvers.config.SolverConfig`, a plain dict of its
        fields (parsed JSON), or None for the defaults.
    model:
        A trained :class:`~repro.gnn.dss.DSS` (required by ``ddm-gnn`` unless
        ``config.checkpoint`` points at a versioned checkpoint to load).
    """
    return SolverSession(problem, config, model=model)
