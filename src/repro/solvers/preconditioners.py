"""Built-in preconditioner factory registrations.

Each factory builds a :class:`~repro.ddm.asm.Preconditioner` from a problem
and a :class:`~repro.solvers.config.SolverConfig`.  Factories that need an
overlapping decomposition or a trained model declare it in their registry
spec, and :class:`~repro.solvers.session.SolverSession` provides (and times)
exactly those setup stages.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.ddm_gnn import DDMGNNPreconditioner
from ..ddm.asm import AdditiveSchwarzPreconditioner, IdentityPreconditioner
from ..ddm.local_solvers import JacobiLocalSolver
from ..fem.problem import Problem
from ..krylov.ic import IncompleteCholeskyPreconditioner
from ..partition.overlap import OverlappingDecomposition
from ..partition.partitioner import partition_mesh, partition_mesh_target_size
from .config import SolverConfig
from .registry import register_preconditioner

__all__ = []  # factories are consumed through the registry, not imported


@register_preconditioner(
    "ddm-gnn",
    description="Two-level DDM with batched DSS local solves (the paper's method)",
    needs_decomposition=True,
    needs_model=True,
)
def _build_ddm_gnn(
    problem: Problem,
    config: SolverConfig,
    decomposition: Optional[OverlappingDecomposition] = None,
    model=None,
) -> DDMGNNPreconditioner:
    return DDMGNNPreconditioner(
        problem.matrix,
        problem.mesh,
        decomposition,
        model,
        levels=config.levels,
        batch_size=config.gnn_batch_size,
        global_dirichlet_mask=getattr(problem, "dirichlet_mask", None),
        node_diffusion=getattr(problem, "node_diffusion", None),
        equilibrate=config.gnn_equilibrate,
        precision=config.precision,
    )


@register_preconditioner(
    "ddm-lu",
    description="Two-level Additive Schwarz with exact local LU solves (DDM-LU baseline)",
    needs_decomposition=True,
)
def _build_ddm_lu(
    problem: Problem,
    config: SolverConfig,
    decomposition: Optional[OverlappingDecomposition] = None,
    model=None,
) -> AdditiveSchwarzPreconditioner:
    return AdditiveSchwarzPreconditioner(problem.matrix, decomposition, levels=config.levels)


@register_preconditioner(
    "ddm-jacobi",
    description="Additive Schwarz with inexact Jacobi local sweeps",
    needs_decomposition=True,
)
def _build_ddm_jacobi(
    problem: Problem,
    config: SolverConfig,
    decomposition: Optional[OverlappingDecomposition] = None,
    model=None,
) -> AdditiveSchwarzPreconditioner:
    return AdditiveSchwarzPreconditioner(
        problem.matrix,
        decomposition,
        levels=config.levels,
        local_solver=JacobiLocalSolver(sweeps=config.jacobi_sweeps),
    )


@register_preconditioner(
    "ic0",
    description="Incomplete Cholesky IC(0) (paper Table III baseline)",
    spd_only=True,
)
def _build_ic0(
    problem: Problem,
    config: SolverConfig,
    decomposition: Optional[OverlappingDecomposition] = None,
    model=None,
) -> IncompleteCholeskyPreconditioner:
    return IncompleteCholeskyPreconditioner(problem.matrix)


@register_preconditioner(
    "none",
    description="No preconditioning (plain Krylov baseline)",
)
def _build_identity(
    problem: Problem,
    config: SolverConfig,
    decomposition: Optional[OverlappingDecomposition] = None,
    model=None,
) -> IdentityPreconditioner:
    return IdentityPreconditioner(problem.num_dofs)


def build_decomposition(problem: Problem, config: SolverConfig) -> OverlappingDecomposition:
    """Partition the problem's mesh per the config (the DDM setup stage)."""
    rng = np.random.default_rng(config.seed)
    if config.num_subdomains is not None:
        partition = partition_mesh(problem.mesh, config.num_subdomains, rng=rng)
    else:
        partition = partition_mesh_target_size(problem.mesh, config.subdomain_size, rng=rng)
    return OverlappingDecomposition(problem.mesh, partition, overlap=config.overlap)
