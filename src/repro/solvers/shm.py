"""Shared-memory array bundles: one copy of the big operators for N workers.

The sharded serving layer (:mod:`repro.serve.shard`) pre-forks worker
processes; without sharing, every worker would hold its own copy of the
problem's CSR arrays and the checkpoint weights — N× the setup RAM for
bit-identical bytes.  This module packs named numpy arrays into a single
:class:`multiprocessing.shared_memory.SharedMemory` segment with a
JSON-serialisable *manifest* (name → dtype/shape/offset), and attaches
zero-copy **read-only** views in other processes:

* :meth:`SharedArrayBundle.pack` — parent side: allocate one segment, copy
  each array in once (64-byte aligned), return the bundle + manifest.
* :meth:`SharedArrayBundle.attach` — worker side: map the segment by name
  and build ``np.frombuffer`` views; no bytes are copied, and the views are
  marked non-writeable so no worker can corrupt another's operator.
* :func:`problem_to_shm` / :func:`problem_from_shm` — a
  :class:`~repro.fem.problem.Problem` round trip that preserves the content
  :meth:`~repro.fem.problem.Problem.fingerprint` **bitwise** (same CSR
  bytes → same fingerprint → same session keys on both sides of the fork).
* :func:`model_to_shm` / :func:`model_from_shm` — DSS checkpoint weights;
  the rebuilt model binds its parameters directly onto the shared views
  (inference only reads weights), so N workers share one weight copy.

Ownership rules (documented in DESIGN.md): the process that called ``pack``
owns the segment and is the only one allowed to ``unlink`` it; attachers
``close`` their mapping when done.  On Python < 3.13 an attach would
register the segment with the resource tracker, which unlinks it when the
*attaching* process exits — :func:`_attach_untracked` suppresses that
registration so a worker restart can never tear the parent's segment down
(and, since forked workers share the parent's tracker, so a worker attach
can never clobber the parent's own registration).
"""

from __future__ import annotations

import dataclasses
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..fem.problem import Problem
from ..mesh.mesh import TriangularMesh

__all__ = [
    "SharedArrayBundle",
    "problem_to_shm",
    "problem_from_shm",
    "model_to_shm",
    "model_from_shm",
]

_ALIGN = 64

#: names of segments created (and therefore tracker-registered) by this
#: process — same-process attaches must not unregister the owner's claim
_OWNED_NAMES: set = set()

#: serialises the register-suppression window in :func:`_attach_untracked`
_ATTACH_LOCK = threading.Lock()


def _pad_to(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership."""
    if name in _OWNED_NAMES:
        # same-process attach: the owner's tracker registration must stand
        return shared_memory.SharedMemory(name=name)
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # Python >= 3.13
    except TypeError:
        pass
    # Python < 3.13: suppress the tracker *registration* instead of
    # unregistering afterwards.  Forked workers share the parent's tracker
    # process, so a worker-side unregister would delete the parent's claim
    # and the parent's own unlink() would then double-unregister (KeyError
    # noise in the tracker).  Attaches are serialised; packs never run
    # concurrently with attaches in the same process.
    with _ATTACH_LOCK:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


class SharedArrayBundle:
    """Named arrays in one shared-memory segment, with a portable manifest.

    Build with :meth:`pack` (owner) or :meth:`attach` (reader); access the
    arrays through :attr:`arrays`.  The bundle keeps the underlying
    ``SharedMemory`` alive for as long as any of its views are in use — hold
    a reference to the bundle alongside anything built from its arrays.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 manifest: Dict[str, object],
                 arrays: Dict[str, np.ndarray], owner: bool) -> None:
        self.shm = shm
        self.manifest = manifest
        self.arrays = arrays
        self.owner = owner
        self._closed = False

    # ------------------------------------------------------------------ #
    @classmethod
    def pack(cls, arrays: Dict[str, np.ndarray],
             meta: Optional[Dict[str, object]] = None) -> "SharedArrayBundle":
        """Copy ``arrays`` into one fresh segment (the calling process owns it)."""
        normalised: List[Tuple[str, np.ndarray]] = []
        for name, value in arrays.items():
            array = np.ascontiguousarray(value)
            if array.dtype.byteorder == ">":
                array = array.astype(array.dtype.newbyteorder("<"))
            if array.dtype == object:
                raise ValueError(f"array {name!r} has object dtype (not shareable)")
            normalised.append((str(name), array))

        entries: List[Dict[str, object]] = []
        cursor = 0
        for name, array in normalised:
            cursor = _pad_to(cursor)
            entries.append({
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": cursor,
            })
            cursor += array.nbytes
        total = max(cursor, 1)  # SharedMemory(size=0) is invalid

        shm = shared_memory.SharedMemory(create=True, size=total)
        views: Dict[str, np.ndarray] = {}
        for entry, (name, array) in zip(entries, normalised):
            view = np.frombuffer(
                shm.buf, dtype=np.dtype(str(entry["dtype"])),
                count=array.size, offset=int(entry["offset"]),
            ).reshape(array.shape)
            view[...] = array
            view.flags.writeable = False
            views[name] = view
        manifest = {
            "shm": shm.name,
            "total": total,
            "meta": dict(meta or {}),
            "arrays": entries,
        }
        _OWNED_NAMES.add(shm.name)
        return cls(shm, manifest, views, owner=True)

    @classmethod
    def attach(cls, manifest: Dict[str, object]) -> "SharedArrayBundle":
        """Map an existing segment by manifest; views are zero-copy, read-only."""
        shm = _attach_untracked(str(manifest["shm"]))
        views: Dict[str, np.ndarray] = {}
        for entry in manifest["arrays"]:
            dtype = np.dtype(str(entry["dtype"]))
            shape = tuple(int(dim) for dim in entry["shape"])
            count = 1
            for dim in shape:
                count *= dim
            view = np.frombuffer(
                shm.buf, dtype=dtype, count=count, offset=int(entry["offset"])
            ).reshape(shape)
            view.flags.writeable = False
            views[str(entry["name"])] = view
        return cls(shm, dict(manifest), views, owner=False)

    # ------------------------------------------------------------------ #
    @property
    def meta(self) -> Dict[str, object]:
        return self.manifest.get("meta", {})  # type: ignore[return-value]

    def close(self) -> None:
        """Drop the views and the mapping; owners also unlink the segment.

        After ``close`` the bundle's arrays (and anything still viewing
        them) are invalid — callers must ensure no views escape.
        """
        if self._closed:
            return
        self._closed = True
        self.arrays = {}
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - a view is still exported
            pass
        if self.owner:
            _OWNED_NAMES.discard(self.shm.name)
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass


# --------------------------------------------------------------------------- #
# Problem round trip
# --------------------------------------------------------------------------- #
def _pack_csr(arrays: Dict[str, np.ndarray], prefix: str, matrix: sp.csr_matrix) -> None:
    arrays[f"{prefix}_data"] = matrix.data
    arrays[f"{prefix}_indices"] = np.asarray(matrix.indices, dtype=np.int64)
    arrays[f"{prefix}_indptr"] = np.asarray(matrix.indptr, dtype=np.int64)


def _unpack_csr(arrays: Dict[str, np.ndarray], prefix: str, shape) -> sp.csr_matrix:
    return sp.csr_matrix(
        (arrays[f"{prefix}_data"], arrays[f"{prefix}_indices"], arrays[f"{prefix}_indptr"]),
        shape=tuple(shape), copy=False,
    )


def problem_to_shm(problem: Problem) -> SharedArrayBundle:
    """Pack a problem's operator arrays into shared memory.

    Only the :class:`~repro.fem.problem.Problem` fields the solver stack and
    :meth:`~repro.fem.problem.Problem.fingerprint` consume travel — subclass
    extras that cannot cross a process boundary (e.g. a
    ``DiffusionProblem``'s coefficient callable) are dropped.  Two problem
    shapes are preserved exactly: the mesh kind (triangular or tetrahedral
    cells) and :class:`~repro.timestepping.problem.TimeDependentProblem`'s
    step operators (mass, explicit operator, step load, initial state and
    the dt/θ scheme parameters), so a sharded worker can march the same
    trajectory the parent would.  The rebuilt problem's fingerprint is
    bit-equal to the original's.
    """
    from ..timestepping.problem import TimeDependentProblem

    matrix = problem.matrix.tocsr()
    stiffness = problem.stiffness.tocsr()
    cells = np.asarray(problem.mesh.cells, dtype=np.int64)
    arrays: Dict[str, np.ndarray] = {
        "rhs": problem.rhs,
        "nodes": problem.mesh.nodes,
        "cells": cells,
        "boundary_values": problem.boundary_values,
    }
    _pack_csr(arrays, "matrix", matrix)
    _pack_csr(arrays, "stiffness", stiffness)
    if problem.dirichlet_nodes is not None:
        arrays["dirichlet_nodes"] = np.asarray(problem.dirichlet_nodes, dtype=np.int64)
    if problem.node_diffusion is not None:
        arrays["node_diffusion"] = np.asarray(problem.node_diffusion, dtype=np.float64)
    meta = {
        "kind": "problem",
        "mesh_kind": "tet" if cells.shape[1] == 4 else "tri",
        "matrix_shape": list(matrix.shape),
        "stiffness_shape": list(stiffness.shape),
        "dirichlet_mode": problem.dirichlet_mode,
        "symmetric": bool(problem.symmetric),
        "fingerprint": problem.fingerprint(),
    }
    if isinstance(problem, TimeDependentProblem):
        mass = problem.mass.tocsr()
        explicit = problem.explicit_operator.tocsr()
        _pack_csr(arrays, "mass", mass)
        _pack_csr(arrays, "explicit", explicit)
        arrays["step_load"] = problem.step_load
        arrays["initial_state"] = problem.initial_state
        meta.update({
            "problem_kind": "time-dependent",
            "mass_shape": list(mass.shape),
            "explicit_shape": list(explicit.shape),
            "dt": float(problem.dt),
            "theta": float(problem.theta),
            "lumped_mass": bool(problem.lumped_mass),
        })
    return SharedArrayBundle.pack(arrays, meta=meta)


def problem_from_shm(manifest: Dict[str, object]) -> Problem:
    """Rebuild a problem over the shared views (operator bytes not copied).

    The CSR ``data`` arrays — the bulk of a problem's memory — stay in the
    shared segment; the rebuilt problem keeps its bundle alive via the
    ``_shm_bundle`` attribute.  The manifest's recorded fingerprint is
    verified against the rebuilt problem, so a torn or mismatched segment
    fails loudly instead of serving wrong operators.
    """
    bundle = SharedArrayBundle.attach(manifest)
    meta = bundle.meta
    if meta.get("kind") != "problem":
        bundle.close()
        raise ValueError(f"manifest is not a problem bundle (kind={meta.get('kind')!r})")
    a = bundle.arrays
    matrix = _unpack_csr(a, "matrix", meta["matrix_shape"])
    stiffness = _unpack_csr(a, "stiffness", meta["stiffness_shape"])
    cells = a.get("cells", a.get("triangles"))  # legacy manifests use "triangles"
    if meta.get("mesh_kind", "tri") == "tet":
        from ..mesh.tet import TetrahedralMesh

        mesh = TetrahedralMesh(nodes=a["nodes"], cells=cells)
    else:
        mesh = TriangularMesh(nodes=a["nodes"], triangles=cells)
    common = dict(
        mesh=mesh,
        matrix=matrix,
        rhs=a["rhs"],
        stiffness=stiffness,
        boundary_values=a["boundary_values"],
        dirichlet_mode=str(meta["dirichlet_mode"]),
        dirichlet_nodes=a.get("dirichlet_nodes"),
        node_diffusion=a.get("node_diffusion"),
        symmetric=bool(meta["symmetric"]),
    )
    if meta.get("problem_kind") == "time-dependent":
        from ..timestepping.problem import TimeDependentProblem

        problem = TimeDependentProblem(
            **common,
            mass=_unpack_csr(a, "mass", meta["mass_shape"]),
            explicit_operator=_unpack_csr(a, "explicit", meta["explicit_shape"]),
            step_load=a["step_load"],
            initial_state=a["initial_state"],
            dt=float(meta["dt"]),
            theta=float(meta["theta"]),
            lumped_mass=bool(meta["lumped_mass"]),
        )
    else:
        problem = Problem(**common)
    problem._shm_bundle = bundle  # keep the mapping alive with the problem
    expected = meta.get("fingerprint")
    if expected is not None and problem.fingerprint() != expected:
        bundle.close()
        raise ValueError(
            "shared-memory problem fingerprint mismatch: the rebuilt problem "
            "does not reproduce the packed operator"
        )
    return problem


# --------------------------------------------------------------------------- #
# Model (DSS checkpoint weights) round trip
# --------------------------------------------------------------------------- #
def model_to_shm(model) -> SharedArrayBundle:
    """Pack a DSS model's weights (and config) into shared memory.

    Requires ``state_dict()`` and a dataclass ``config`` (the DSS family);
    duck-typed test doubles without them should travel by pickle instead.
    """
    state_dict = getattr(model, "state_dict", None)
    config = getattr(model, "config", None)
    if not callable(state_dict) or config is None or not dataclasses.is_dataclass(config):
        raise ValueError(
            "model_to_shm needs a model with state_dict() and a dataclass "
            f"config, got {type(model).__name__}"
        )
    arrays = {name: np.asarray(value, dtype=np.float64)
              for name, value in state_dict().items()}
    meta = {"kind": "dss-model", "config": dataclasses.asdict(config)}
    return SharedArrayBundle.pack(arrays, meta=meta)


def model_from_shm(manifest: Dict[str, object]):
    """Rebuild a DSS whose parameters are the shared views (weights not copied).

    The parameters are bound directly onto the read-only shared arrays —
    inference only reads weights, so N worker processes reference one copy.
    The model hashes to the same
    :func:`~repro.solvers.fingerprint.model_fingerprint` as the original,
    keeping session keys identical across the process boundary.
    """
    from ..gnn.dss import DSS, DSSConfig

    bundle = SharedArrayBundle.attach(manifest)
    meta = bundle.meta
    if meta.get("kind") != "dss-model":
        bundle.close()
        raise ValueError(f"manifest is not a model bundle (kind={meta.get('kind')!r})")
    model = DSS(DSSConfig(**meta["config"]))
    own = dict(model.named_parameters())
    missing = set(own) - set(bundle.arrays)
    unexpected = set(bundle.arrays) - set(own)
    if missing or unexpected:
        bundle.close()
        raise ValueError(
            f"model bundle mismatch: missing={sorted(missing)} "
            f"unexpected={sorted(unexpected)}"
        )
    for name, param in own.items():
        view = bundle.arrays[name]
        if view.shape != param.data.shape:
            bundle.close()
            raise ValueError(
                f"shape mismatch for parameter {name!r}: "
                f"{view.shape} vs {param.data.shape}"
            )
        param.data = view
    model.eval()
    model._shm_bundle = bundle  # keep the mapping alive with the model
    return model
