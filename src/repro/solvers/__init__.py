"""Registry-driven solver sessions with amortised setup and multi-RHS serving.

This package is the solver surface of the repository — the ``setup``/``apply``
split of production preconditioner libraries, applied to the paper's hybrid
DDM-GNN solver:

* :func:`~repro.solvers.session.prepare` performs all operator-dependent
  setup exactly once (partitioning, local factorisations, coarse space,
  compiled DSS inference plans) and returns a
  :class:`~repro.solvers.session.SolverSession`;
* the session serves any number of right-hand sides through
  :meth:`~repro.solvers.session.SolverSession.solve` and
  :meth:`~repro.solvers.session.SolverSession.solve_many` with zero re-setup;
* Krylov methods (``cg``, ``gmres``, ``bicgstab``) and preconditioners
  (``ddm-gnn``, ``ddm-lu``, ``ddm-jacobi``, ``ic0``, ``none``) are resolved
  by name through decorator registries mirroring
  :mod:`repro.problems.registry`, so new methods plug in with no call-site
  changes;
* :class:`~repro.solvers.config.SolverConfig` round-trips through dict/JSON
  and is the single construction path shared by the experiment harness, the
  benchmarks and the checkpoint loaders.

Typical usage::

    from repro.solvers import SolverConfig, prepare

    session = prepare(problem, SolverConfig(preconditioner="ddm-lu",
                                            krylov="gmres", tolerance=1e-8))
    result = session.solve()              # first RHS (setup already paid)
    batch = session.solve_many(B)         # 16 more RHS, zero re-setup

:class:`repro.core.HybridSolver` remains as a thin backwards-compatible shim
over a session.
"""

from . import methods, preconditioners  # noqa: F401  (populate the registries)
from .config import SolverConfig
from .fingerprint import checkpoint_fingerprint, model_fingerprint, session_key
from .registry import (
    KrylovSpec,
    PreconditionerSpec,
    available_krylov_methods,
    available_preconditioners,
    krylov_spec,
    preconditioner_spec,
    register_krylov,
    register_preconditioner,
)
from .session import MultiSolveResult, SolverSession, prepare
from .shm import (
    SharedArrayBundle,
    model_from_shm,
    model_to_shm,
    problem_from_shm,
    problem_to_shm,
)

__all__ = [
    "SolverConfig",
    "SolverSession",
    "MultiSolveResult",
    "prepare",
    "SharedArrayBundle",
    "problem_to_shm",
    "problem_from_shm",
    "model_to_shm",
    "model_from_shm",
    "register_krylov",
    "register_preconditioner",
    "krylov_spec",
    "preconditioner_spec",
    "KrylovSpec",
    "PreconditionerSpec",
    "available_krylov_methods",
    "available_preconditioners",
    "session_key",
    "model_fingerprint",
    "checkpoint_fingerprint",
]
