"""Decorator registries for Krylov methods and preconditioner factories.

These mirror :mod:`repro.problems.registry`: solver components are requested
by name, and new methods plug in with a decorator — no call-site changes in
the session layer, the benchmarks or the experiment harness.

Two registries live here:

* **Krylov methods** (``cg``, ``gmres``, ``bicgstab``): a method is a callable
  ``solve(matrix, rhs, preconditioner=None, initial_guess=None,
  tolerance=..., max_iterations=None, **kwargs) -> SolveResult``.  Extra
  keyword arguments (e.g. GMRES ``restart``) flow in through
  :attr:`~repro.solvers.config.SolverConfig.krylov_kwargs`.
* **Preconditioner factories** (``ddm-gnn``, ``ddm-lu``, ``ddm-jacobi``,
  ``ic0``, ``none``): a factory is a callable
  ``build(problem, config, *, decomposition=None, model=None) ->
  Preconditioner``.  The spec declares what the factory needs
  (``needs_decomposition``, ``needs_model``) so the session builds exactly
  the setup stages the method requires — ``ic0`` never partitions a mesh,
  ``ddm-lu`` never loads a DSS checkpoint.

Registering and looking up:

>>> from repro.solvers import available_krylov_methods, available_preconditioners
>>> [m for m in ("cg", "gmres", "bicgstab") if m in available_krylov_methods()]
['cg', 'gmres', 'bicgstab']
>>> sorted(set(available_preconditioners()) & {"ddm-gnn", "ddm-lu", "ic0"})
['ddm-gnn', 'ddm-lu', 'ic0']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "KrylovSpec",
    "PreconditionerSpec",
    "register_krylov",
    "register_preconditioner",
    "krylov_spec",
    "preconditioner_spec",
    "available_krylov_methods",
    "available_preconditioners",
]

#: solve(matrix, rhs, preconditioner=..., initial_guess=..., tolerance=...,
#: max_iterations=..., **kwargs) -> SolveResult
KrylovSolve = Callable[..., object]
#: build(problem, config, *, decomposition=None, model=None) -> Preconditioner
PreconditionerFactory = Callable[..., object]


def _summary(description: str, obj: object) -> str:
    """An explicit description, or the first docstring line of the callable."""
    if description:
        return description
    doc = (getattr(obj, "__doc__", None) or "").strip()
    return doc.splitlines()[0] if doc else ""


@dataclass(frozen=True)
class KrylovSpec:
    """Registry entry for one Krylov method."""

    name: str
    solve: KrylovSolve
    description: str = ""
    #: True when the method assumes a symmetric (SPD) operator, e.g. CG.
    symmetric_only: bool = False
    default_kwargs: Dict[str, object] = field(default_factory=dict)
    #: optional fused multi-RHS implementation
    #: ``lockstep(matrix, rhs_batch, preconditioner=..., initial_guess=...,
    #: tolerance=..., max_iterations=...) -> List[SolveResult]`` whose per-RHS
    #: results are bit-identical to ``solve`` run on each RHS alone; used by
    #: ``SolverSession.solve_many`` and the request micro-batching in
    #: :mod:`repro.serve`
    lockstep: Optional[Callable[..., object]] = None


@dataclass(frozen=True)
class PreconditionerSpec:
    """Registry entry for one preconditioner factory."""

    name: str
    build: PreconditionerFactory
    description: str = ""
    #: the factory consumes an overlapping mesh decomposition (DDM family)
    needs_decomposition: bool = False
    #: the factory consumes a trained model (or a checkpoint to load one from)
    needs_model: bool = False
    #: the method is only valid on symmetric (SPD) operators, e.g. IC(0)
    spd_only: bool = False


_KRYLOV: Dict[str, KrylovSpec] = {}
_PRECONDITIONERS: Dict[str, PreconditionerSpec] = {}


def register_krylov(
    name: str,
    description: str = "",
    symmetric_only: bool = False,
    lockstep: Optional[Callable[..., object]] = None,
    **default_kwargs,
) -> Callable[[KrylovSolve], KrylovSolve]:
    """Decorator registering a Krylov method under ``name``.

    ``default_kwargs`` are merged under the caller's ``krylov_kwargs`` at
    solve time, so one implementation can be registered under several names
    with different presets.  ``lockstep`` optionally attaches a fused
    multi-RHS implementation (see :class:`KrylovSpec`).
    """

    def decorator(solve: KrylovSolve) -> KrylovSolve:
        if name in _KRYLOV:
            raise ValueError(f"Krylov method '{name}' is already registered")
        _KRYLOV[name] = KrylovSpec(
            name=name,
            solve=solve,
            description=_summary(description, solve),
            symmetric_only=symmetric_only,
            default_kwargs=dict(default_kwargs),
            lockstep=lockstep,
        )
        return solve

    return decorator


def register_preconditioner(
    name: str,
    description: str = "",
    needs_decomposition: bool = False,
    needs_model: bool = False,
    spd_only: bool = False,
) -> Callable[[PreconditionerFactory], PreconditionerFactory]:
    """Decorator registering a preconditioner factory under ``name``."""

    def decorator(build: PreconditionerFactory) -> PreconditionerFactory:
        if name in _PRECONDITIONERS:
            raise ValueError(f"preconditioner '{name}' is already registered")
        _PRECONDITIONERS[name] = PreconditionerSpec(
            name=name,
            build=build,
            description=_summary(description, build),
            needs_decomposition=needs_decomposition,
            needs_model=needs_model,
            spd_only=spd_only,
        )
        return build

    return decorator


def available_krylov_methods() -> List[str]:
    """Sorted names of every registered Krylov method."""
    return sorted(_KRYLOV)


def available_preconditioners() -> List[str]:
    """Sorted names of every registered preconditioner factory."""
    return sorted(_PRECONDITIONERS)


def krylov_spec(name: str) -> KrylovSpec:
    """The :class:`KrylovSpec` registered under ``name``.

    Raises :class:`ValueError` (not ``KeyError``) on unknown names so solver
    construction surfaces a configuration error uniformly.
    """
    try:
        return _KRYLOV[name]
    except KeyError:
        raise ValueError(
            f"unknown Krylov method '{name}'; available: {', '.join(available_krylov_methods())}"
        ) from None


def preconditioner_spec(name: str) -> PreconditionerSpec:
    """The :class:`PreconditionerSpec` registered under ``name``."""
    try:
        return _PRECONDITIONERS[name]
    except KeyError:
        raise ValueError(
            f"unknown preconditioner kind '{name}'; "
            f"available: {', '.join(available_preconditioners())}"
        ) from None
