"""Deep Statistical Solver model (paper Sec. II-B and III-B, Fig. 3).

``DSSθ`` maps a graph-structured Poisson problem to an approximate solution:

1. the latent state ``H⁰`` (n × d) is initialised to zero;
2. k̄ *distinct* message-passing blocks update the latent state
   (Eqs. 18–21), each damped by ``α``;
3. after every iteration a per-iteration decoder produces an intermediate
   physical state; the last one is the model output (Eq. 22), and training
   minimises the sum of the residual losses of all intermediate states
   (Eq. 23).

The model is size-agnostic: the same weights apply to graphs of any number of
nodes, which is what allows the DDM-GNN preconditioner to handle sub-domains
of 500–2000 nodes with a model trained on 1000-node sub-domains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..nn.modules import Module
from ..nn.tensor import Tensor, no_grad
from .batch import BatchPlan, GraphBatch, _pad_columns
from .graph import GraphProblem
from .infer import InferencePlan
from .loss import residual_loss
from .mpnn import Decoder, DSSBlock

__all__ = ["DSSConfig", "DSS"]


@dataclass(frozen=True)
class DSSConfig:
    """Hyper-parameters of a DSS model.

    ``num_iterations`` is the paper's k̄ and ``latent_dim`` its d; the paper's
    reference configuration is k̄=30, d=10 with α=1e-3.

    ``edge_attr_dim`` / ``node_input_dim`` size the feature inputs of every
    message-passing block.  The defaults (3 geometric edge attributes, the
    scalar residual as node input) reproduce the paper exactly; κ-aware
    models for heterogeneous problems use ``edge_attr_dim=4`` (adds the log
    harmonic-mean κ of each edge) and ``node_input_dim=2`` (adds log κ per
    node).  Graphs carrying more features than the model consumes are
    truncated, and missing κ features are zero-filled (log κ = 0, i.e. κ = 1),
    so models and graphs mix freely.
    """

    num_iterations: int = 30
    latent_dim: int = 10
    alpha: float = 1e-3
    seed: int = 0
    edge_attr_dim: int = 3
    node_input_dim: int = 1

    def __post_init__(self) -> None:
        if self.num_iterations < 1:
            raise ValueError("num_iterations must be >= 1")
        if self.latent_dim < 1:
            raise ValueError("latent_dim must be >= 1")
        if self.edge_attr_dim < 3:
            raise ValueError("edge_attr_dim must be >= 3 (dx, dy, distance)")
        if self.node_input_dim < 1:
            raise ValueError("node_input_dim must be >= 1 (the residual channel)")


class DSS(Module):
    """The Deep Statistical Solver graph neural network."""

    def __init__(self, config: DSSConfig = DSSConfig()) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.blocks: List[DSSBlock] = []
        self.decoders: List[Decoder] = []
        for k in range(config.num_iterations):
            block = DSSBlock(
                config.latent_dim,
                alpha=config.alpha,
                rng=rng,
                edge_attr_dim=config.edge_attr_dim,
                node_input_dim=config.node_input_dim,
            )
            decoder = Decoder(config.latent_dim, rng=rng)
            setattr(self, f"block_{k}", block)
            setattr(self, f"decoder_{k}", decoder)
            self.blocks.append(block)
            self.decoders.append(decoder)

    # ------------------------------------------------------------------ #
    # forward passes
    # ------------------------------------------------------------------ #
    def forward(
        self,
        problem: Union[GraphProblem, GraphBatch, BatchPlan],
        return_intermediate: bool = False,
    ) -> Union[Tensor, List[Tensor]]:
        """Run the full iterative architecture on a graph (or batch of graphs).

        Returns the final decoded state (n, 1), or the list of all k̄
        intermediate decoded states when ``return_intermediate`` is True
        (needed by the training loss, Eq. 23).
        """
        num_nodes = problem.num_nodes
        edge_index = problem.edge_index
        edge_attr = self._prepare_edge_attr(problem.edge_attr)
        node_input = Tensor(self._prepare_node_input(problem))

        latent = Tensor(np.zeros((num_nodes, self.config.latent_dim)))
        outputs: List[Tensor] = []
        for block, decoder in zip(self.blocks, self.decoders):
            latent = block(latent, node_input, edge_index, edge_attr)
            if return_intermediate:
                outputs.append(decoder(latent))
        if return_intermediate:
            return outputs
        return self.decoders[-1](latent)

    # ------------------------------------------------------------------ #
    # feature preparation (κ-aware ↔ κ-unaware interoperability)
    # ------------------------------------------------------------------ #
    def _prepare_edge_attr(self, edge_attr: np.ndarray) -> np.ndarray:
        """Truncate or zero-pad edge attributes to the configured width."""
        want = self.config.edge_attr_dim
        if edge_attr.shape[1] >= want:
            return edge_attr[:, :want]
        return _pad_columns(edge_attr, want)

    def _prepare_node_input(self, problem: Union[GraphProblem, GraphBatch, BatchPlan]) -> np.ndarray:
        """Stack the residual channel with extra node features (zero-padded)."""
        want = self.config.node_input_dim
        source = problem.source.reshape(-1, 1)
        if want == 1:
            return source
        node_attr = problem.node_attr
        features = source if node_attr is None else np.hstack([source, node_attr])
        if features.shape[1] >= want:
            return features[:, :want]
        return _pad_columns(features, want)

    # ------------------------------------------------------------------ #
    # convenience inference / training helpers
    # ------------------------------------------------------------------ #
    def predict(self, problem: Union[GraphProblem, GraphBatch, BatchPlan]) -> np.ndarray:
        """Inference without building the autodiff graph; returns a flat array."""
        with no_grad():
            out = self.forward(problem, return_intermediate=False)
        return out.numpy().ravel()

    def predict_batched(self, graphs: Sequence[GraphProblem], batch_size: Optional[int] = None) -> List[np.ndarray]:
        """Solve many local problems, batching them ``batch_size`` at a time.

        This mirrors the paper's splitting of the K local problems into Nb
        batches when they do not all fit in one inference call.
        """
        graphs = list(graphs)
        if not graphs:
            return []
        batch_size = batch_size if batch_size is not None else len(graphs)
        # feature widths scanned once for the whole population, not per chunk
        edge_dim, node_dim = GraphBatch.feature_dims(graphs)
        results: List[np.ndarray] = []
        for start in range(0, len(graphs), batch_size):
            chunk = graphs[start:start + batch_size]
            batch = GraphBatch.from_graphs(chunk, edge_attr_dim=edge_dim, node_attr_dim=node_dim)
            values = self.predict(batch)
            results.extend(batch.split_node_values(values))
        return results

    # ------------------------------------------------------------------ #
    # allocation-free inference engine (the solver hot path)
    # ------------------------------------------------------------------ #
    def compile_plan(
        self, batch: Union[GraphBatch, BatchPlan], precision: str = "f64"
    ) -> InferencePlan:
        """Precompile a batch into an :class:`~repro.gnn.infer.InferencePlan`.

        All structure (edge index, padded attributes, feature preparation) and
        every forward-pass buffer are fixed once; subsequent
        :meth:`infer` calls only rewrite the per-node source.  ``precision``
        selects the staging dtype of the plan: ``"f64"`` (default, pinned to
        the tape forward) or ``"f32"`` (half the memory traffic; sources and
        outputs are cast at the plan boundary).
        """
        return InferencePlan(self, batch, precision=precision)

    def infer(self, plan: InferencePlan, source: Optional[np.ndarray] = None) -> np.ndarray:
        """Run the forward pass on a precompiled plan, without the tape.

        Numerically pinned to :meth:`predict` on the same batch (parity at
        1e-12) but allocation- and loop-free per call.  The returned array is
        a view of a plan buffer, overwritten by the next call on this plan.
        """
        if source is not None:
            plan.load_source(source)
        return plan.run()

    def infer_columns(self, plan: InferencePlan, sources: np.ndarray) -> np.ndarray:
        """Run one forward pass for ``k`` source columns on a precompiled plan.

        ``sources`` is ``(num_nodes, k)``; the result is ``(num_nodes, k)``
        with column ``c`` bit-identical (at plan precision ``"f64"``) to
        ``infer(plan, source=sources[:, c])``.  One sweep over the network
        serves every column: the gathers and the aggregation SpMM fuse across
        columns, which is what the lockstep multi-RHS solver batches on.  The
        returned array is a view of a per-``k`` workspace, overwritten by the
        next ``infer_columns`` with the same column count.
        """
        workspace = plan.load_source_columns(sources)
        return plan.run_columns(workspace.k)

    def training_loss(self, problem: Union[GraphProblem, GraphBatch]) -> Tensor:
        """Sum of the residual losses of all intermediate states (paper Eq. 23)."""
        intermediates = self.forward(problem, return_intermediate=True)
        total = residual_loss(intermediates[0], problem)
        for out in intermediates[1:]:
            total = total + residual_loss(out, problem)
        return total

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        cfg = self.config
        return (
            f"DSS(k̄={cfg.num_iterations}, d={cfg.latent_dim}, α={cfg.alpha}, "
            f"weights={self.num_parameters()})"
        )
