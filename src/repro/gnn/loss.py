"""Physics-informed residual loss of the Deep Statistical Solver (paper Eq. 11).

``L_res(u, G) = 1/n Σ_i ( −c_i + Σ_j a_ij u_j )²``

The loss is evaluated with the *local* sparse operator of each graph (or the
block-diagonal operator of a batch), differentiable through the autodiff
engine's sparse matvec.  No ground-truth solutions are needed, which is what
lets the dataset be harvested directly from PCG iterations.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..nn.functional import sparse_matvec
from ..nn.tensor import Tensor
from .batch import GraphBatch
from .graph import GraphProblem

__all__ = ["residual_loss", "relative_error"]


def residual_loss(prediction: Tensor, problem: Union[GraphProblem, GraphBatch]) -> Tensor:
    """Mean-squared residual of a predicted state on a graph problem or a batch.

    ``prediction`` has shape (n, 1) or (n,); the result is a scalar tensor.
    """
    if isinstance(problem, GraphBatch):
        matrix = problem.block_diagonal_matrix()
        target = problem.source
    else:
        if problem.matrix is None:
            raise ValueError("graph problem carries no matrix; cannot evaluate the residual loss")
        matrix = problem.matrix
        target = problem.source

    flat = prediction.reshape(prediction.shape[0]) if prediction.ndim == 2 else prediction
    residual = sparse_matvec(matrix, flat) - Tensor(target)
    return (residual * residual).mean()


def relative_error(prediction: np.ndarray, exact: np.ndarray) -> float:
    """Relative L2 error ‖u − u*‖ / ‖u*‖ (paper's 'Relative Error' metric)."""
    prediction = np.asarray(prediction, dtype=np.float64).ravel()
    exact = np.asarray(exact, dtype=np.float64).ravel()
    denom = np.linalg.norm(exact)
    if denom == 0.0:
        return float(np.linalg.norm(prediction))
    return float(np.linalg.norm(prediction - exact) / denom)
