"""Disjoint-union batching of graph problems (PyTorch Geometric ``Batch`` substitute).

Batching K sub-domain graphs into one big block-diagonal graph lets a single
DSS forward pass solve *all* local problems at once — this is how the paper
exploits GPU parallelism ("all subdomains are solved simultaneously in one
inference of DSSθ", Eq. 14).  Here the same trick turns K small NumPy
computations into one large vectorised computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .graph import GraphProblem

__all__ = ["GraphBatch", "BatchPlan"]


def _pad_columns(array: np.ndarray, width: int) -> np.ndarray:
    """Zero-pad a 2-D feature array on the right to ``width`` columns."""
    if array.shape[1] == width:
        return array
    if array.shape[1] > width:
        raise ValueError(f"cannot pad a {array.shape[1]}-column array to {width} columns")
    padded = np.zeros((array.shape[0], width))
    padded[:, : array.shape[1]] = array
    return padded


@dataclass
class GraphBatch:
    """A disjoint union of :class:`GraphProblem` objects.

    Node arrays are concatenated; edge indices are shifted by the cumulative
    node offsets so each sub-graph keeps to itself.  ``node_graph_index`` maps
    every node of the batch back to its source graph, allowing the results to
    be split again after inference.
    """

    graphs: List[GraphProblem]
    positions: np.ndarray
    edge_index: np.ndarray
    edge_attr: np.ndarray
    source: np.ndarray
    dirichlet_mask: np.ndarray
    node_offsets: np.ndarray
    node_graph_index: np.ndarray
    node_attr: Optional[np.ndarray] = None

    @classmethod
    def from_graphs(
        cls,
        graphs: Sequence[GraphProblem],
        edge_attr_dim: Optional[int] = None,
        node_attr_dim: Optional[int] = None,
    ) -> "GraphBatch":
        """Concatenate ``graphs`` into one disjoint-union batch.

        ``edge_attr_dim`` / ``node_attr_dim`` let callers that batch the same
        graph population repeatedly (preconditioner setup, the training chunk
        loop) pass the feature widths once instead of re-scanning every graph
        with ``max()`` on each call; ``node_attr_dim=0`` states explicitly
        that no graph carries node attributes.
        """
        if not graphs:
            raise ValueError("cannot batch an empty list of graphs")
        sizes = np.array([g.num_nodes for g in graphs], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        positions = np.vstack([g.positions for g in graphs])
        edge_index = np.hstack(
            [g.edge_index + offsets[i] for i, g in enumerate(graphs)]
        ) if any(g.num_edges for g in graphs) else np.zeros((2, 0), dtype=np.int64)
        # graphs may mix κ-aware (4-column) and plain (3-column) edge
        # attributes; zero-pad to the widest (log10 κ = 0 means κ = 1)
        if edge_attr_dim is None:
            edge_attr_dim = max(g.edge_attr.shape[1] for g in graphs)
        edge_attr = (
            np.vstack([_pad_columns(g.edge_attr, edge_attr_dim) for g in graphs])
            if edge_index.shape[1]
            else np.zeros((0, edge_attr_dim))
        )
        source = np.concatenate([g.source for g in graphs])
        dirichlet = np.concatenate([g.dirichlet_mask for g in graphs])
        node_graph_index = np.repeat(np.arange(len(graphs)), sizes)
        # κ node features: zero-fill graphs that carry none instead of
        # silently dropping the feature for the whole batch
        if node_attr_dim is None:
            node_attr_dim = (
                max(g.node_attr.shape[1] for g in graphs if g.node_attr is not None)
                if any(g.node_attr is not None for g in graphs)
                else 0
            )
        node_attr = None
        if node_attr_dim:
            node_attr = np.vstack([
                _pad_columns(g.node_attr, node_attr_dim)
                if g.node_attr is not None
                else np.zeros((g.num_nodes, node_attr_dim))
                for g in graphs
            ])
        return cls(
            graphs=list(graphs),
            positions=positions,
            edge_index=edge_index,
            edge_attr=edge_attr,
            source=source,
            dirichlet_mask=dirichlet,
            node_offsets=offsets,
            node_graph_index=node_graph_index,
            node_attr=node_attr,
        )

    @staticmethod
    def feature_dims(graphs: Sequence) -> tuple:
        """``(edge_attr_dim, node_attr_dim)`` of a graph population, scanned once.

        Accepts any objects carrying ``edge_attr``/``node_attr`` arrays
        (:class:`GraphProblem`, :class:`~repro.core.dataset.SubdomainGeometry`).
        Feed the result back into :meth:`from_graphs` when batching subsets of
        the same population repeatedly.
        """
        edge_dim = max(g.edge_attr.shape[1] for g in graphs)
        node_dim = (
            max(g.node_attr.shape[1] for g in graphs if g.node_attr is not None)
            if any(g.node_attr is not None for g in graphs)
            else 0
        )
        return edge_dim, node_dim

    # ------------------------------------------------------------------ #
    @property
    def num_graphs(self) -> int:
        return len(self.graphs)

    @property
    def num_nodes(self) -> int:
        return int(self.positions.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    # ------------------------------------------------------------------ #
    def split_node_values(self, values: np.ndarray) -> List[np.ndarray]:
        """Split a per-node array of the batch back into per-graph arrays."""
        values = np.asarray(values)
        return [
            values[self.node_offsets[i]:self.node_offsets[i + 1]]
            for i in range(self.num_graphs)
        ]

    def block_diagonal_matrix(self) -> sp.csr_matrix:
        """Block-diagonal operator ``diag(A_1, ..., A_K)`` of the batched graphs.

        Requires every member graph to carry its local matrix; used by the
        physics-informed loss so the whole batch residual is one sparse matvec.
        The assembled operator is cached: the training loss evaluates it once
        per message-passing iteration (Eq. 23) on the same batch.
        """
        cached = getattr(self, "_block_matrix", None)
        if cached is not None:
            return cached
        blocks = []
        for g in self.graphs:
            if g.matrix is None:
                raise ValueError("all graphs in the batch need a matrix for the residual loss")
            blocks.append(g.matrix)
        matrix = sp.block_diag(blocks, format="csr")
        object.__setattr__(self, "_block_matrix", matrix)
        return matrix

    def as_single_graph(self) -> GraphProblem:
        """View the whole batch as one :class:`GraphProblem` (no matrix attached)."""
        return GraphProblem(
            positions=self.positions,
            edge_index=self.edge_index,
            edge_attr=self.edge_attr,
            source=self.source,
            dirichlet_mask=self.dirichlet_mask,
            node_attr=self.node_attr,
        )

    def compile_plan(self) -> "BatchPlan":
        """Freeze this batch into a :class:`BatchPlan` for iteration-time reuse."""
        return BatchPlan.from_batch(self)


@dataclass
class BatchPlan:
    """Precompiled, residual-independent description of a fixed graph batch.

    Everything about a batch that a Krylov solve reuses on every
    preconditioner application — the concatenated edge index, the padded
    node/edge attributes, the Dirichlet mask, the segment offsets, the
    feature widths — is computed once here.  The only mutable piece of state
    is the preallocated ``source`` buffer: :meth:`load_source` scatters the
    current normalised local residuals into it, and no per-iteration
    ``GraphProblem``/``GraphBatch`` construction happens at all.

    The field layout is duck-compatible with :class:`GraphBatch` (``source``,
    ``edge_index``, ``edge_attr``, ``node_attr``, ``num_nodes``), so a plan
    can be fed straight to ``DSS.forward`` — the parity tests pin the
    allocation-free engine against exactly that tape forward.

    The directed edges are re-sorted by destination node (a stable sort, so
    the graph is unchanged up to summation order of the incoming messages):
    gathers and aggregations indexed by destination then walk memory almost
    sequentially, and the engine's aggregation SpMM gets contiguous rows.
    """

    edge_index: np.ndarray
    edge_attr: np.ndarray
    dirichlet_mask: np.ndarray
    node_offsets: np.ndarray
    node_graph_index: np.ndarray
    source: np.ndarray
    node_attr: Optional[np.ndarray] = None
    edge_attr_dim: int = 0
    node_attr_dim: int = 0

    @classmethod
    def from_batch(cls, batch: GraphBatch) -> "BatchPlan":
        order = np.argsort(batch.edge_index[1], kind="stable")
        return cls(
            edge_index=np.ascontiguousarray(batch.edge_index[:, order]),
            edge_attr=np.ascontiguousarray(batch.edge_attr[order]),
            dirichlet_mask=batch.dirichlet_mask,
            node_offsets=batch.node_offsets,
            node_graph_index=batch.node_graph_index,
            source=np.zeros(batch.num_nodes),
            node_attr=batch.node_attr,
            edge_attr_dim=int(batch.edge_attr.shape[1]),
            node_attr_dim=0 if batch.node_attr is None else int(batch.node_attr.shape[1]),
        )

    @property
    def num_graphs(self) -> int:
        return int(len(self.node_offsets) - 1)

    @property
    def num_nodes(self) -> int:
        return int(self.source.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    def load_source(self, values: np.ndarray) -> None:
        """Copy the current per-node inputs into the preallocated buffer."""
        values = np.asarray(values)
        if values.shape != self.source.shape:
            raise ValueError(
                f"source must have shape {self.source.shape} (one value per stacked "
                f"node), got {values.shape}; multi-column sources go through "
                f"InferencePlan.load_source_columns"
            )
        self.source[...] = values

    def split_node_values(self, values: np.ndarray) -> List[np.ndarray]:
        """Split a per-node array of the batch back into per-graph views."""
        values = np.asarray(values)
        return [
            values[self.node_offsets[i]:self.node_offsets[i + 1]]
            for i in range(self.num_graphs)
        ]
