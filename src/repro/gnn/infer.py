"""Allocation-free DSS inference engine.

``DSS.forward`` runs through the autodiff :class:`~repro.nn.tensor.Tensor`
machinery: even under ``no_grad`` every operation allocates fresh arrays and
Python wrapper objects, and every message-passing block re-copies the reversed
edge attributes.  Inside a Krylov solve the same batch of sub-domain graphs is
evaluated hundreds of times with only the per-node source changing, so all of
that per-call work is invariant.

:class:`InferencePlan` binds a structural :class:`~repro.gnn.batch.BatchPlan`
to one model and precompiles everything the forward pass reuses:

* **per-node projections** — the hidden edge layer ``W₁ [h_dst | h_src | e]``
  is split along its disjoint weight column blocks; the latent parts become
  two ``(n × d)`` GEMMs *before* gathering to edges, shrinking the dominant
  GEMM from ``E`` rows × ``2d+|e|`` columns to ``n`` rows × ``d``;
* **static edge terms** — the attribute contribution ``e @ W₁ₑᵀ + b₁`` of
  every block and direction depends only on the (fixed) edge attributes, so
  it is evaluated once at compile time (falling back to on-the-fly
  evaluation above a memory budget);
* **aggregate-then-project** — summing messages onto destination nodes is a
  single CSR SpMM with a precomputed ``(n × E)`` incidence operator ``S``,
  and because aggregation is linear the output layer commutes with it:
  ``S (H W₂ᵀ + b₂) = (S H) W₂ᵀ + deg ⊗ b₂``, so the output GEMM runs on
  ``n`` rows instead of ``E`` (the per-node bias term ``deg ⊗ b₂`` is
  precompiled);
* **prestaged weights and buffer reuse** — all weight matrices are stored as
  contiguous transposes (what the GEMMs actually consume) and every GEMM runs
  with ``out=`` into persistent scratch; the latent state, node input and
  both aggregation targets are column views of the single ``ψ``-input
  matrix, so writing an aggregation result *is* preparing the next MLP input.

Splitting dot products into partial sums and re-ordering commutative message
sums only moves floating-point results at the few-ulp level; the parity tests
pin ``DSS.infer`` to the tape forward at 1e-12, orders of magnitude tighter
than anything visible to the preconditioned solver.

Because the weights are prestaged, a plan captures the model parameters *at
compile time*: recompile after any further training or ``load_state_dict``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np
import scipy.sparse as sp

from .batch import BatchPlan, GraphBatch

__all__ = ["InferencePlan"]

#: cap on the total memory (bytes) spent on precomputed static edge terms;
#: above it they are recomputed per iteration (one small GEMM) instead
STATIC_EDGE_TERM_BUDGET = 96 * 1024 * 1024

def _validated_csr_matvecs():
    """The private scipy kernel for allocation-free CSR SpMM (``Y += A @ X``).

    ``scipy.sparse._sparsetools.csr_matvecs`` has been stable for many years,
    but it is private: guard not just against it disappearing but against a
    signature/semantics change, by checking it once against the public
    operator on a tiny fixed matrix.  Returns None (public ``@`` fallback)
    when anything is off.
    """
    try:
        from scipy.sparse import _sparsetools

        kernel = _sparsetools.csr_matvecs
        matrix = sp.csr_matrix(np.array([[1.0, 0.0, 2.0], [0.0, 3.0, 0.0]]))
        x = np.arange(6.0).reshape(3, 2)
        y = np.zeros((2, 2))
        kernel(
            matrix.shape[0], matrix.shape[1], x.shape[1],
            matrix.indptr, matrix.indices, matrix.data,
            x.ravel(), y.ravel(),
        )
        if not np.array_equal(y, matrix @ x):
            return None
        return kernel
    except Exception:  # pragma: no cover - old/exotic scipy
        return None


_csr_matvecs = _validated_csr_matvecs()


@dataclass
class _CompiledDirection:
    """Prestaged arrays for one message direction of one block."""

    w_dst_T: np.ndarray            # (d, d) — latent-of-destination weight block, transposed
    w_src_T: np.ndarray            # (d, d) — latent-of-source weight block, transposed
    w_out_T: np.ndarray            # (d, d) — output layer, transposed
    agg_bias: Optional[np.ndarray]  # (n, d) — in-degree ⊗ output bias
    static: Optional[np.ndarray]   # (E, d) — attr @ W₁ₑᵀ + b₁, if within budget
    w_attr_T: Optional[np.ndarray] = None   # fallback pieces when static is None
    attr: Optional[np.ndarray] = None
    b_hidden: Optional[np.ndarray] = None


@dataclass
class _CompiledBlock:
    """Prestaged arrays for one message-passing block."""

    forward_dir: _CompiledDirection
    backward_dir: _CompiledDirection
    psi_w1_T: np.ndarray
    psi_b1: Optional[np.ndarray]
    psi_w2_T: np.ndarray
    psi_b2: Optional[np.ndarray]


@dataclass
class _CompiledDecoder:
    w1_T: np.ndarray
    b1: Optional[np.ndarray]
    w2_T: np.ndarray
    b2: Optional[np.ndarray]


def _contiguous_T(weight) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(weight, dtype=np.float64).T)


def _check_compilable(mlp) -> None:
    """The engine hard-codes the DSS architecture's single-hidden ReLU MLPs."""
    if len(mlp.layers) != 2 or mlp.activation != "relu" or mlp.final_activation != "none":
        raise NotImplementedError(
            "the inference engine supports the DSS architecture's single-hidden-layer "
            "ReLU MLPs only; use DSS.predict for modified architectures"
        )


def _bias(layer) -> Optional[np.ndarray]:
    return None if layer.bias is None else layer.bias.data


class InferencePlan:
    """A :class:`BatchPlan` bound to one DSS model, with reusable scratch buffers.

    Build one via ``model.compile_plan(batch)``; run it via
    ``model.infer(plan, source)``.  The returned output array is a view of an
    internal buffer, valid until the next ``run`` on the same plan.  Weights
    are captured at compile time — recompile after training.

    **Ownership / thread safety.**  A plan is single-flight mutable state:
    every ``run`` writes through the same scratch GEMM buffers, so a plan
    must only ever be driven by one thread at a time.  The repository's
    concurrency model keeps this implicit invariant explicit — plans are
    owned by the preconditioner that compiled them, the preconditioner by
    its :class:`~repro.solvers.session.SolverSession` (whose lock serialises
    solves), and in the serve layer each session is pinned to a single
    worker thread.  For true intra-problem parallelism, clone the session
    (``session.clone_for_worker()``), which recompiles fresh plans.
    """

    def __init__(self, model, batch: Union[GraphBatch, BatchPlan]) -> None:
        plan = batch.compile_plan() if isinstance(batch, GraphBatch) else batch
        self.model = model
        self.plan = plan
        cfg = model.config
        n, num_edges = plan.num_nodes, plan.num_edges
        d = cfg.latent_dim
        ni = cfg.node_input_dim
        self.latent_dim = d
        self.node_input_dim = ni

        self.src = np.ascontiguousarray(plan.edge_index[0])
        self.dst = np.ascontiguousarray(plan.edge_index[1])

        # aggregation operator: out = S @ messages sums every directed edge's
        # message onto its destination node in one SpMM
        incidence = sp.csr_matrix(
            (np.ones(num_edges), self.dst, np.arange(num_edges + 1, dtype=np.int64)),
            shape=(num_edges, n),
        )
        self._agg_matrix = incidence.T.tocsr()
        self._agg_matrix.sort_indices()

        # ψ input [latent | node_input | agg_fwd | agg_bwd]; the pieces are
        # views, so updating them updates the MLP input in place
        self.node_cat = np.zeros((n, 3 * d + ni))
        self.latent = self.node_cat[:, :d]
        self.node_input = self.node_cat[:, d:d + ni]
        self.agg_fwd = self.node_cat[:, d + ni:2 * d + ni]
        self.agg_bwd = self.node_cat[:, 2 * d + ni:]

        # static node features (κ channels): everything except the residual
        # column is invariant across applications
        self.node_input[...] = model._prepare_node_input(plan)

        # forward and sign-reversed edge attributes at the model's width
        attr_fwd = np.ascontiguousarray(model._prepare_edge_attr(plan.edge_attr))
        attr_bwd = attr_fwd.copy()
        attr_bwd[:, :2] *= -1.0

        # in-degree of every node (for the precompiled aggregated-bias terms)
        indegree = np.bincount(self.dst, minlength=n).astype(np.float64).reshape(-1, 1)

        # prestage the weights (and, within budget, the static edge terms)
        k_bar = len(model.blocks)
        static_bytes = 2 * k_bar * num_edges * d * 8
        with_static = static_bytes <= STATIC_EDGE_TERM_BUDGET
        self.compiled_blocks: List[_CompiledBlock] = []
        for block in model.blocks:
            for mlp in (block.phi_forward, block.phi_backward, block.psi):
                _check_compilable(mlp)
            self.compiled_blocks.append(
                _CompiledBlock(
                    forward_dir=self._compile_direction(block.phi_forward, attr_fwd, indegree, d, with_static),
                    backward_dir=self._compile_direction(block.phi_backward, attr_bwd, indegree, d, with_static),
                    psi_w1_T=_contiguous_T(block.psi.layers[0].weight.data),
                    psi_b1=_bias(block.psi.layers[0]),
                    psi_w2_T=_contiguous_T(block.psi.layers[1].weight.data),
                    psi_b2=_bias(block.psi.layers[1]),
                )
            )
        decoder = model.decoders[-1].mlp
        _check_compilable(decoder)
        self.compiled_decoder = _CompiledDecoder(
            w1_T=_contiguous_T(decoder.layers[0].weight.data),
            b1=_bias(decoder.layers[0]),
            w2_T=_contiguous_T(decoder.layers[1].weight.data),
            b2=_bias(decoder.layers[1]),
        )

        # GEMM scratch
        self.proj_dst = np.empty((n, d))
        self.proj_src = np.empty((n, d))
        self.edge_hidden = np.empty((num_edges, d))
        self.edge_scratch = np.empty((num_edges, d))
        self.agg_pre = np.empty((n, d))
        self.node_hidden = np.empty((n, d))
        self.update = np.empty((n, d))
        self.output = np.empty((n, 1))

    @staticmethod
    def _compile_direction(
        mlp, attr: np.ndarray, indegree: np.ndarray, d: int, with_static: bool
    ) -> _CompiledDirection:
        first, last = mlp.layers
        w1 = first.weight.data
        b1 = _bias(first)
        b_out = _bias(last)
        compiled = _CompiledDirection(
            w_dst_T=_contiguous_T(w1[:, :d]),
            w_src_T=_contiguous_T(w1[:, d:2 * d]),
            w_out_T=_contiguous_T(last.weight.data),
            agg_bias=None if b_out is None else indegree * b_out,
            static=None,
        )
        w_attr_T = _contiguous_T(w1[:, 2 * d:])
        if with_static:
            static = attr @ w_attr_T
            if b1 is not None:
                static += b1
            compiled.static = static
        else:
            compiled.w_attr_T = w_attr_T
            compiled.attr = attr
            compiled.b_hidden = b1
        return compiled

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.plan.num_nodes

    @property
    def num_graphs(self) -> int:
        return self.plan.num_graphs

    def load_source(self, values: np.ndarray) -> None:
        """Scatter the current per-node inputs into the preallocated buffers.

        Keeps the structural plan's ``source`` in sync so the tape forward can
        be run on the very same plan (the parity tests rely on this).
        """
        self.plan.load_source(values)
        self.node_input[:, 0] = self.plan.source

    def split_node_values(self, values: np.ndarray):
        return self.plan.split_node_values(values)

    def aggregate(self, edge_values: np.ndarray, direction: _CompiledDirection, out: np.ndarray) -> np.ndarray:
        """``out = (S @ edge_values) @ W₂ᵀ + deg ⊗ b₂`` — sum-then-project.

        One CSR SpMM onto the destination nodes followed by an ``(n × d)``
        GEMM; equal (to a few ulp) to projecting every edge message first and
        summing afterwards, but with the output layer running on ``n`` rows
        instead of ``E``.
        """
        if _csr_matvecs is not None:
            pre = self.agg_pre
            pre.fill(0.0)
            matrix = self._agg_matrix
            _csr_matvecs(
                matrix.shape[0],
                matrix.shape[1],
                edge_values.shape[1],
                matrix.indptr,
                matrix.indices,
                matrix.data,
                edge_values.ravel(),
                pre.ravel(),
            )
        else:
            pre = self._agg_matrix @ edge_values
        np.matmul(pre, direction.w_out_T, out=out)
        if direction.agg_bias is not None:
            out += direction.agg_bias
        return out

    # ------------------------------------------------------------------ #
    def run(self) -> np.ndarray:
        """Execute the full k̄-iteration forward pass on the current source.

        Returns the flat per-node output — a view of an internal buffer that
        the next ``run`` overwrites.
        """
        model = self.model
        self.latent.fill(0.0)
        for block, ops in zip(model.blocks, self.compiled_blocks):
            block.infer_into(self, ops)
        model.decoders[-1].infer_into(self, self.compiled_decoder)
        return self.output.ravel()
