"""Allocation-free DSS inference engine.

``DSS.forward`` runs through the autodiff :class:`~repro.nn.tensor.Tensor`
machinery: even under ``no_grad`` every operation allocates fresh arrays and
Python wrapper objects, and every message-passing block re-copies the reversed
edge attributes.  Inside a Krylov solve the same batch of sub-domain graphs is
evaluated hundreds of times with only the per-node source changing, so all of
that per-call work is invariant.

:class:`InferencePlan` binds a structural :class:`~repro.gnn.batch.BatchPlan`
to one model and precompiles everything the forward pass reuses:

* **per-node projections** — the hidden edge layer ``W₁ [h_dst | h_src | e]``
  is split along its disjoint weight column blocks; the latent parts become
  two ``(n × d)`` GEMMs *before* gathering to edges, shrinking the dominant
  GEMM from ``E`` rows × ``2d+|e|`` columns to ``n`` rows × ``d``;
* **static edge terms** — the attribute contribution ``e @ W₁ₑᵀ + b₁`` of
  every block and direction depends only on the (fixed) edge attributes, so
  it is evaluated once at compile time (falling back to on-the-fly
  evaluation above a memory budget);
* **aggregate-then-project** — summing messages onto destination nodes is a
  single CSR SpMM with a precomputed ``(n × E)`` incidence operator ``S``,
  and because aggregation is linear the output layer commutes with it:
  ``S (H W₂ᵀ + b₂) = (S H) W₂ᵀ + deg ⊗ b₂``, so the output GEMM runs on
  ``n`` rows instead of ``E`` (the per-node bias term ``deg ⊗ b₂`` is
  precompiled);
* **prestaged weights and buffer reuse** — all weight matrices are stored as
  contiguous transposes (what the GEMMs actually consume) and every GEMM runs
  with ``out=`` into persistent scratch; the latent state, node input and
  both aggregation targets are column views of the single ``ψ``-input
  matrix, so writing an aggregation result *is* preparing the next MLP input.

Splitting dot products into partial sums and re-ordering commutative message
sums only moves floating-point results at the few-ulp level; the parity tests
pin ``DSS.infer`` to the tape forward at 1e-12, orders of magnitude tighter
than anything visible to the preconditioned solver.

Because the weights are prestaged, a plan captures the model parameters *at
compile time*: recompile after any further training or ``load_state_dict``.

**Multi-column inference.**  :meth:`InferencePlan.run_columns` evaluates the
same forward pass for ``k`` independent source columns in one sweep over the
network.  The fused buffers are laid out ``(k, rows, d)`` — column-major over
``k`` — so every per-column slab is a C-contiguous matrix with exactly the
single-column shape.  Three kernel choices uphold the per-column bit-identity
contract the lockstep CG relies on while still fusing the expensive stages:

* **GEMMs run per column** on the contiguous slabs: a fused ``(n·k, d)``
  GEMM is *not* bitwise-stable against the ``(n, d)`` single-column call
  (BLAS kernel selection depends on the row count), while the slab GEMM has
  the identical shape, leading dimension and packing (the same reason the
  Nicolaides coarse space applies its K×K inverse one column at a time);
* **edge gathers run as one two-ones CSR SpMM**: a block-diagonal operator
  with rows ``[dst_e, n + src_e]`` evaluates
  ``proj_dst[dst] + proj_src[src]`` for all columns in a single kernel call,
  accumulating dst-then-src per edge — the exact addition the sequential
  path performs after its two ``np.take`` gathers, at a fraction of the
  passes over the edge arrays;
* **aggregation is one block-diagonal CSR SpMM** over all columns; CSR
  accumulation is per-row sequential, so each column block sums its messages
  in the same order as the single-column SpMM.

The block-diagonal operators and workspaces are allocated once at the
largest ``k`` seen and *prefix-sliced* for smaller column counts (the first
``k`` blocks of a ``(k_max, rows, d)`` buffer are exactly the ``k``-column
workspace), so a lockstep solve whose active set shrinks as columns converge
reuses one set of buffers and allocates nothing per application.

**Precision.**  Plans compile at ``precision="f64"`` (default, bit-compatible
with the tape forward) or ``"f32"``: weights, static edge terms and every
scratch buffer are staged in float32 and the sources/outputs are cast at the
plan boundary.  Because f32 drops the bit-identity contract (the
preconditioner only has to stay a fixed SPD-consistent function of the
residual — see DESIGN.md), its multi-column path switches to an
**interleaved ``(rows, k, d)`` layout** that the f64 path cannot use:

* GEMMs run **fully fused** on ``(n·k, d)`` reshape views — one BLAS call
  per layer instead of ``k``, sidestepping the per-call packing overhead
  that dominates skinny GEMMs;
* the gather-add and aggregation SpMMs carry the column axis in ``n_vecs``
  (``k·d`` dense columns), so every sparse row touches one contiguous
  ``k·d``-wide block instead of ``k`` scattered ``d``-wide ones, and the
  operators themselves are k-independent;
* the edge buffer is *prefilled* with the static attribute term and the
  gather SpMM accumulates on top — one fewer pass over the largest arrays;
* every buffer is C-contiguous, so workspaces for every active-set size are
  reshape views of one flat allocation (no extra memory as lockstep
  compaction shrinks ``k``).

The few-ulp reorderings this introduces are far below float32 rounding; the
f32 fused path is pinned against the f32 sequential path by tolerance, not
bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np
import scipy.sparse as sp

from .batch import BatchPlan, GraphBatch

__all__ = ["InferencePlan"]

#: dtypes of the supported plan precisions
PRECISION_DTYPES = {"f64": np.float64, "f32": np.float32}

#: cap on the total memory (bytes) spent on precomputed static edge terms;
#: above it they are recomputed per iteration (one small GEMM) instead
STATIC_EDGE_TERM_BUDGET = 96 * 1024 * 1024

def _validated_csr_matvecs():
    """The private scipy kernel for allocation-free CSR SpMM (``Y += A @ X``).

    ``scipy.sparse._sparsetools.csr_matvecs`` has been stable for many years,
    but it is private: guard not just against it disappearing but against a
    signature/semantics change, by checking it once against the public
    operator on a tiny fixed matrix.  Returns None (public ``@`` fallback)
    when anything is off.
    """
    try:
        from scipy.sparse import _sparsetools

        kernel = _sparsetools.csr_matvecs
        matrix = sp.csr_matrix(np.array([[1.0, 0.0, 2.0], [0.0, 3.0, 0.0]]))
        x = np.arange(6.0).reshape(3, 2)
        y = np.zeros((2, 2))
        kernel(
            matrix.shape[0], matrix.shape[1], x.shape[1],
            matrix.indptr, matrix.indices, matrix.data,
            x.ravel(), y.ravel(),
        )
        if not np.array_equal(y, matrix @ x):
            return None
        return kernel
    except Exception:  # pragma: no cover - old/exotic scipy
        return None


_csr_matvecs = _validated_csr_matvecs()

try:
    from scipy.linalg.blas import sgemm as _sgemm
except ImportError:  # pragma: no cover - scipy built without BLAS wrappers
    _sgemm = None


def _sgemm_acc(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """``c += a @ b`` for C-contiguous float32 operands, no scratch pass.

    BLAS GEMM's ``beta=1`` accumulation fuses the product and the addition
    into one sweep over ``c``; the C-ordered arrays are handed over as their
    F-contiguous transpose views (``cᵀ = bᵀ aᵀ + cᵀ``), which ``overwrite_c``
    updates in place.
    """
    if _sgemm is not None:
        _sgemm(1.0, b.T, a.T, beta=1.0, c=c.T, overwrite_c=1)
    else:  # pragma: no cover - scipy built without BLAS wrappers
        c += a @ b


@dataclass
class _CompiledDirection:
    """Prestaged arrays for one message direction of one block."""

    w_dst_T: np.ndarray            # (d, d) — latent-of-destination weight block, transposed
    w_src_T: np.ndarray            # (d, d) — latent-of-source weight block, transposed
    w_out_T: np.ndarray            # (d, d) — output layer, transposed
    agg_bias: Optional[np.ndarray]  # (n, d) — in-degree ⊗ output bias
    static: Optional[np.ndarray]   # (E, d) — attr @ W₁ₑᵀ + b₁, if within budget
    w_attr_T: Optional[np.ndarray] = None   # fallback pieces when static is None
    attr: Optional[np.ndarray] = None
    b_hidden: Optional[np.ndarray] = None


@dataclass
class _CompiledBlock:
    """Prestaged arrays for one message-passing block."""

    forward_dir: _CompiledDirection
    backward_dir: _CompiledDirection
    psi_w1_T: np.ndarray
    psi_b1: Optional[np.ndarray]
    psi_w2_T: np.ndarray
    psi_b2: Optional[np.ndarray]


@dataclass
class _CompiledDecoder:
    w1_T: np.ndarray
    b1: Optional[np.ndarray]
    w2_T: np.ndarray
    b2: Optional[np.ndarray]


def _contiguous_T(weight, dtype=np.float64) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(weight, dtype=dtype).T)


def _matmul_slabs(stacked: np.ndarray, weight_T: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out[c] = stacked[c] @ weight_T`` for every column slab ``c``.

    Each slab is a matrix with the exact logical shape, row count and leading
    dimension of the single-column GEMM, so BLAS packs and accumulates
    identically — a fused ``(n·k, d)`` alternative selects row-count-dependent
    kernels and breaks per-column bit-identity (same reason the Nicolaides
    coarse space applies its K×K inverse one column at a time).
    """
    for c in range(stacked.shape[0]):
        np.matmul(stacked[c], weight_T, out=out[c])
    return out


@dataclass
class _ColumnWorkspace:
    """Prefix views of the plan's fused buffers for one column count ``k``.

    All arrays are views of a :class:`_FusedBuffers` allocation (the first
    ``k`` column blocks), so distinct active-set sizes of one lockstep solve
    share a single set of buffers.  ``latent``/``node_input``/``agg_fwd``/
    ``agg_bwd`` are last-axis views of ``node_cat``, mirroring the
    single-column scratch layout: writing an aggregation result *is*
    preparing the next ``ψ`` input.  The ``gather_*``/``agg_*`` arrays are
    the prefix-sliced block-diagonal CSR operators (two-ones edge gather-add
    and destination-sum respectively).
    """

    k: int
    node_cat: np.ndarray       # (k, n, 3d+ni)
    latent: np.ndarray         # (k, n, d)
    node_input: np.ndarray     # (k, n, ni)
    agg_fwd: np.ndarray        # (k, n, d)
    agg_bwd: np.ndarray        # (k, n, d)
    proj: np.ndarray           # (k, 2, n, d) — [c, 0] dst-proj, [c, 1] src-proj
    proj_dst: np.ndarray       # (k, n, d) — view of proj[:, 0]
    proj_src: np.ndarray       # (k, n, d) — view of proj[:, 1]
    edge_hidden: np.ndarray    # (k, E, d)
    agg_pre: np.ndarray        # (k, n, d)
    node_hidden: np.ndarray    # (k, n, d)
    update: np.ndarray         # (k, n, d)
    output: np.ndarray         # (k, n, 1)
    gather_indptr: np.ndarray
    gather_indices: np.ndarray
    gather_data: np.ndarray
    agg_indptr: np.ndarray
    agg_indices: np.ndarray
    agg_data: np.ndarray


class _FusedBuffers:
    """Multi-column scratch + block-diagonal operators, allocated at ``k_max``.

    The ``(k, rows, d)`` layout makes the ``k``-column workspace for any
    ``k <= k_max`` a *prefix* of these arrays: buffer views slice the first
    ``k`` blocks, and the block-diagonal CSR operators slice the first
    ``k`` row blocks of ``indptr`` (their column indices only reference the
    first ``k`` input blocks, so the full ``indices``/``data`` arrays can be
    shared — the kernel never reads past ``indptr[n_row]``).
    """

    def __init__(self, plan: "InferencePlan", k_max: int) -> None:
        n, num_edges = plan.num_nodes, plan.plan.num_edges
        d, ni = plan.latent_dim, plan.node_input_dim
        dtype = plan.dtype
        k = int(k_max)
        self.k_max = k
        width = 3 * d + ni
        self.node_cat = np.zeros((k, n, width), dtype=dtype)
        self.proj = np.empty((k, 2, n, d), dtype=dtype)
        self.edge_hidden = np.empty((k, num_edges, d), dtype=dtype)
        self.agg_pre = np.empty((k, n, d), dtype=dtype)
        self.node_hidden = np.empty((k, n, d), dtype=dtype)
        self.update = np.empty((k, n, d), dtype=dtype)
        self.output = np.empty((k, n, 1), dtype=dtype)
        # static node features (κ channels) are column-invariant
        self.node_cat[:, :, d:d + ni] = plan._static_node_input[None, :, :]

        # two-ones gather-add operator: row e of column block c sums
        # proj[c, 0, dst_e] and proj[c, 1, src_e] (dst listed first, so the
        # accumulation order matches the sequential dst-gather += src-gather)
        arange_k = np.arange(k, dtype=np.int64)
        base = np.empty(2 * num_edges, dtype=np.int64)
        base[0::2] = plan.dst
        base[1::2] = n + plan.src
        self.gather_indices = (base[None, :] + (2 * n * arange_k)[:, None]).ravel()
        self.gather_indptr = 2 * np.arange(k * num_edges + 1, dtype=np.int64)
        self.gather_data = np.ones(2 * num_edges * k, dtype=dtype)

        # block-diagonal destination-sum operator: k copies of the plan's
        # (n × E) incidence matrix along the diagonal
        agg = plan._agg_matrix
        indptr = np.asarray(agg.indptr, dtype=np.int64)
        indices = np.asarray(agg.indices, dtype=np.int64)
        nnz = np.int64(indptr[-1])
        self.agg_indptr = np.concatenate([
            (indptr[:-1][None, :] + (nnz * arange_k)[:, None]).ravel(),
            np.array([nnz * k], dtype=np.int64),
        ])
        self.agg_indices = (indices[None, :] + (np.int64(num_edges) * arange_k)[:, None]).ravel()
        self.agg_data = np.ones(int(nnz) * k, dtype=dtype)

        self._num_edges = num_edges
        self._num_nodes = n
        self._views: Dict[int, _ColumnWorkspace] = {}
        self._fallback_matrices: Dict[int, tuple] = {}

    def view(self, k: int) -> _ColumnWorkspace:
        workspace = self._views.get(k)
        if workspace is not None:
            return workspace
        d = self.proj.shape[3]
        ni = self.node_cat.shape[2] - 3 * d
        node_cat = self.node_cat[:k]
        workspace = _ColumnWorkspace(
            k=k,
            node_cat=node_cat,
            latent=node_cat[:, :, :d],
            node_input=node_cat[:, :, d:d + ni],
            agg_fwd=node_cat[:, :, d + ni:2 * d + ni],
            agg_bwd=node_cat[:, :, 2 * d + ni:],
            proj=self.proj[:k],
            proj_dst=self.proj[:k, 0],
            proj_src=self.proj[:k, 1],
            edge_hidden=self.edge_hidden[:k],
            agg_pre=self.agg_pre[:k],
            node_hidden=self.node_hidden[:k],
            update=self.update[:k],
            output=self.output[:k],
            gather_indptr=self.gather_indptr[:k * self._num_edges + 1],
            gather_indices=self.gather_indices,
            gather_data=self.gather_data,
            agg_indptr=self.agg_indptr[:k * self._num_nodes + 1],
            agg_indices=self.agg_indices,
            agg_data=self.agg_data,
        )
        self._views[k] = workspace
        return workspace

    def fallback_matrices(self, k: int) -> tuple:
        """``(gather, agg)`` scipy matrices for the public-operator fallback."""
        cached = self._fallback_matrices.get(k)
        if cached is None:
            n, num_edges = self._num_nodes, self._num_edges
            gather = sp.csr_matrix(
                (self.gather_data[:2 * k * num_edges],
                 self.gather_indices[:2 * k * num_edges],
                 self.gather_indptr[:k * num_edges + 1]),
                shape=(k * num_edges, 2 * k * n),
            )
            nnz_per_block = len(self.agg_indices) // self.k_max
            agg = sp.csr_matrix(
                (self.agg_data[:k * nnz_per_block],
                 self.agg_indices[:k * nnz_per_block],
                 self.agg_indptr[:k * n + 1]),
                shape=(k * n, k * num_edges),
            )
            cached = (gather, agg)
            self._fallback_matrices[k] = cached
        return cached


@dataclass
class _InterleavedBlock:
    """One block's weights restaged for the f32 interleaved forward.

    Because aggregation is linear and f32 has no bit-identity contract, each
    direction's output layer is folded into ``ψ``'s first layer:
    ``(S H) W₂ᵀ W₁ₐᵀ = (S H) (W₁ₐ W₂)ᵀ``, so the per-direction output GEMM
    and bias pass disappear and ``ψ``'s hidden layer reads the raw
    aggregation result directly.  Both message directions are stacked along
    the last axis (``[fwd | bwd]``): one double-width projection GEMM pair,
    one prefill, one gather SpMM, one ReLU and one aggregation SpMM serve
    both, and the aggregation output *is* a contiguous ``ψ`` GEMM operand.
    All position-independent bias terms (``ψ b₁`` plus both directions'
    aggregated output biases pushed through ``W₁ₐ``) collapse into one
    per-node ``bias_node``, which also absorbs the ``ψ`` contribution of the
    column-invariant static node features (κ channels) — the per-column input
    reduces to the residual sources alone; the damping ``α`` is folded into
    ``ψ``'s second layer.
    """

    w_dst_T: np.ndarray            # (d, 2d) — [fwd | bwd] destination projections
    w_src_T: np.ndarray            # (d, 2d)
    static: Optional[np.ndarray]   # (E, 2d) — [fwd | bwd] static edge terms
    w_psi_latent_T: np.ndarray     # (d, d)
    w_source_T: np.ndarray         # (1, d) — ψ weight column of the residual input
    w_psi_agg_T: np.ndarray        # (2d, d) — ψ agg columns with W₂ folded in
    bias_node: Optional[np.ndarray]  # (n, d) — ψ b₁ + folded static/bias terms
    w2_alpha_T: np.ndarray         # (d, d) — α · ψ W₂ᵀ
    b2_alpha: Optional[np.ndarray]  # (d,) — α · ψ b₂


@dataclass
class _InterleavedWorkspace:
    """Reshape views of one :class:`_InterleavedBuffers` allocation for ``k``.

    The f32 layout keeps the column axis *inside* each row block —
    ``(rows, k, ·)`` — so a buffer's ``k``-column workspace for any
    ``k <= k_max`` occupies the first elements of the same flat allocation:
    no extra memory across active-set sizes.  Interleavings for different
    ``k`` alias each other, which is harmless because the only per-column
    input left after the compile-time folds is the residual sources, written
    fresh by every ``load_source_columns``.  The ``*2d`` fields are the
    ``(rows·k, ·)`` GEMM views, the ``*_flat`` fields the 1-D views the CSR
    kernel consumes.
    """

    k: int
    latent: np.ndarray       # (n, k, d)
    latent2d: np.ndarray     # (n·k, d)
    sources: np.ndarray      # (n, k) — the residual inputs, one per column
    input2d: np.ndarray      # (n·k, 1)
    proj: np.ndarray         # (2n, k, 2d) — dst block stacked over src block
    proj_dst2d: np.ndarray   # (n·k, 2d)
    proj_src2d: np.ndarray   # (n·k, 2d)
    proj_flat: np.ndarray
    edge_hidden: np.ndarray  # (E, k, 2d) — [fwd | bwd] messages
    edge_flat: np.ndarray
    psi_pre: np.ndarray      # (n, k, 2d) — raw [fwd | bwd] aggregation sums
    pre2d: np.ndarray        # (n·k, 2d)
    pre_flat: np.ndarray
    hidden2d: np.ndarray     # (n·k, d)
    hidden3: np.ndarray      # (n, k, d)
    output2d: np.ndarray     # (n·k, 1)
    output: np.ndarray       # (n, k)


class _InterleavedBuffers:
    """f32 multi-column scratch: flat allocations + k-independent operators.

    Unlike the slab layout, the gather-add and aggregation operators here are
    independent of the column count — ``k`` rides in the SpMM's dense column
    dimension (``n_vecs = k·2d``), so one ``(E × 2n)`` two-ones matrix and
    the plan's ``(n × E)`` incidence matrix serve every active-set size, and
    each sparse row moves one contiguous ``k·2d``-wide block of memory.
    """

    def __init__(self, plan: "InferencePlan", k_max: int) -> None:
        n, num_edges = plan.num_nodes, plan.plan.num_edges
        d, ni = plan.latent_dim, plan.node_input_dim
        dtype = plan.dtype
        k = int(k_max)
        self.k_max = k
        self._latent = np.zeros(n * k * d, dtype=dtype)
        self._input = np.zeros(n * k, dtype=dtype)
        self._proj = np.empty(2 * n * k * 2 * d, dtype=dtype)
        self._edge = np.empty(num_edges * k * 2 * d, dtype=dtype)
        self._pre = np.empty(n * k * 2 * d, dtype=dtype)
        self._hidden = np.empty(n * k * d, dtype=dtype)
        self._output = np.empty(n * k, dtype=dtype)

        # two-ones gather-add operator: row e sums proj[dst_e] (dst block)
        # and proj[n + src_e] (src block) — all columns at once via n_vecs
        indices = np.empty(2 * num_edges, dtype=np.int64)
        indices[0::2] = plan.dst
        indices[1::2] = n + plan.src
        self.gather_indices = indices
        self.gather_indptr = 2 * np.arange(num_edges + 1, dtype=np.int64)
        self.gather_data = np.ones(2 * num_edges, dtype=dtype)

        self._dims = (n, num_edges, d, ni)
        self._views: Dict[int, _InterleavedWorkspace] = {}
        self._gather_matrix: Optional[sp.csr_matrix] = None

    def view(self, k: int) -> _InterleavedWorkspace:
        workspace = self._views.get(k)
        if workspace is not None:
            return workspace
        n, num_edges, d, ni = self._dims
        latent = self._latent[:n * k * d].reshape(n, k, d)
        sources = self._input[:n * k].reshape(n, k)
        proj = self._proj[:2 * n * k * 2 * d].reshape(2 * n, k, 2 * d)
        edge = self._edge[:num_edges * k * 2 * d].reshape(num_edges, k, 2 * d)
        pre = self._pre[:n * k * 2 * d].reshape(n, k, 2 * d)
        hidden = self._hidden[:n * k * d].reshape(n * k, d)
        output = self._output[:n * k].reshape(n * k, 1)
        workspace = _InterleavedWorkspace(
            k=k,
            latent=latent,
            latent2d=latent.reshape(n * k, d),
            sources=sources,
            input2d=sources.reshape(n * k, 1),
            proj=proj,
            proj_dst2d=proj[:n].reshape(n * k, 2 * d),
            proj_src2d=proj[n:].reshape(n * k, 2 * d),
            proj_flat=proj.reshape(-1),
            edge_hidden=edge,
            edge_flat=edge.reshape(-1),
            psi_pre=pre,
            pre2d=pre.reshape(n * k, 2 * d),
            pre_flat=pre.reshape(-1),
            hidden2d=hidden,
            hidden3=hidden.reshape(n, k, d),
            output2d=output,
            output=output.reshape(n, k),
        )
        self._views[k] = workspace
        return workspace

    def gather_matrix(self) -> sp.csr_matrix:
        """The ``(E × 2n)`` operator for the public-``@`` fallback."""
        if self._gather_matrix is None:
            n, num_edges = self._dims[0], self._dims[1]
            self._gather_matrix = sp.csr_matrix(
                (self.gather_data, self.gather_indices, self.gather_indptr),
                shape=(num_edges, 2 * n),
            )
        return self._gather_matrix


def _check_compilable(mlp) -> None:
    """The engine hard-codes the DSS architecture's single-hidden ReLU MLPs."""
    if len(mlp.layers) != 2 or mlp.activation != "relu" or mlp.final_activation != "none":
        raise NotImplementedError(
            "the inference engine supports the DSS architecture's single-hidden-layer "
            "ReLU MLPs only; use DSS.predict for modified architectures"
        )


def _bias(layer, dtype=np.float64) -> Optional[np.ndarray]:
    if layer.bias is None:
        return None
    return np.asarray(layer.bias.data, dtype=dtype)


class InferencePlan:
    """A :class:`BatchPlan` bound to one DSS model, with reusable scratch buffers.

    Build one via ``model.compile_plan(batch)``; run it via
    ``model.infer(plan, source)``.  The returned output array is a view of an
    internal buffer, valid until the next ``run`` on the same plan.  Weights
    are captured at compile time — recompile after training.

    **Ownership / thread safety.**  A plan is single-flight mutable state:
    every ``run`` writes through the same scratch GEMM buffers, so a plan
    must only ever be driven by one thread at a time.  The repository's
    concurrency model keeps this implicit invariant explicit — plans are
    owned by the preconditioner that compiled them, the preconditioner by
    its :class:`~repro.solvers.session.SolverSession` (whose lock serialises
    solves), and in the serve layer each session is pinned to a single
    worker thread.  For true intra-problem parallelism, clone the session
    (``session.clone_for_worker()``), which recompiles fresh plans.
    """

    def __init__(
        self, model, batch: Union[GraphBatch, BatchPlan], precision: str = "f64"
    ) -> None:
        plan = batch.compile_plan() if isinstance(batch, GraphBatch) else batch
        if precision not in PRECISION_DTYPES:
            raise ValueError(
                f"precision must be one of {sorted(PRECISION_DTYPES)}, got {precision!r}"
            )
        self.model = model
        self.plan = plan
        self.precision = precision
        self.dtype = PRECISION_DTYPES[precision]
        dtype = self.dtype
        cfg = model.config
        n, num_edges = plan.num_nodes, plan.num_edges
        d = cfg.latent_dim
        ni = cfg.node_input_dim
        self.latent_dim = d
        self.node_input_dim = ni

        self.src = np.ascontiguousarray(plan.edge_index[0])
        self.dst = np.ascontiguousarray(plan.edge_index[1])

        # aggregation operator: out = S @ messages sums every directed edge's
        # message onto its destination node in one SpMM (data staged at the
        # plan precision — the CSR kernel requires dtype-consistent operands)
        incidence = sp.csr_matrix(
            (np.ones(num_edges, dtype=dtype), self.dst, np.arange(num_edges + 1, dtype=np.int64)),
            shape=(num_edges, n),
        )
        self._agg_matrix = incidence.T.tocsr()
        self._agg_matrix.sort_indices()

        # ψ input [latent | node_input | agg_fwd | agg_bwd]; the pieces are
        # views, so updating them updates the MLP input in place
        self.node_cat = np.zeros((n, 3 * d + ni), dtype=dtype)
        self.latent = self.node_cat[:, :d]
        self.node_input = self.node_cat[:, d:d + ni]
        self.agg_fwd = self.node_cat[:, d + ni:2 * d + ni]
        self.agg_bwd = self.node_cat[:, 2 * d + ni:]

        # static node features (κ channels): everything except the residual
        # column is invariant across applications; kept in f64 so the cached
        # multi-column workspaces can restage them at any time
        self._static_node_input = np.asarray(model._prepare_node_input(plan), dtype=np.float64)
        self.node_input[...] = self._static_node_input

        # forward and sign-reversed edge attributes at the model's width
        attr_fwd = np.ascontiguousarray(model._prepare_edge_attr(plan.edge_attr), dtype=dtype)
        attr_bwd = attr_fwd.copy()
        attr_bwd[:, :2] *= -1.0

        # in-degree of every node (for the precompiled aggregated-bias terms)
        indegree = np.bincount(self.dst, minlength=n).astype(np.float64).reshape(-1, 1)

        # prestage the weights (and, within budget, the static edge terms)
        k_bar = len(model.blocks)
        static_bytes = 2 * k_bar * num_edges * d * 8
        with_static = static_bytes <= STATIC_EDGE_TERM_BUDGET
        self.compiled_blocks: List[_CompiledBlock] = []
        for block in model.blocks:
            for mlp in (block.phi_forward, block.phi_backward, block.psi):
                _check_compilable(mlp)
            self.compiled_blocks.append(
                _CompiledBlock(
                    forward_dir=self._compile_direction(block.phi_forward, attr_fwd, indegree, d, with_static, dtype),
                    backward_dir=self._compile_direction(block.phi_backward, attr_bwd, indegree, d, with_static, dtype),
                    psi_w1_T=_contiguous_T(block.psi.layers[0].weight.data, dtype),
                    psi_b1=_bias(block.psi.layers[0], dtype),
                    psi_w2_T=_contiguous_T(block.psi.layers[1].weight.data, dtype),
                    psi_b2=_bias(block.psi.layers[1], dtype),
                )
            )
        decoder = model.decoders[-1].mlp
        _check_compilable(decoder)
        self.compiled_decoder = _CompiledDecoder(
            w1_T=_contiguous_T(decoder.layers[0].weight.data, dtype),
            b1=_bias(decoder.layers[0], dtype),
            w2_T=_contiguous_T(decoder.layers[1].weight.data, dtype),
            b2=_bias(decoder.layers[1], dtype),
        )

        # GEMM scratch
        self.proj_dst = np.empty((n, d), dtype=dtype)
        self.proj_src = np.empty((n, d), dtype=dtype)
        self.edge_hidden = np.empty((num_edges, d), dtype=dtype)
        self.edge_scratch = np.empty((num_edges, d), dtype=dtype)
        self.agg_pre = np.empty((n, d), dtype=dtype)
        self.node_hidden = np.empty((n, d), dtype=dtype)
        self.update = np.empty((n, d), dtype=dtype)
        self.output = np.empty((n, 1), dtype=dtype)

        # multi-column buffers, allocated lazily at the largest column count
        # seen and view-sliced for smaller ones (lockstep solves shrink
        # their active set as columns converge); f64 uses the slab layout,
        # f32 the interleaved one (see the module docstring)
        self._fused: Optional[_FusedBuffers] = None
        self._interleaved: Optional[_InterleavedBuffers] = None
        self._alphas = [float(block.alpha) for block in model.blocks]
        self._interleaved_blocks: Optional[List[_InterleavedBlock]] = None
        if dtype == np.float32:
            self._interleaved_blocks = self._compile_interleaved_blocks(model, indegree)

    @staticmethod
    def _compile_direction(
        mlp, attr: np.ndarray, indegree: np.ndarray, d: int, with_static: bool, dtype
    ) -> _CompiledDirection:
        first, last = mlp.layers
        w1 = first.weight.data
        b1 = _bias(first, dtype)
        b_out = _bias(last, dtype)
        compiled = _CompiledDirection(
            w_dst_T=_contiguous_T(w1[:, :d], dtype),
            w_src_T=_contiguous_T(w1[:, d:2 * d], dtype),
            w_out_T=_contiguous_T(last.weight.data, dtype),
            agg_bias=None if b_out is None else indegree.astype(dtype) * b_out,
            static=None,
        )
        w_attr_T = _contiguous_T(w1[:, 2 * d:], dtype)
        if with_static:
            static = attr @ w_attr_T
            if b1 is not None:
                static += b1
            compiled.static = static
        else:
            compiled.w_attr_T = w_attr_T
            compiled.attr = attr
            compiled.b_hidden = b1
        return compiled

    def _compile_interleaved_blocks(self, model, indegree: np.ndarray) -> List[_InterleavedBlock]:
        """Restage every block for the f32 interleaved forward.

        The weight folds (output layer into ``ψ``, both biases into one
        per-node term, ``α`` into ``ψ W₂``) are computed in float64 from the
        original model weights and cast once, so the staging itself adds no
        rounding beyond the final f32 quantisation.
        """
        d, ni = self.latent_dim, self.node_input_dim
        dtype = self.dtype
        staged: List[_InterleavedBlock] = []
        for block, ops, alpha in zip(model.blocks, self.compiled_blocks, self._alphas):
            psi1 = np.asarray(block.psi.layers[0].weight.data, dtype=np.float64)
            psi_b1 = block.psi.layers[0].bias
            psi_b1 = None if psi_b1 is None else np.asarray(psi_b1.data, dtype=np.float64)
            psi2 = np.asarray(block.psi.layers[1].weight.data, dtype=np.float64)
            psi_b2 = block.psi.layers[1].bias
            psi_b2 = None if psi_b2 is None else np.asarray(psi_b2.data, dtype=np.float64)
            psi1_agg = {}
            bias_node = None if psi_b1 is None else np.broadcast_to(
                psi_b1, (self.num_nodes, d)
            ).copy()
            for key, phi, offset in (
                ("fwd", block.phi_forward, d + ni),
                ("bwd", block.phi_backward, 2 * d + ni),
            ):
                w_out = np.asarray(phi.layers[1].weight.data, dtype=np.float64)
                b_out = phi.layers[1].bias
                psi1_cols = psi1[:, offset:offset + d]            # (d_out, d)
                # fold the direction's output layer into ψ's agg columns:
                # (S H) W₂ᵀ ψ₁ᵀ = (S H) (ψ₁ W₂)ᵀ
                psi1_agg[key] = np.ascontiguousarray((psi1_cols @ w_out).T)
                if b_out is not None:
                    term = (indegree * np.asarray(b_out.data, dtype=np.float64)) @ psi1_cols.T
                    bias_node = term if bias_node is None else bias_node + term
            # the κ channels never change between applications, so their ψ
            # contribution is a fixed per-node vector — folded into bias_node,
            # leaving the residual sources as the only per-column input
            psi1_input = psi1[:, d:d + ni]                        # (d_out, ni)
            if ni > 1:
                term = self._static_node_input[:, 1:] @ psi1_input[:, 1:].T
                bias_node = term if bias_node is None else bias_node + term
            static = None
            if ops.forward_dir.static is not None and ops.backward_dir.static is not None:
                static = np.ascontiguousarray(
                    np.hstack([ops.forward_dir.static, ops.backward_dir.static])
                )
            staged.append(
                _InterleavedBlock(
                    w_dst_T=np.ascontiguousarray(
                        np.hstack([ops.forward_dir.w_dst_T, ops.backward_dir.w_dst_T])
                    ),
                    w_src_T=np.ascontiguousarray(
                        np.hstack([ops.forward_dir.w_src_T, ops.backward_dir.w_src_T])
                    ),
                    static=static,
                    w_psi_latent_T=np.ascontiguousarray(psi1[:, :d].T.astype(dtype)),
                    w_source_T=np.ascontiguousarray(psi1_input[:, :1].T.astype(dtype)),
                    w_psi_agg_T=np.ascontiguousarray(
                        np.vstack([psi1_agg["fwd"], psi1_agg["bwd"]]).astype(dtype)
                    ),
                    bias_node=None if bias_node is None else bias_node.astype(dtype),
                    w2_alpha_T=np.ascontiguousarray((alpha * psi2.T).astype(dtype)),
                    b2_alpha=None if psi_b2 is None else (alpha * psi_b2).astype(dtype),
                )
            )
        return staged

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.plan.num_nodes

    @property
    def num_graphs(self) -> int:
        return self.plan.num_graphs

    def load_source(self, values: np.ndarray) -> None:
        """Scatter the current per-node inputs into the preallocated buffers.

        Keeps the structural plan's ``source`` in sync so the tape forward can
        be run on the very same plan (the parity tests rely on this).
        """
        self.plan.load_source(values)
        self.node_input[:, 0] = self.plan.source

    def split_node_values(self, values: np.ndarray):
        return self.plan.split_node_values(values)

    # ------------------------------------------------------------------ #
    # multi-column (lockstep) path
    # ------------------------------------------------------------------ #
    def column_workspace(self, k: int) -> _ColumnWorkspace:
        """The cached ``k``-column workspace (prefix views of the fused buffers).

        Allocation happens on the first call and again only when ``k`` grows
        past every previously seen value; shrinking column counts (lockstep
        compaction) reuse prefixes of the same arrays.
        """
        if k < 1:
            raise ValueError(f"column count must be >= 1, got {k}")
        fused = self._fused
        if fused is None or k > fused.k_max:
            fused = _FusedBuffers(self, k)
            self._fused = fused
        return fused.view(k)

    def _static_scratch(self) -> np.ndarray:
        """Lazily allocated ``(E, 2d)`` buffer for over-budget static terms."""
        scratch = getattr(self, "_static_scratch_buf", None)
        if scratch is None:
            scratch = np.empty((self.plan.num_edges, 2 * self.latent_dim), dtype=self.dtype)
            self._static_scratch_buf = scratch
        return scratch

    def interleaved_workspace(self, k: int) -> _InterleavedWorkspace:
        """The cached ``k``-column f32 workspace (flat-backed reshape views)."""
        if k < 1:
            raise ValueError(f"column count must be >= 1, got {k}")
        buffers = self._interleaved
        if buffers is None or k > buffers.k_max:
            buffers = _InterleavedBuffers(self, k)
            self._interleaved = buffers
        return buffers.view(k)

    def load_source_columns(self, sources: np.ndarray):
        """Stage ``k`` per-node source columns into the k-column workspace.

        ``sources`` is ``(n, k)`` — column ``c`` is what ``load_source`` would
        receive for the corresponding single-column run.  Casting to the plan
        dtype happens here (the f32 boundary).
        """
        sources = np.asarray(sources)
        if sources.ndim != 2 or sources.shape[0] != self.num_nodes:
            raise ValueError(
                f"sources must be (num_nodes, k) = ({self.num_nodes}, k), "
                f"got shape {sources.shape}"
            )
        if self.dtype == np.float32:
            workspace = self.interleaved_workspace(sources.shape[1])
            workspace.sources[...] = sources
        else:
            workspace = self.column_workspace(sources.shape[1])
            workspace.node_input[:, :, 0] = sources.T
        return workspace

    def gather_add_columns(self, workspace: _ColumnWorkspace, direction: _CompiledDirection) -> np.ndarray:
        """Fused edge hidden-layer input for all columns, one SpMM.

        Evaluates ``proj_dst[c][dst] + proj_src[c][src] + static`` into
        ``workspace.edge_hidden`` via the block-diagonal two-ones gather-add
        operator.  In f64 the static term is added *after* the SpMM (the
        sequential addition order, upholding bit-identity); in f32 the edge
        buffer is prefilled with it and the SpMM accumulates on top — one
        fewer pass over the largest arrays of the whole forward.
        """
        k, d, n = workspace.k, self.latent_dim, self.num_nodes
        num_edges = self.plan.num_edges
        edge_hidden = workspace.edge_hidden
        prefill = direction.static if self.dtype == np.float32 else None
        if _csr_matvecs is not None:
            if prefill is not None:
                np.copyto(edge_hidden, prefill[None, :, :])
            else:
                edge_hidden.fill(0.0)
            _csr_matvecs(
                k * num_edges, 2 * k * n, d,
                workspace.gather_indptr, workspace.gather_indices, workspace.gather_data,
                workspace.proj.reshape(-1, d).ravel(), edge_hidden.ravel(),
            )
        else:  # pragma: no cover - exercised only on exotic scipy builds
            gather, _ = self._fused.fallback_matrices(k)
            edge_hidden[...] = (gather @ workspace.proj.reshape(-1, d)).reshape(k, num_edges, d)
            prefill = None
        if prefill is None:
            if direction.static is not None:
                edge_hidden += direction.static[None, :, :]
            else:
                # above the static-term budget: the attribute term is
                # column-invariant, so one (E × |e|) GEMM serves every column
                np.matmul(direction.attr, direction.w_attr_T, out=self.edge_scratch)
                edge_hidden += self.edge_scratch[None, :, :]
                if direction.b_hidden is not None:
                    edge_hidden += direction.b_hidden
        return edge_hidden

    def aggregate_columns(self, workspace: _ColumnWorkspace, direction: _CompiledDirection, out: np.ndarray) -> np.ndarray:
        """Multi-column ``aggregate``: one block-diagonal SpMM, slab GEMMs.

        The CSR kernel walks each column block's sparse rows in the same
        nonzero order as the single-column SpMM, so column ``c`` of the sum
        is bit-identical to ``aggregate`` on column ``c`` alone; the output
        projection runs per-column slab (see :func:`_matmul_slabs`).
        """
        k, d, n = workspace.k, self.latent_dim, self.num_nodes
        num_edges = self.plan.num_edges
        pre = workspace.agg_pre
        if _csr_matvecs is not None:
            pre.fill(0.0)
            _csr_matvecs(
                k * n, k * num_edges, d,
                workspace.agg_indptr, workspace.agg_indices, workspace.agg_data,
                workspace.edge_hidden.reshape(-1, d).ravel(), pre.ravel(),
            )
        else:  # pragma: no cover - exercised only on exotic scipy builds
            _, agg = self._fused.fallback_matrices(k)
            pre[...] = (agg @ workspace.edge_hidden.reshape(-1, d)).reshape(k, n, d)
        _matmul_slabs(pre, direction.w_out_T, out)
        if direction.agg_bias is not None:
            out += direction.agg_bias[None, :, :]
        return out

    def run_columns(self, k: int) -> np.ndarray:
        """Execute the forward pass for all ``k`` staged source columns at once.

        Returns the ``(n, k)`` per-node outputs — a view of the k-column
        workspace, overwritten by the next ``run_columns`` with the same
        ``k``.  Column ``c`` is bit-identical to ``run()`` after
        ``load_source`` of column ``c`` when the plan precision is ``"f64"``;
        f32 plans take the interleaved fused path, which matches the f32
        sequential path to tolerance rather than bytes.
        """
        if self.dtype == np.float32:
            return self._run_columns_interleaved(k)
        workspace = self.column_workspace(k)
        model = self.model
        workspace.latent.fill(0.0)
        for block, ops in zip(model.blocks, self.compiled_blocks):
            block.infer_columns_into(self, workspace, ops)
        model.decoders[-1].infer_columns_into(self, workspace, self.compiled_decoder)
        return workspace.output[:, :, 0].T

    def _run_columns_interleaved(self, k: int) -> np.ndarray:
        """The f32 fused forward: interleaved layout, direction-stacked ops.

        Per block: two double-width projection GEMMs, one static prefill, one
        gather SpMM, one ReLU and one aggregation SpMM serve *both* message
        directions (stacked ``[fwd | bwd]`` along the last axis); ``ψ``'s
        hidden layer then reads the raw aggregation sums directly through the
        folded weights of :class:`_InterleavedBlock`.  Every GEMM runs once
        on an ``(n·k, ·)`` reshape view and the SpMMs carry ``n_vecs = k·2d``
        contiguous dense columns.
        """
        from ..nn.functional import relu_

        ws = self.interleaved_workspace(k)
        buffers = self._interleaved
        n, d = self.num_nodes, self.latent_dim
        num_edges = self.plan.num_edges
        agg_matrix = self._agg_matrix
        ws.latent.fill(0.0)
        for block, ops in zip(self._interleaved_blocks, self.compiled_blocks):
            np.matmul(ws.latent2d, block.w_dst_T, out=ws.proj_dst2d)
            np.matmul(ws.latent2d, block.w_src_T, out=ws.proj_src2d)
            # prefill the edge buffer with the column-invariant static terms;
            # the two-ones gather SpMM accumulates the projections on top
            static = block.static
            if static is None:
                # above the static-term budget: two (E × |e|) GEMMs
                static = self._static_scratch()
                for half, direction in (
                    (slice(0, d), ops.forward_dir),
                    (slice(d, 2 * d), ops.backward_dir),
                ):
                    np.matmul(direction.attr, direction.w_attr_T, out=self.edge_scratch)
                    if direction.b_hidden is not None:
                        self.edge_scratch += direction.b_hidden
                    static[:, half] = self.edge_scratch
            np.copyto(ws.edge_hidden, static[:, None, :])
            if _csr_matvecs is not None:
                _csr_matvecs(
                    num_edges, 2 * n, k * 2 * d,
                    buffers.gather_indptr, buffers.gather_indices, buffers.gather_data,
                    ws.proj_flat, ws.edge_flat,
                )
            else:  # pragma: no cover - exercised only on exotic scipy builds
                gathered = buffers.gather_matrix() @ ws.proj.reshape(2 * n, k * 2 * d)
                ws.edge_hidden += gathered.reshape(num_edges, k, 2 * d)
            relu_(ws.edge_hidden)
            if _csr_matvecs is not None:
                ws.psi_pre.fill(0.0)
                _csr_matvecs(
                    n, num_edges, k * 2 * d,
                    agg_matrix.indptr, agg_matrix.indices, agg_matrix.data,
                    ws.edge_flat, ws.pre_flat,
                )
            else:  # pragma: no cover
                ws.psi_pre[...] = (
                    agg_matrix @ ws.edge_hidden.reshape(num_edges, k * 2 * d)
                ).reshape(n, k, 2 * d)
            # ψ hidden = bias_node + pre W_agg + latent Wₗ + sources w₀, the
            # products GEMM-accumulated (beta=1) straight onto the prefilled
            # bias — no scratch array, no separate addition passes
            if block.bias_node is not None:
                np.copyto(ws.hidden3, block.bias_node[:, None, :])
                _sgemm_acc(ws.pre2d, block.w_psi_agg_T, ws.hidden2d)
            else:
                np.matmul(ws.pre2d, block.w_psi_agg_T, out=ws.hidden2d)
            _sgemm_acc(ws.latent2d, block.w_psi_latent_T, ws.hidden2d)
            _sgemm_acc(ws.input2d, block.w_source_T, ws.hidden2d)
            relu_(ws.hidden2d)
            # damped ResNet update, accumulated directly into the latent
            _sgemm_acc(ws.hidden2d, block.w2_alpha_T, ws.latent2d)
            if block.b2_alpha is not None:
                ws.latent2d += block.b2_alpha
        decoder = self.compiled_decoder
        np.matmul(ws.latent2d, decoder.w1_T, out=ws.hidden2d)
        if decoder.b1 is not None:
            ws.hidden2d += decoder.b1
        relu_(ws.hidden2d)
        np.matmul(ws.hidden2d, decoder.w2_T, out=ws.output2d)
        if decoder.b2 is not None:
            ws.output2d += decoder.b2
        return ws.output

    def aggregate(self, edge_values: np.ndarray, direction: _CompiledDirection, out: np.ndarray) -> np.ndarray:
        """``out = (S @ edge_values) @ W₂ᵀ + deg ⊗ b₂`` — sum-then-project.

        One CSR SpMM onto the destination nodes followed by an ``(n × d)``
        GEMM; equal (to a few ulp) to projecting every edge message first and
        summing afterwards, but with the output layer running on ``n`` rows
        instead of ``E``.
        """
        if _csr_matvecs is not None:
            pre = self.agg_pre
            pre.fill(0.0)
            matrix = self._agg_matrix
            _csr_matvecs(
                matrix.shape[0],
                matrix.shape[1],
                edge_values.shape[1],
                matrix.indptr,
                matrix.indices,
                matrix.data,
                edge_values.ravel(),
                pre.ravel(),
            )
        else:
            pre = self._agg_matrix @ edge_values
        np.matmul(pre, direction.w_out_T, out=out)
        if direction.agg_bias is not None:
            out += direction.agg_bias
        return out

    # ------------------------------------------------------------------ #
    def run(self) -> np.ndarray:
        """Execute the full k̄-iteration forward pass on the current source.

        Returns the flat per-node output — a view of an internal buffer that
        the next ``run`` overwrites.
        """
        model = self.model
        self.latent.fill(0.0)
        for block, ops in zip(model.blocks, self.compiled_blocks):
            block.infer_into(self, ops)
        model.decoders[-1].infer_into(self, self.compiled_decoder)
        return self.output.ravel()
