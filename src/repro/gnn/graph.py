"""Graph representation of discretised (local) Poisson problems.

A :class:`GraphProblem` is the object fed to the DSS model (paper Eq. 15/17):
it carries the node coordinates, the directed edge list with geometric edge
attributes (relative position + distance, Sec. III-B), the normalised source
term per node, the Dirichlet mask, and — for training only — the local sparse
matrix ``A_i`` and right-hand side used by the physics-informed residual loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..mesh.mesh import TriangularMesh

__all__ = ["GraphProblem", "graph_from_mesh"]


@dataclass
class GraphProblem:
    """A graph-structured local Poisson problem.

    Attributes
    ----------
    positions:
        (n, 2) node coordinates.
    edge_index:
        (2, E) directed edges ``src -> dst``.  Both directions of every mesh
        edge are present, except that edges *into* Dirichlet nodes are removed
        (the paper: "boundary nodes' edges point toward the interior").
    edge_attr:
        (E, 3) geometric attributes per directed edge: ``(dx, dy, ‖d‖)`` of the
        vector from destination to source node (the relative position the MLPs
        consume).
    source:
        (n,) node input ``c`` — for DDM-GNN this is the *normalised* local
        residual ``R_i r / ‖R_i r‖``.
    dirichlet_mask:
        (n,) boolean, True where the homogeneous Dirichlet condition applies
        (sub-domain interface and, where relevant, the physical boundary).
    matrix:
        Sparse local operator ``A_i`` (needed to evaluate the residual loss).
    rhs:
        Right-hand side of the *unnormalised* local problem (training target
        context; equals ``source * scaling``).
    scaling:
        The norm ``‖R_i r‖`` divided out of the source (1.0 when not used).
    """

    positions: np.ndarray
    edge_index: np.ndarray
    edge_attr: np.ndarray
    source: np.ndarray
    dirichlet_mask: np.ndarray
    matrix: Optional[sp.csr_matrix] = None
    rhs: Optional[np.ndarray] = None
    scaling: float = 1.0

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64)
        self.edge_index = np.asarray(self.edge_index, dtype=np.int64)
        self.edge_attr = np.asarray(self.edge_attr, dtype=np.float64)
        self.source = np.asarray(self.source, dtype=np.float64).ravel()
        self.dirichlet_mask = np.asarray(self.dirichlet_mask, dtype=bool).ravel()
        if self.edge_index.shape[0] != 2:
            raise ValueError("edge_index must have shape (2, E)")
        if self.edge_attr.shape[0] != self.edge_index.shape[1]:
            raise ValueError("edge_attr must have one row per directed edge")
        if len(self.source) != len(self.positions) or len(self.dirichlet_mask) != len(self.positions):
            raise ValueError("source and dirichlet_mask must have one entry per node")

    @property
    def num_nodes(self) -> int:
        return int(self.positions.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    def residual_norm(self, state: np.ndarray) -> float:
        """Root-mean-square residual of the *normalised* problem (paper Eq. 11).

        ``L_res = 1/n Σ_i (A u − c)_i²`` evaluated with the stored matrix and
        the normalised source; returns ``sqrt(L_res)`` for readability.
        """
        if self.matrix is None:
            raise ValueError("graph has no matrix attached; build it with a matrix for training")
        r = self.matrix @ np.asarray(state, dtype=np.float64) - self.source
        return float(np.sqrt(np.mean(r * r)))


def graph_from_mesh(
    mesh: TriangularMesh,
    source: np.ndarray,
    dirichlet_mask: Optional[np.ndarray] = None,
    matrix: Optional[sp.spmatrix] = None,
    rhs: Optional[np.ndarray] = None,
    scaling: float = 1.0,
    drop_edges_into_dirichlet: bool = True,
) -> GraphProblem:
    """Build a :class:`GraphProblem` from a (sub-)mesh and a per-node source.

    Edge attributes are geometric (Sec. III-B): for an edge ``l → j`` the
    attribute is ``(d_jl, ‖d_jl‖)`` with ``d_jl = x_j − x_l``.

    Parameters
    ----------
    drop_edges_into_dirichlet:
        If True (paper behaviour) edges whose destination is a Dirichlet node
        are removed, so boundary values are never overwritten by messages and
        boundary information only flows inward.
    """
    positions = mesh.nodes
    edge_index = mesh.directed_edge_index.copy()
    if dirichlet_mask is None:
        dirichlet_mask = mesh.boundary_mask.copy()
    dirichlet_mask = np.asarray(dirichlet_mask, dtype=bool)

    if drop_edges_into_dirichlet and dirichlet_mask.any():
        keep = ~dirichlet_mask[edge_index[1]]
        edge_index = edge_index[:, keep]

    src, dst = edge_index[0], edge_index[1]
    rel = positions[dst] - positions[src]
    dist = np.linalg.norm(rel, axis=1, keepdims=True)
    edge_attr = np.hstack([rel, dist])

    return GraphProblem(
        positions=positions,
        edge_index=edge_index,
        edge_attr=edge_attr,
        source=source,
        dirichlet_mask=dirichlet_mask,
        matrix=matrix.tocsr() if matrix is not None else None,
        rhs=rhs,
        scaling=float(scaling),
    )
