"""Graph representation of discretised (local) elliptic problems.

A :class:`GraphProblem` is the object fed to the DSS model (paper Eq. 15/17):
it carries the node coordinates, the directed edge list with geometric edge
attributes (relative position + distance, Sec. III-B), the normalised source
term per node, the Dirichlet mask, and — for training only — the local sparse
matrix ``A_i`` and right-hand side used by the physics-informed residual loss.

For heterogeneous problems (variable-coefficient diffusion) the graph also
carries κ-aware features: ``node_attr`` holds ``log10 κ`` per node and the edge
attributes gain a fourth column with the log10 harmonic mean of κ across the
edge (the conductance a two-point flux approximation would assign to it).
Models configured with the default feature dimensions simply ignore the extra
columns, so κ-aware graphs remain usable with κ-unaware models and vice
versa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..mesh.mesh import TriangularMesh

__all__ = ["GraphProblem", "graph_from_mesh"]


@dataclass
class GraphProblem:
    """A graph-structured local Poisson problem.

    Attributes
    ----------
    positions:
        (n, 2) node coordinates.
    edge_index:
        (2, E) directed edges ``src -> dst``.  Both directions of every mesh
        edge are present, except that edges *into* Dirichlet nodes are removed
        (the paper: "boundary nodes' edges point toward the interior").
    edge_attr:
        (E, 3+) attributes per directed edge: ``(dx, dy, ‖d‖)`` of the vector
        from destination to source node (the relative position the MLPs
        consume), optionally followed by κ-aware columns.
    source:
        (n,) node input ``c`` — for DDM-GNN this is the *normalised* local
        residual ``R_i r / ‖R_i r‖``.
    dirichlet_mask:
        (n,) boolean, True where the homogeneous Dirichlet condition applies
        (sub-domain interface and, where relevant, the physical boundary).
    matrix:
        Sparse local operator ``A_i`` (needed to evaluate the residual loss).
    rhs:
        Right-hand side of the *unnormalised* local problem (training target
        context; equals ``source * scaling``).
    scaling:
        The norm ``‖R_i r‖`` divided out of the source (1.0 when not used).
    node_attr:
        Optional (n, k) extra node features — ``log10 κ`` for heterogeneous
        problems; None for the homogeneous Poisson case.
    """

    positions: np.ndarray
    edge_index: np.ndarray
    edge_attr: np.ndarray
    source: np.ndarray
    dirichlet_mask: np.ndarray
    matrix: Optional[sp.csr_matrix] = None
    rhs: Optional[np.ndarray] = None
    scaling: float = 1.0
    node_attr: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64)
        self.edge_index = np.asarray(self.edge_index, dtype=np.int64)
        self.edge_attr = np.asarray(self.edge_attr, dtype=np.float64)
        self.source = np.asarray(self.source, dtype=np.float64).ravel()
        self.dirichlet_mask = np.asarray(self.dirichlet_mask, dtype=bool).ravel()
        if self.edge_index.shape[0] != 2:
            raise ValueError("edge_index must have shape (2, E)")
        if self.edge_attr.shape[0] != self.edge_index.shape[1]:
            raise ValueError("edge_attr must have one row per directed edge")
        if len(self.source) != len(self.positions) or len(self.dirichlet_mask) != len(self.positions):
            raise ValueError("source and dirichlet_mask must have one entry per node")
        if self.node_attr is not None:
            self.node_attr = np.asarray(self.node_attr, dtype=np.float64)
            if self.node_attr.ndim == 1:
                self.node_attr = self.node_attr.reshape(-1, 1)
            if self.node_attr.shape[0] != len(self.positions):
                raise ValueError("node_attr must have one row per node")

    @property
    def num_nodes(self) -> int:
        return int(self.positions.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    def residual_norm(self, state: np.ndarray) -> float:
        """Root-mean-square residual of the *normalised* problem (paper Eq. 11).

        ``L_res = 1/n Σ_i (A u − c)_i²`` evaluated with the stored matrix and
        the normalised source; returns ``sqrt(L_res)`` for readability.
        """
        if self.matrix is None:
            raise ValueError("graph has no matrix attached; build it with a matrix for training")
        r = self.matrix @ np.asarray(state, dtype=np.float64) - self.source
        return float(np.sqrt(np.mean(r * r)))


def graph_from_mesh(
    mesh: TriangularMesh,
    source: np.ndarray,
    dirichlet_mask: Optional[np.ndarray] = None,
    matrix: Optional[sp.spmatrix] = None,
    rhs: Optional[np.ndarray] = None,
    scaling: float = 1.0,
    drop_edges_into_dirichlet: bool = True,
    diffusion: Optional[np.ndarray] = None,
) -> GraphProblem:
    """Build a :class:`GraphProblem` from a (sub-)mesh and a per-node source.

    Edge attributes are geometric (Sec. III-B): for an edge ``l → j`` the
    attribute is ``(d_jl, ‖d_jl‖)`` with ``d_jl = x_j − x_l``.

    Parameters
    ----------
    drop_edges_into_dirichlet:
        If True (paper behaviour) edges whose destination is a Dirichlet node
        are removed, so boundary values are never overwritten by messages and
        boundary information only flows inward.
    diffusion:
        Optional per-node κ values.  When given, ``node_attr`` is set to
        ``log10 κ`` and the edge attributes gain a fourth column with the
        log10 harmonic mean of the endpoint κ values (the two-point-flux edge
        conductance), making the graph κ-aware.  The decimal log keeps the
        feature range moderate (≤ 4 even at contrast 10⁴) so the κ channel
        does not drown the O(h) geometric attributes.
    """
    positions = mesh.nodes
    edge_index = mesh.directed_edge_index.copy()
    if dirichlet_mask is None:
        dirichlet_mask = mesh.boundary_mask.copy()
    dirichlet_mask = np.asarray(dirichlet_mask, dtype=bool)

    if drop_edges_into_dirichlet and dirichlet_mask.any():
        keep = ~dirichlet_mask[edge_index[1]]
        edge_index = edge_index[:, keep]

    src, dst = edge_index[0], edge_index[1]
    rel = positions[dst] - positions[src]
    dist = np.linalg.norm(rel, axis=1, keepdims=True)
    edge_attr = np.hstack([rel, dist])

    node_attr = None
    if diffusion is not None:
        kappa = np.asarray(diffusion, dtype=np.float64).ravel()
        if kappa.shape[0] != positions.shape[0]:
            raise ValueError("diffusion must have one κ value per node")
        if kappa.size and float(kappa.min()) <= 0.0:
            raise ValueError("diffusion values must be strictly positive")
        node_attr = np.log10(kappa).reshape(-1, 1)
        k_src, k_dst = kappa[src], kappa[dst]
        harmonic = 2.0 * k_src * k_dst / (k_src + k_dst)
        edge_attr = np.hstack([edge_attr, np.log10(harmonic).reshape(-1, 1)])

    return GraphProblem(
        positions=positions,
        edge_index=edge_index,
        edge_attr=edge_attr,
        source=source,
        dirichlet_mask=dirichlet_mask,
        matrix=matrix.tocsr() if matrix is not None else None,
        rhs=rhs,
        scaling=float(scaling),
        node_attr=node_attr,
    )
