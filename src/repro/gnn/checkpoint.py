"""Versioned single-file checkpoints for DSS models and trainers.

The paper's headline artifact is a *trained* preconditioner, so model weights
need to be durable, versioned and verifiable.  A checkpoint is one ``.npz``
archive containing

* ``__checkpoint__`` — a JSON header with a magic format marker, a schema
  version, the full :class:`~repro.gnn.dss.DSSConfig`, a SHA-256 config hash,
  optional user metadata and (when saved from a trainer) the complete
  training state: epoch counter, shuffle-RNG state, per-epoch history and
  the optimizer/scheduler scalars;
* ``model/<name>`` — one array per model parameter (float64, lossless);
* ``optim/<slot>/<index>`` — optimiser slot arrays (Adam's first/second
  moments), aligned with the parameter order.

Everything numeric round-trips bit-exactly: reloading a checkpoint and
rebuilding the model reproduces ``DSS.infer`` outputs bit-identically, and a
resumed training run bit-matches an uninterrupted one.  Files are written
atomically (temp file + ``os.replace``) so an interrupted save never leaves a
truncated checkpoint behind.

Mismatched or corrupt files are rejected with :class:`CheckpointError` before
any state is touched: missing header, wrong magic, newer schema version,
missing parameter arrays, or shape mismatches.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from .dss import DSS, DSSConfig

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "Checkpoint",
    "config_hash",
    "save_checkpoint",
    "load_checkpoint",
    "load_model",
]

CHECKPOINT_FORMAT = "repro-dss-checkpoint"
CHECKPOINT_SCHEMA_VERSION = 1
_HEADER_KEY = "__checkpoint__"


class CheckpointError(RuntimeError):
    """Raised when a checkpoint file is corrupt, foreign, or incompatible."""


# --------------------------------------------------------------------------- #
# config hashing
# --------------------------------------------------------------------------- #
def _canonical(obj):
    """Reduce an object to JSON-serialisable canonical form for hashing."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canonical(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, Path):
        return str(obj)
    return obj


def config_hash(*objects) -> str:
    """Stable SHA-256 over the canonical JSON of dataclasses/dicts/scalars.

    Key order, tuple-vs-list and NumPy scalar types do not affect the digest,
    so the hash is reproducible across processes and Python versions — it is
    the identity under which experiment artifacts are cached (locally and by
    CI's ``actions/cache``).
    """
    payload = json.dumps([_canonical(obj) for obj in objects], sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# save
# --------------------------------------------------------------------------- #
def save_checkpoint(
    path: Union[str, Path],
    model: DSS,
    trainer=None,
    metadata: Optional[Dict] = None,
) -> str:
    """Write a versioned checkpoint; returns its config hash.

    ``trainer`` (a :class:`~repro.gnn.training.DSSTrainer`) is optional: a
    weights-only checkpoint still records the model config and hash, while a
    trainer checkpoint additionally embeds everything needed for a
    bit-identical resume.
    """
    path = Path(path)
    model_state = model.state_dict()
    arrays: Dict[str, np.ndarray] = {f"model/{name}": value for name, value in model_state.items()}

    trainer_state = None
    optimizer_slots: Dict[str, int] = {}
    if trainer is not None:
        trainer_state = trainer.state_dict()
        slots = trainer_state["optimizer"].pop("slots", {})
        for slot_name, slot_arrays in slots.items():
            optimizer_slots[slot_name] = len(slot_arrays)
            for i, value in enumerate(slot_arrays):
                arrays[f"optim/{slot_name}/{i}"] = value

    header = {
        "format": CHECKPOINT_FORMAT,
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "saved_at": time.time(),
        "config": dataclasses.asdict(model.config),
        "config_hash": config_hash(model.config),
        "model_keys": sorted(model_state),
        "optimizer_slots": optimizer_slots,
        "trainer": trainer_state,
        "metadata": _canonical(metadata or {}),
    }
    arrays[_HEADER_KEY] = np.array(json.dumps(header))

    # atomic write: an interrupted save never leaves a truncated file
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **arrays)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return header["config_hash"]


# --------------------------------------------------------------------------- #
# load
# --------------------------------------------------------------------------- #
@dataclass
class Checkpoint:
    """A fully parsed checkpoint, ready to rebuild models and trainers."""

    path: str
    header: Dict
    model_state: Dict[str, np.ndarray]
    optimizer_slots: Dict[str, List[np.ndarray]]

    # -- header accessors ----------------------------------------------------
    @property
    def schema_version(self) -> int:
        return int(self.header["schema_version"])

    @property
    def config(self) -> DSSConfig:
        return DSSConfig(**self.header["config"])

    @property
    def config_hash(self) -> str:
        return self.header["config_hash"]

    @property
    def epochs_done(self) -> int:
        trainer = self.header.get("trainer")
        return int(trainer["epochs_done"]) if trainer else 0

    @property
    def metadata(self) -> Dict:
        return self.header.get("metadata", {})

    # -- reconstruction ------------------------------------------------------
    def build_model(self) -> DSS:
        """Instantiate a DSS from the stored config and load the weights."""
        model = DSS(self.config)
        model.load_state_dict(self.model_state)
        model.eval()
        return model

    def build_trainer(self):
        """Rebuild ``(model, trainer)`` ready to resume where training stopped."""
        from .training import DSSTrainer, TrainingConfig  # local import: training imports us lazily

        trainer_state = self.header.get("trainer")
        if trainer_state is None:
            raise CheckpointError(f"'{self.path}' is a weights-only checkpoint (no trainer state)")
        model = DSS(self.config)
        trainer = DSSTrainer(model, TrainingConfig(**trainer_state["config"]))
        self.restore(model=model, trainer=trainer)
        return model, trainer

    def restore(self, model: Optional[DSS] = None, trainer=None) -> None:
        """Load the stored state into an existing model and/or trainer."""
        if model is not None:
            model.load_state_dict(self.model_state)
        if trainer is not None:
            trainer_state = self.header.get("trainer")
            if trainer_state is None:
                raise CheckpointError(f"'{self.path}' is a weights-only checkpoint (no trainer state)")
            state = json.loads(json.dumps(trainer_state))  # deep copy; header stays pristine
            state["optimizer"]["slots"] = self.optimizer_slots
            trainer.load_state_dict(state)
            if model is None:
                trainer.model.load_state_dict(self.model_state)


def load_checkpoint(path: Union[str, Path]) -> Checkpoint:
    """Read and validate a checkpoint file (raises :class:`CheckpointError`)."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise CheckpointError(f"'{path}' is not a readable .npz archive: {exc}") from exc

    if _HEADER_KEY not in arrays:
        raise CheckpointError(f"'{path}' has no checkpoint header (legacy weights-only file?)")
    try:
        header = json.loads(str(arrays.pop(_HEADER_KEY)[()]))
    except (json.JSONDecodeError, TypeError) as exc:
        raise CheckpointError(f"'{path}' has a corrupt checkpoint header: {exc}") from exc

    if header.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"'{path}' is not a {CHECKPOINT_FORMAT} file (format={header.get('format')!r})"
        )
    version = header.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise CheckpointError(f"'{path}' has an invalid schema version {version!r}")
    if version > CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"'{path}' uses checkpoint schema v{version}; this build reads up to "
            f"v{CHECKPOINT_SCHEMA_VERSION} — upgrade the code, not the file"
        )

    model_state = {
        key[len("model/"):]: value for key, value in arrays.items() if key.startswith("model/")
    }
    expected = set(header.get("model_keys", []))
    if expected != set(model_state):
        missing = sorted(expected - set(model_state))
        extra = sorted(set(model_state) - expected)
        raise CheckpointError(
            f"'{path}' is corrupt: parameter arrays do not match the header "
            f"(missing={missing} unexpected={extra})"
        )

    optimizer_slots: Dict[str, List[np.ndarray]] = {}
    for slot_name, count in (header.get("optimizer_slots") or {}).items():
        slot_arrays = []
        for i in range(int(count)):
            key = f"optim/{slot_name}/{i}"
            if key not in arrays:
                raise CheckpointError(f"'{path}' is corrupt: missing optimiser array '{key}'")
            slot_arrays.append(arrays[key])
        optimizer_slots[slot_name] = slot_arrays

    return Checkpoint(
        path=str(path), header=header, model_state=model_state, optimizer_slots=optimizer_slots
    )


def load_model(path: Union[str, Path]) -> DSS:
    """Convenience: rebuild just the (eval-mode) model from a checkpoint."""
    return load_checkpoint(path).build_model()
