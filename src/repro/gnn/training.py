"""Training loop for the DSS model (paper Sec. IV-B).

The reference configuration in the paper: Adam with learning rate 1e-2,
batch size 100, gradient clipping at 1e-2, ``ReduceLROnPlateau`` (factor 0.1),
400 epochs on ~70k local problems.  The :class:`DSSTrainer` reproduces that
pipeline with every quantity configurable so the scaled-down offline runs in
this repository use the same code path.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse.linalg as spla

from ..nn.optim import Adam, clip_grad_norm
from ..nn.schedulers import ReduceLROnPlateau
from .batch import GraphBatch
from .dss import DSS
from .graph import GraphProblem
from .loss import relative_error

__all__ = ["TrainingConfig", "EpochStats", "EvaluationMetrics", "DSSTrainer", "evaluate_model"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of a DSS training run."""

    epochs: int = 400
    batch_size: int = 100
    learning_rate: float = 1e-2
    gradient_clip: float = 1e-2
    scheduler_factor: float = 0.1
    scheduler_patience: int = 10
    shuffle: bool = True
    seed: int = 0
    log_every: int = 1


@dataclass
class EpochStats:
    """Loss/metric record for one epoch."""

    epoch: int
    train_loss: float
    validation_residual: Optional[float] = None
    validation_relative_error: Optional[float] = None
    learning_rate: float = 0.0
    elapsed_time: float = 0.0


@dataclass
class EvaluationMetrics:
    """Test-set metrics reported by the paper (Sec. IV-B and Table II)."""

    residual_mean: float
    residual_std: float
    relative_error_mean: float
    relative_error_std: float
    num_samples: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "residual_mean": self.residual_mean,
            "residual_std": self.residual_std,
            "relative_error_mean": self.relative_error_mean,
            "relative_error_std": self.relative_error_std,
            "num_samples": self.num_samples,
        }


def evaluate_model(model: DSS, problems: Sequence[GraphProblem], batch_size: int = 64) -> EvaluationMetrics:
    """Evaluate residual norms and relative errors against exact LU solutions.

    * residual — ``sqrt(mean((A u − c)²))`` of the normalised local problem,
      the quantity the paper reports as "Residual";
    * relative error — ‖u − u*‖/‖u*‖ where u* is the exact solution of the
      local problem computed by sparse LU.
    """
    problems = list(problems)
    if not problems:
        raise ValueError("cannot evaluate on an empty problem list")
    predictions = model.predict_batched(problems, batch_size=batch_size)
    residuals: List[float] = []
    rel_errors: List[float] = []
    for problem, prediction in zip(problems, predictions):
        residuals.append(problem.residual_norm(prediction))
        if problem.matrix is not None:
            exact = spla.spsolve(problem.matrix.tocsc(), problem.source)
            rel_errors.append(relative_error(prediction, exact))
    return EvaluationMetrics(
        residual_mean=float(np.mean(residuals)),
        residual_std=float(np.std(residuals)),
        relative_error_mean=float(np.mean(rel_errors)) if rel_errors else float("nan"),
        relative_error_std=float(np.std(rel_errors)) if rel_errors else float("nan"),
        num_samples=len(problems),
    )


class DSSTrainer:
    """Mini-batch trainer for :class:`DSS` with the paper's optimisation recipe."""

    def __init__(self, model: DSS, config: TrainingConfig = TrainingConfig()) -> None:
        self.model = model
        self.config = config
        self.optimizer = Adam(model.parameters(), lr=config.learning_rate)
        self.scheduler = ReduceLROnPlateau(
            self.optimizer, factor=config.scheduler_factor, patience=config.scheduler_patience
        )
        self.history: List[EpochStats] = []
        self.epochs_done = 0
        # the shuffle stream lives on the trainer (not in `fit`) so that a
        # checkpointed run resumes mid-stream and bit-matches an uninterrupted one
        self._rng: Optional[np.random.Generator] = None

    # ------------------------------------------------------------------ #
    def train_epoch(self, problems: Sequence[GraphProblem], rng: np.random.Generator) -> float:
        """One pass over the training set; returns the mean per-batch loss."""
        problems = list(problems)
        order = np.arange(len(problems))
        if self.config.shuffle:
            rng.shuffle(order)
        losses: List[float] = []
        batch_size = max(1, self.config.batch_size)
        # one feature-width scan for the whole epoch instead of one per chunk
        edge_dim, node_dim = GraphBatch.feature_dims(problems) if problems else (3, 0)
        for start in range(0, len(problems), batch_size):
            chunk = [problems[i] for i in order[start:start + batch_size]]
            batch = GraphBatch.from_graphs(chunk, edge_attr_dim=edge_dim, node_attr_dim=node_dim)
            self.optimizer.zero_grad()
            loss = self.model.training_loss(batch)
            loss.backward()
            clip_grad_norm(self.optimizer.parameters, self.config.gradient_clip)
            self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    def fit(
        self,
        train_problems: Sequence[GraphProblem],
        validation_problems: Optional[Sequence[GraphProblem]] = None,
        epochs: Optional[int] = None,
        verbose: bool = False,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1,
        checkpoint_metadata: Optional[Dict] = None,
    ) -> List[EpochStats]:
        """Train until epoch ``epochs`` (total), with optional per-epoch validation.

        A fresh trainer runs the full ``epochs`` epochs exactly as before; a
        trainer restored from a checkpoint (see :mod:`repro.gnn.checkpoint`)
        continues from ``self.epochs_done`` with the optimiser, scheduler and
        shuffle-RNG state it was saved with, so the resumed run bit-matches an
        uninterrupted one.  When ``checkpoint_path`` is given, a full
        checkpoint is written every ``checkpoint_every`` epochs and at the end.
        """
        if self._rng is None:
            self._rng = np.random.default_rng(self.config.seed)
        rng = self._rng
        epochs = epochs if epochs is not None else self.config.epochs
        self.model.train()
        for epoch in range(self.epochs_done + 1, epochs + 1):
            start = time.perf_counter()
            train_loss = self.train_epoch(train_problems, rng)
            stats = EpochStats(
                epoch=epoch,
                train_loss=train_loss,
                learning_rate=self.optimizer.lr,
                elapsed_time=time.perf_counter() - start,
            )
            if validation_problems:
                self.model.eval()
                metrics = evaluate_model(self.model, validation_problems, batch_size=self.config.batch_size)
                stats.validation_residual = metrics.residual_mean
                stats.validation_relative_error = metrics.relative_error_mean
                self.scheduler.step(metrics.residual_mean)
                self.model.train()
            else:
                self.scheduler.step(train_loss)
            self.history.append(stats)
            self.epochs_done = epoch
            if checkpoint_path is not None and (
                epoch % max(1, checkpoint_every) == 0 or epoch == epochs
            ):
                self.save_checkpoint(checkpoint_path, metadata=checkpoint_metadata)
            if verbose and (epoch % self.config.log_every == 0):
                val = f", val residual {stats.validation_residual:.4e}" if stats.validation_residual is not None else ""
                print(f"[epoch {epoch:4d}] loss {train_loss:.4e}{val} (lr {self.optimizer.lr:.2e})")
        self.model.eval()
        return self.history

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict:
        """Everything needed to resume training deterministically.

        The model parameters are *not* included — they travel separately
        through ``model.state_dict()`` (see :mod:`repro.gnn.checkpoint` for
        the single-file format bundling both).
        """
        return {
            "epochs_done": self.epochs_done,
            "rng_state": None if self._rng is None else self._rng.bit_generator.state,
            "history": [asdict(stats) for stats in self.history],
            "config": asdict(self.config),
            "optimizer": self.optimizer.state_dict(),
            "scheduler": self.scheduler.state_dict(),
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore trainer progress saved by :meth:`state_dict`.

        The trainer must have been constructed with the same
        :class:`TrainingConfig` the state was saved under — a silently
        different recipe (batch size, learning rate, seed, ...) would break
        the resume-bit-matches-uninterrupted guarantee, so mismatches raise.
        """
        saved_config = state.get("config")
        if saved_config is not None and saved_config != asdict(self.config):
            changed = sorted(
                key for key in set(saved_config) | set(asdict(self.config))
                if saved_config.get(key) != asdict(self.config).get(key)
            )
            raise ValueError(
                f"trainer config does not match the checkpointed one (differs in {changed}); "
                "construct the trainer with the saved config, or use Checkpoint.build_trainer()"
            )
        self.epochs_done = int(state["epochs_done"])
        rng_state = state.get("rng_state")
        if rng_state is None:
            self._rng = None
        else:
            self._rng = np.random.default_rng(self.config.seed)
            self._rng.bit_generator.state = rng_state
        self.history = [EpochStats(**stats) for stats in state.get("history", [])]
        self.optimizer.load_state_dict(state["optimizer"])
        self.scheduler.load_state_dict(state["scheduler"])

    def save_checkpoint(self, path: str, metadata: Optional[Dict] = None) -> None:
        """Write a full versioned checkpoint (model + trainer state) to ``path``."""
        from .checkpoint import save_checkpoint  # local import: checkpoint imports this module

        save_checkpoint(path, self.model, trainer=self, metadata=metadata)

    def load_checkpoint(self, path: str) -> None:
        """Restore model weights and trainer progress from a checkpoint file."""
        from .checkpoint import load_checkpoint

        load_checkpoint(path).restore(model=self.model, trainer=self)
