"""Graph neural network substrate and the Deep Statistical Solver model.

Public surface:

* :class:`~repro.gnn.dss.DSS`, :class:`~repro.gnn.dss.DSSConfig` — the GNN
  solver (paper Fig. 3).
* :class:`~repro.gnn.graph.GraphProblem`,
  :func:`~repro.gnn.graph.graph_from_mesh` — graph-structured local problems.
* :class:`~repro.gnn.batch.GraphBatch` — disjoint-union batching.
* :class:`~repro.gnn.batch.BatchPlan`,
  :class:`~repro.gnn.infer.InferencePlan` — precompiled iteration-time fast
  path (``DSS.compile_plan`` / ``DSS.infer``).
* :class:`~repro.gnn.mpnn.DSSBlock`, :class:`~repro.gnn.mpnn.Decoder` —
  message-passing building blocks.
* :func:`~repro.gnn.loss.residual_loss`, :func:`~repro.gnn.loss.relative_error`
  — the physics-informed loss and metrics.
* :class:`~repro.gnn.training.DSSTrainer`,
  :class:`~repro.gnn.training.TrainingConfig`,
  :func:`~repro.gnn.training.evaluate_model` — training pipeline.
* :func:`~repro.gnn.checkpoint.save_checkpoint`,
  :func:`~repro.gnn.checkpoint.load_checkpoint`,
  :func:`~repro.gnn.checkpoint.load_model`,
  :func:`~repro.gnn.checkpoint.config_hash` — versioned single-file
  checkpoints (weights + optimizer + scheduler + RNG state) with
  bit-identical round-trips and deterministic training resume.
"""

from .batch import BatchPlan, GraphBatch
from .checkpoint import (
    Checkpoint,
    CheckpointError,
    config_hash,
    load_checkpoint,
    load_model,
    save_checkpoint,
)
from .dss import DSS, DSSConfig
from .graph import GraphProblem, graph_from_mesh
from .infer import InferencePlan
from .loss import relative_error, residual_loss
from .mpnn import Decoder, DSSBlock
from .training import DSSTrainer, EvaluationMetrics, EpochStats, TrainingConfig, evaluate_model

__all__ = [
    "DSS",
    "DSSConfig",
    "GraphProblem",
    "graph_from_mesh",
    "GraphBatch",
    "BatchPlan",
    "InferencePlan",
    "DSSBlock",
    "Decoder",
    "residual_loss",
    "relative_error",
    "DSSTrainer",
    "TrainingConfig",
    "EpochStats",
    "EvaluationMetrics",
    "evaluate_model",
    "Checkpoint",
    "CheckpointError",
    "config_hash",
    "save_checkpoint",
    "load_checkpoint",
    "load_model",
]
