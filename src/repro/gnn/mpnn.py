"""Message-passing building blocks of the DSS architecture (paper Eqs. 18–20).

Each :class:`DSSBlock` holds three MLPs with their own weights:

* ``Φ→`` and ``Φ←`` compute messages on directed edges from the latent states
  of the two endpoints and the geometric edge attributes (relative position
  vector and its norm); messages are summed onto the destination node.
* ``Ψ`` updates the latent state in a ResNet fashion from the current latent,
  the node input ``c`` (the normalised residual) and both aggregated messages,
  scaled by the damping coefficient ``α`` (1e-3 in the paper).

All MLPs have a single hidden layer whose width equals the latent dimension
``d``; this reproduces exactly the parameter counts of the paper's Table II
(e.g. k̄=30, d=10 → 37 530 weights).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.functional import concatenate, gather, relu_, segment_sum
from ..nn.modules import MLP, Module
from ..nn.tensor import Tensor

__all__ = ["DSSBlock", "Decoder"]


class DSSBlock(Module):
    """One message-passing + update block ``M_θ^{k}`` (paper Eq. 21)."""

    def __init__(
        self,
        latent_dim: int,
        alpha: float = 1e-3,
        rng: Optional[np.random.Generator] = None,
        edge_attr_dim: int = 3,
        node_input_dim: int = 1,
    ) -> None:
        super().__init__()
        if latent_dim < 1:
            raise ValueError("latent_dim must be >= 1")
        if edge_attr_dim < 3 or node_input_dim < 1:
            raise ValueError("edge_attr_dim must be >= 3 and node_input_dim >= 1")
        self.latent_dim = int(latent_dim)
        self.alpha = float(alpha)
        self.edge_attr_dim = int(edge_attr_dim)
        self.node_input_dim = int(node_input_dim)
        d = self.latent_dim
        edge_in = 2 * d + self.edge_attr_dim      # h_dst, h_src, (dx, dy, ||d||, extras)
        update_in = 3 * d + self.node_input_dim   # h, c (+ node extras), phi_fwd, phi_bwd
        self.phi_forward = MLP(edge_in, [d], d, activation="relu", rng=rng)
        self.phi_backward = MLP(edge_in, [d], d, activation="relu", rng=rng)
        self.psi = MLP(update_in, [d], d, activation="relu", rng=rng)

    def forward(
        self,
        latent: Tensor,
        node_input: Tensor,
        edge_index: np.ndarray,
        edge_attr: np.ndarray,
    ) -> Tensor:
        """Advance the latent state by one message-passing iteration.

        Parameters
        ----------
        latent:
            (n, d) latent node states ``H^k``.
        node_input:
            (n, node_input_dim) node inputs — the normalised residual ``c``,
            plus extra per-node features (e.g. log κ) when configured.
        edge_index:
            (2, E) directed edges ``src → dst``.
        edge_attr:
            (E, edge_attr_dim) attributes: ``(dx, dy, ‖d‖)`` of the vector
            from source to destination node, plus optional extra columns.
        """
        num_nodes = latent.shape[0]
        src, dst = edge_index[0], edge_index[1]

        h_src = gather(latent, src)
        h_dst = gather(latent, dst)

        attr_fwd = Tensor(edge_attr)
        # reversed relative position, same distance, for the "incoming" messages
        reversed_attr = edge_attr.copy()
        reversed_attr[:, :2] *= -1.0
        attr_bwd = Tensor(reversed_attr)

        msg_fwd = self.phi_forward(concatenate([h_dst, h_src, attr_fwd], axis=1))
        msg_bwd = self.phi_backward(concatenate([h_dst, h_src, attr_bwd], axis=1))

        agg_fwd = segment_sum(msg_fwd, dst, num_nodes)
        agg_bwd = segment_sum(msg_bwd, dst, num_nodes)

        update = self.psi(concatenate([latent, node_input, agg_fwd, agg_bwd], axis=1))
        return latent + self.alpha * update

    # ------------------------------------------------------------------ #
    # inference fast path (raw ndarrays, reused buffers, no tape)
    # ------------------------------------------------------------------ #
    def infer_into(self, ws, ops) -> None:
        """Advance ``ws.latent`` by one message-passing iteration in place.

        ``ws`` is an :class:`~repro.gnn.infer.InferencePlan` workspace and
        ``ops`` its prestaged weights for this block.  The latent state and
        both aggregation targets are column views of the persistent ``ψ``
        input buffer, so the only per-iteration work is GEMMs into reused
        scratch, two contiguous gathers per message direction, and one SpMM
        aggregation each — no tape, no per-call allocations.
        """
        self._messages_into(ws, ops.forward_dir, ws.agg_fwd)
        self._messages_into(ws, ops.backward_dir, ws.agg_bwd)

        # ψ reads [latent | node_input | agg_fwd | agg_bwd] — all column views
        # of ws.node_cat, already up to date — and the damped ResNet update
        # lands back in the latent view
        np.matmul(ws.node_cat, ops.psi_w1_T, out=ws.node_hidden)
        if ops.psi_b1 is not None:
            ws.node_hidden += ops.psi_b1
        relu_(ws.node_hidden)
        np.matmul(ws.node_hidden, ops.psi_w2_T, out=ws.update)
        if ops.psi_b2 is not None:
            ws.update += ops.psi_b2
        np.multiply(ws.update, self.alpha, out=ws.update)
        ws.latent += ws.update

    @staticmethod
    def _messages_into(ws, direction, agg_out: np.ndarray) -> None:
        """One message direction: Φ on every edge, summed onto destinations.

        The hidden layer ``W₁ [h_dst | h_src | e] + b₁`` is evaluated as
        per-node projections of the two disjoint latent weight blocks —
        ``(n × d)`` GEMMs instead of an ``(E × 2d+|e|)`` one — gathered to the
        edges and combined with the precompiled static attribute term.
        """
        np.matmul(ws.latent, direction.w_dst_T, out=ws.proj_dst)
        np.matmul(ws.latent, direction.w_src_T, out=ws.proj_src)
        # mode="clip" skips numpy's slow bounds-checked out= path; the plan's
        # edge indices are in range by construction
        np.take(ws.proj_dst, ws.dst, axis=0, out=ws.edge_hidden, mode="clip")
        np.take(ws.proj_src, ws.src, axis=0, out=ws.edge_scratch, mode="clip")
        ws.edge_hidden += ws.edge_scratch
        if direction.static is not None:
            ws.edge_hidden += direction.static
        else:
            # above the static-term memory budget: one small (E × |e|) GEMM
            np.matmul(direction.attr, direction.w_attr_T, out=ws.edge_scratch)
            ws.edge_hidden += ws.edge_scratch
            if direction.b_hidden is not None:
                ws.edge_hidden += direction.b_hidden
        relu_(ws.edge_hidden)
        # aggregation onto the destination nodes fused with the output layer
        ws.aggregate(ws.edge_hidden, direction, agg_out)

    # ------------------------------------------------------------------ #
    # multi-column inference (k sources per node, one network sweep)
    # ------------------------------------------------------------------ #
    def infer_columns_into(self, ws, cw, ops) -> None:
        """Advance all ``k`` latent columns of workspace ``cw`` by one iteration.

        The structure mirrors :meth:`infer_into` exactly; the gather-add, the
        aggregation SpMM and every elementwise op are fused across columns
        (all exact per column), the GEMMs run per contiguous column slab (the
        bitwise-safe form — see :mod:`repro.gnn.infer`).
        """
        from .infer import _matmul_slabs

        self._messages_columns_into(ws, cw, ops.forward_dir, cw.agg_fwd)
        self._messages_columns_into(ws, cw, ops.backward_dir, cw.agg_bwd)

        _matmul_slabs(cw.node_cat, ops.psi_w1_T, cw.node_hidden)
        if ops.psi_b1 is not None:
            cw.node_hidden += ops.psi_b1
        relu_(cw.node_hidden)
        _matmul_slabs(cw.node_hidden, ops.psi_w2_T, cw.update)
        if ops.psi_b2 is not None:
            cw.update += ops.psi_b2
        np.multiply(cw.update, self.alpha, out=cw.update)
        cw.latent += cw.update

    @staticmethod
    def _messages_columns_into(ws, cw, direction, agg_out: np.ndarray) -> None:
        """Multi-column :meth:`_messages_into`: slab GEMMs, one gather SpMM.

        The per-node projections land in the ``(k, 2, n, d)`` projection
        buffer whose flattened rows are exactly the columns of the
        block-diagonal two-ones gather operator; one SpMM then replaces the
        two per-column ``np.take`` gathers *and* their addition.
        """
        from .infer import _matmul_slabs

        _matmul_slabs(cw.latent, direction.w_dst_T, cw.proj_dst)
        _matmul_slabs(cw.latent, direction.w_src_T, cw.proj_src)
        ws.gather_add_columns(cw, direction)
        relu_(cw.edge_hidden)
        ws.aggregate_columns(cw, direction, agg_out)


class Decoder(Module):
    """Per-iteration decoder ``D_θ^{k}`` mapping the latent state to a scalar field."""

    def __init__(self, latent_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        d = int(latent_dim)
        self.mlp = MLP(d, [d], 1, activation="relu", rng=rng)

    def forward(self, latent: Tensor) -> Tensor:
        return self.mlp(latent)

    def infer_into(self, ws, ops) -> np.ndarray:
        """Decode ``ws.latent`` into ``ws.output`` (raw-ndarray fast path)."""
        np.matmul(ws.latent, ops.w1_T, out=ws.node_hidden)
        if ops.b1 is not None:
            ws.node_hidden += ops.b1
        relu_(ws.node_hidden)
        np.matmul(ws.node_hidden, ops.w2_T, out=ws.output)
        if ops.b2 is not None:
            ws.output += ops.b2
        return ws.output

    def infer_columns_into(self, ws, cw, ops) -> np.ndarray:
        """Decode all ``k`` latent columns into ``cw.output`` at once."""
        from .infer import _matmul_slabs

        _matmul_slabs(cw.latent, ops.w1_T, cw.node_hidden)
        if ops.b1 is not None:
            cw.node_hidden += ops.b1
        relu_(cw.node_hidden)
        _matmul_slabs(cw.node_hidden, ops.w2_T, cw.output)
        if ops.b2 is not None:
            cw.output += ops.b2
        return cw.output
