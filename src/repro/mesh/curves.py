"""Closed-curve generation for random 2-D domains.

The paper (Sec. IV-A) builds random domains by sampling 20 points on the unit
circle and connecting them with Bezier curves to form a smooth closed
boundary.  This module implements exactly that: random control points, cubic
Bezier segments through them (Catmull–Rom style tangent construction so the
composite curve is C1), and utilities to sample the boundary polygon and test
point membership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["ClosedCurve", "random_boundary_curve", "circle_curve", "polygon_contains"]


def _cubic_bezier(p0: np.ndarray, p1: np.ndarray, p2: np.ndarray, p3: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Evaluate a cubic Bezier segment at parameters ``t`` in [0, 1]."""
    t = t[:, None]
    return (
        (1 - t) ** 3 * p0
        + 3 * (1 - t) ** 2 * t * p1
        + 3 * (1 - t) * t ** 2 * p2
        + t ** 3 * p3
    )


@dataclass
class ClosedCurve:
    """A smooth closed curve defined by Bezier segments through control points.

    Attributes
    ----------
    control_points:
        (n, 2) array of points the curve interpolates, ordered by angle.
    tension:
        Catmull-Rom style tension used to place the inner Bezier handles.
    """

    control_points: np.ndarray
    tension: float = 0.35

    def sample(self, points_per_segment: int = 20) -> np.ndarray:
        """Return a dense closed polygon (M, 2) approximating the curve.

        The last point is *not* duplicated; the polygon is implicitly closed.
        """
        pts = np.asarray(self.control_points, dtype=np.float64)
        n = len(pts)
        if n < 3:
            raise ValueError("a closed curve needs at least 3 control points")
        t = np.linspace(0.0, 1.0, points_per_segment, endpoint=False)
        segments: List[np.ndarray] = []
        for i in range(n):
            p_prev = pts[(i - 1) % n]
            p0 = pts[i]
            p3 = pts[(i + 1) % n]
            p_next = pts[(i + 2) % n]
            # Catmull-Rom tangents converted to Bezier handles
            handle1 = p0 + self.tension * (p3 - p_prev) / 2.0
            handle2 = p3 - self.tension * (p_next - p0) / 2.0
            segments.append(_cubic_bezier(p0, handle1, handle2, p3, t))
        return np.vstack(segments)

    def bounding_box(self, points_per_segment: int = 20) -> Tuple[np.ndarray, np.ndarray]:
        """Return (min_xy, max_xy) of the sampled boundary."""
        poly = self.sample(points_per_segment)
        return poly.min(axis=0), poly.max(axis=0)


def random_boundary_curve(
    n_points: int = 20,
    radius: float = 1.0,
    radial_jitter: float = 0.3,
    rng: Optional[np.random.Generator] = None,
    tension: float = 0.35,
) -> ClosedCurve:
    """Generate a random smooth closed boundary in the spirit of the paper.

    ``n_points`` control points are placed at sorted random angles on a circle
    of radius ``radius`` with multiplicative radial jitter, then joined with
    C1 cubic Bezier segments.

    Parameters
    ----------
    n_points:
        Number of control points (the paper uses 20).
    radius:
        Base radius of the domain.  The paper scales this radius to grow the
        mesh while keeping the element size fixed.
    radial_jitter:
        Relative amplitude of the radial perturbation (0 gives a circle).
    """
    rng = rng if rng is not None else np.random.default_rng()
    angles = np.sort(rng.uniform(0.0, 2.0 * np.pi, size=n_points))
    # enforce a minimal angular gap to avoid self-intersection of the curve
    min_gap = 2.0 * np.pi / (4.0 * n_points)
    for _ in range(10):
        gaps = np.diff(np.concatenate([angles, [angles[0] + 2 * np.pi]]))
        if np.all(gaps > min_gap):
            break
        angles = np.sort(rng.uniform(0.0, 2.0 * np.pi, size=n_points))
    radii = radius * (1.0 + radial_jitter * rng.uniform(-1.0, 1.0, size=n_points))
    points = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
    return ClosedCurve(points, tension=tension)


def circle_curve(radius: float = 1.0, n_points: int = 24, center: Tuple[float, float] = (0.0, 0.0)) -> ClosedCurve:
    """A circle of given radius represented as a closed Bezier curve."""
    angles = np.linspace(0.0, 2.0 * np.pi, n_points, endpoint=False)
    pts = np.column_stack(
        [center[0] + radius * np.cos(angles), center[1] + radius * np.sin(angles)]
    )
    return ClosedCurve(pts)


def polygon_contains(polygon: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Vectorised even-odd rule point-in-polygon test.

    Parameters
    ----------
    polygon:
        (M, 2) closed polygon vertices (implicitly closed).
    points:
        (P, 2) query points.

    Returns
    -------
    (P,) boolean array, True for points strictly inside the polygon.
    """
    polygon = np.asarray(polygon, dtype=np.float64)
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    x, y = points[:, 0], points[:, 1]
    inside = np.zeros(len(points), dtype=bool)
    x1, y1 = polygon[:, 0], polygon[:, 1]
    x2, y2 = np.roll(x1, -1), np.roll(y1, -1)
    for xa, ya, xb, yb in zip(x1, y1, x2, y2):
        crosses = ((ya > y) != (yb > y))
        if not np.any(crosses):
            continue
        with np.errstate(divide="ignore", invalid="ignore"):
            x_intersect = xa + (y - ya) * (xb - xa) / (yb - ya)
        inside ^= crosses & (x < x_intersect)
    return inside
