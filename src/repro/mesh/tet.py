"""Structured tetrahedral meshes — the first 3D substrate of the stack.

A :class:`TetrahedralMesh` mirrors the duck-typed surface of
:class:`~repro.mesh.mesh.TriangularMesh` that the rest of the repository
actually consumes — ``nodes`` / ``cells`` connectivity, the unique edge list
and CSR node adjacency (partitioning, overlap expansion), the directed edge
index with geometric attributes (GNN graphs), boundary topology (Dirichlet
masks) and ``submesh`` extraction (per-sub-domain geometry) — so the
partitioner, the DDM preconditioners and the DSS feature pipeline run on
tetrahedral problems unchanged.  Only the FEM assembly is dimension-specific
(:mod:`repro.fem.assembly3d`).

Mesh generation is deliberately structured: :func:`structured_box_mesh`
splits every cell of a regular grid into six tetrahedra along a consistent
main diagonal (the Kuhn/Freudenthal triangulation), which makes problem
resolution from serve specs deterministic without a 3D mesh generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["TetrahedralMesh", "structured_box_mesh", "box_mesh_for_target_size"]

#: the six Kuhn tetrahedra of the unit cube: vertex paths from (0,0,0) to
#: (1,1,1) adding one unit step per axis permutation — face-to-face matching
#: across neighbouring cubes falls out of the shared main diagonal
_KUHN_PERMUTATIONS = (
    (0, 1, 2), (0, 2, 1), (1, 0, 2), (1, 2, 0), (2, 0, 1), (2, 1, 0),
)


@dataclass
class TetrahedralMesh:
    """An unstructured 3-D tetrahedral mesh.

    Attributes
    ----------
    nodes:
        (N, 3) float array of node coordinates.
    cells:
        (T, 4) int array of tetrahedron node indices.
    """

    nodes: np.ndarray
    cells: np.ndarray

    def __post_init__(self) -> None:
        self.nodes = np.asarray(self.nodes, dtype=np.float64)
        self.cells = np.asarray(self.cells, dtype=np.int64)
        if self.nodes.ndim != 2 or self.nodes.shape[1] != 3:
            raise ValueError("nodes must have shape (N, 3)")
        if self.cells.ndim != 2 or self.cells.shape[1] != 4:
            raise ValueError("cells must have shape (T, 4)")
        if self.cells.size and self.cells.max() >= len(self.nodes):
            raise ValueError("cell index out of range")

    # ------------------------------------------------------------------ #
    # basic sizes
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return int(self.nodes.shape[0])

    @property
    def num_cells(self) -> int:
        return int(self.cells.shape[0])

    @property
    def dim(self) -> int:
        return 3

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #
    @cached_property
    def edges(self) -> np.ndarray:
        """Unique undirected edges (6 per tet), shape (E, 2), rows sorted."""
        t = self.cells
        pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        raw = np.vstack([t[:, [a, b]] for a, b in pairs])
        raw.sort(axis=1)
        return np.unique(raw, axis=0)

    @cached_property
    def _face_counts(self) -> Tuple[np.ndarray, np.ndarray]:
        t = self.cells
        faces = np.vstack([t[:, [1, 2, 3]], t[:, [0, 2, 3]],
                           t[:, [0, 1, 3]], t[:, [0, 1, 2]]])
        faces.sort(axis=1)
        return np.unique(faces, axis=0, return_counts=True)

    @cached_property
    def boundary_faces(self) -> np.ndarray:
        """Triangular faces belonging to exactly one tetrahedron, shape (F, 3)."""
        uniq, counts = self._face_counts
        return uniq[counts == 1]

    @cached_property
    def boundary_nodes(self) -> np.ndarray:
        """Sorted indices of nodes incident to a boundary face."""
        return np.unique(self.boundary_faces)

    @cached_property
    def interior_nodes(self) -> np.ndarray:
        """Sorted indices of nodes not on the boundary."""
        mask = np.ones(self.num_nodes, dtype=bool)
        mask[self.boundary_nodes] = False
        return np.flatnonzero(mask)

    @cached_property
    def boundary_mask(self) -> np.ndarray:
        """Boolean mask of length N, True on boundary nodes."""
        mask = np.zeros(self.num_nodes, dtype=bool)
        mask[self.boundary_nodes] = True
        return mask

    @cached_property
    def adjacency(self) -> sp.csr_matrix:
        """Sparse symmetric node-adjacency matrix (1 where an edge exists)."""
        e = self.edges
        n = self.num_nodes
        data = np.ones(len(e) * 2)
        rows = np.concatenate([e[:, 0], e[:, 1]])
        cols = np.concatenate([e[:, 1], e[:, 0]])
        return sp.csr_matrix((data, (rows, cols)), shape=(n, n))

    @cached_property
    def directed_edge_index(self) -> np.ndarray:
        """Directed edge list (2, 2E): every undirected edge in both directions."""
        e = self.edges
        src = np.concatenate([e[:, 0], e[:, 1]])
        dst = np.concatenate([e[:, 1], e[:, 0]])
        return np.vstack([src, dst])

    # ------------------------------------------------------------------ #
    # geometric quantities
    # ------------------------------------------------------------------ #
    @cached_property
    def cell_measures(self) -> np.ndarray:
        """Signed volumes of all tetrahedra."""
        p = self.nodes[self.cells]
        v1 = p[:, 1] - p[:, 0]
        v2 = p[:, 2] - p[:, 0]
        v3 = p[:, 3] - p[:, 0]
        return np.einsum("ti,ti->t", np.cross(v1, v2), v3) / 6.0

    @cached_property
    def total_volume(self) -> float:
        return float(np.abs(self.cell_measures).sum())

    @cached_property
    def element_size(self) -> float:
        """Mean edge length — the characteristic mesh size h."""
        e = self.edges
        lengths = np.linalg.norm(self.nodes[e[:, 0]] - self.nodes[e[:, 1]], axis=1)
        return float(lengths.mean())

    def quality(self) -> Dict[str, float]:
        """Basic quality metrics (volume stats; structured meshes are uniform)."""
        volumes = np.abs(self.cell_measures)
        return {
            "min_volume": float(volumes.min()) if len(volumes) else 0.0,
            "total_volume": float(volumes.sum()),
            "num_cells": float(self.num_cells),
        }

    # ------------------------------------------------------------------ #
    # sub-mesh extraction
    # ------------------------------------------------------------------ #
    def submesh(self, node_indices: Sequence[int]) -> Tuple["TetrahedralMesh", np.ndarray]:
        """Extract the sub-mesh induced by ``node_indices``.

        Mirrors :meth:`TriangularMesh.submesh`: only cells whose four
        vertices are all selected are retained, and the local → global node
        index map is returned alongside the sub-mesh.
        """
        node_indices = np.asarray(sorted(set(int(i) for i in node_indices)), dtype=np.int64)
        global_to_local = -np.ones(self.num_nodes, dtype=np.int64)
        global_to_local[node_indices] = np.arange(len(node_indices))
        cell_mask = np.all(global_to_local[self.cells] >= 0, axis=1)
        local_cells = global_to_local[self.cells[cell_mask]]
        sub = TetrahedralMesh(self.nodes[node_indices], local_cells)
        return sub, node_indices

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def scaled(self, factor: float) -> "TetrahedralMesh":
        """Return a copy with node coordinates scaled by ``factor``."""
        return TetrahedralMesh(self.nodes * float(factor), self.cells.copy())

    def translated(self, offset: Sequence[float]) -> "TetrahedralMesh":
        """Return a copy translated by ``offset``."""
        return TetrahedralMesh(self.nodes + np.asarray(offset, dtype=np.float64), self.cells.copy())


def structured_box_mesh(
    nx: int,
    ny: int = 0,
    nz: int = 0,
    lengths: Sequence[float] = (1.0, 1.0, 1.0),
) -> TetrahedralMesh:
    """Tetrahedral mesh of a box: a regular grid, six Kuhn tets per cube.

    ``nx``/``ny``/``nz`` count grid **cells** per axis (``ny``/``nz`` default
    to ``nx``), producing ``(nx+1)(ny+1)(nz+1)`` nodes and ``6·nx·ny·nz``
    tetrahedra on the box ``[0, Lx] × [0, Ly] × [0, Lz]``.  Every cube is
    split along the same main diagonal, so neighbouring cubes share faces
    exactly and the mesh is conforming.
    """
    nx = int(nx)
    ny = int(ny) or nx
    nz = int(nz) or nx
    if min(nx, ny, nz) < 1:
        raise ValueError("structured_box_mesh needs at least one cell per axis")
    lx, ly, lz = (float(v) for v in lengths)

    xs = np.linspace(0.0, lx, nx + 1)
    ys = np.linspace(0.0, ly, ny + 1)
    zs = np.linspace(0.0, lz, nz + 1)
    gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
    nodes = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])

    def node_id(i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
        return (i * (ny + 1) + j) * (nz + 1) + k

    ci, cj, ck = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij")
    ci, cj, ck = ci.ravel(), cj.ravel(), ck.ravel()

    cells = []
    for order in _KUHN_PERMUTATIONS:
        # vertex path: cube origin, then one unit step per axis in `order`
        offsets = np.zeros((4, 3), dtype=np.int64)
        for step, axis in enumerate(order):
            offsets[step + 1] = offsets[step]
            offsets[step + 1, axis] += 1
        tet = np.stack(
            [node_id(ci + di, cj + dj, ck + dk) for di, dj, dk in offsets], axis=1
        )
        cells.append(tet)
    return TetrahedralMesh(nodes, np.vstack(cells))


def box_mesh_for_target_size(
    target_nodes: int,
    lengths: Sequence[float] = (1.0, 1.0, 1.0),
) -> TetrahedralMesh:
    """A structured unit-box tet mesh with approximately ``target_nodes`` nodes.

    Deterministic (no RNG): the per-axis cell count is the cube root of the
    target, which is what lets 3D serve specs resolve to bit-identical
    problems on every worker.
    """
    target_nodes = int(target_nodes)
    if target_nodes < 8:
        raise ValueError("target_nodes must be >= 8 (one cell needs 8 grid nodes)")
    divisions = max(1, int(round(target_nodes ** (1.0 / 3.0))) - 1)
    return structured_box_mesh(divisions, lengths=lengths)
