"""High-level domain/mesh factories used by the experiments.

* :func:`random_domain_mesh` — the training distribution of the paper
  (Sec. IV-A): random Bezier-bounded domain, unstructured triangulation at a
  fixed element size, optionally scaled to reach a target node count.
* :func:`formula1_mesh` — the "caricatural Formula 1" out-of-distribution
  test case of Fig. 5: an elongated car-like silhouette with holes (cockpit
  and wing stripes), much larger than the training meshes.
* :func:`disk_mesh`, :func:`lshape_mesh` — auxiliary shapes used by tests,
  examples and ablations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .curves import ClosedCurve, circle_curve, random_boundary_curve
from .mesh import TriangularMesh
from .triangulation import triangulate

__all__ = [
    "random_domain_mesh",
    "disk_mesh",
    "lshape_mesh",
    "formula1_mesh",
    "mesh_for_target_size",
]

# Element size giving ~6000-8000 nodes on a unit-radius random domain,
# mirroring the paper's GMSH setting.  Experiments scale the *radius* to grow
# the mesh while keeping the element size fixed (Sec. IV-A).
DEFAULT_ELEMENT_SIZE = 0.024


def random_domain_mesh(
    radius: float = 1.0,
    element_size: float = DEFAULT_ELEMENT_SIZE,
    n_control_points: int = 20,
    radial_jitter: float = 0.3,
    rng: Optional[np.random.Generator] = None,
    smoothing_iterations: int = 4,
) -> TriangularMesh:
    """Generate one random domain mesh from the paper's training distribution."""
    rng = rng if rng is not None else np.random.default_rng()
    curve = random_boundary_curve(
        n_points=n_control_points, radius=radius, radial_jitter=radial_jitter, rng=rng
    )
    return triangulate(curve, element_size=element_size, smoothing_iterations=smoothing_iterations)


def disk_mesh(radius: float = 1.0, element_size: float = 0.1) -> TriangularMesh:
    """Mesh of a disk of given radius (deterministic, used by tests)."""
    return triangulate(circle_curve(radius=radius), element_size=element_size)


def lshape_mesh(size: float = 1.0, element_size: float = 0.08) -> TriangularMesh:
    """Mesh of the classic L-shaped domain ``[0,1]^2 \\ [0.5,1]x[0.5,1]`` scaled by ``size``."""
    s = float(size)
    polygon = np.array(
        [
            [0.0, 0.0],
            [s, 0.0],
            [s, 0.5 * s],
            [0.5 * s, 0.5 * s],
            [0.5 * s, s],
            [0.0, s],
        ]
    )
    return triangulate(polygon, element_size=element_size, smoothing_iterations=2)


def _ellipse(center: Tuple[float, float], rx: float, ry: float, n: int = 24) -> np.ndarray:
    angles = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
    return np.column_stack([center[0] + rx * np.cos(angles), center[1] + ry * np.sin(angles)])


def formula1_mesh(
    length: float = 10.0,
    element_size: float = 0.08,
    with_holes: bool = True,
) -> TriangularMesh:
    """Caricatural Formula-1 silhouette with holes (paper Fig. 5 test case).

    The outline is a long, low car-like profile: a nose cone, a raised cockpit
    hump, an engine cover and a rear wing.  Holes model the cockpit opening
    and front/rear wing stripes.  ``length`` controls the overall size (and
    hence, at fixed ``element_size``, the node count).
    """
    L = float(length)
    H = 0.22 * L  # overall height
    # car silhouette control points (x grows from nose to tail), expressed as
    # fractions of the length/height and traversed counter-clockwise.
    top = np.array(
        [
            [0.00, 0.06], [0.06, 0.10], [0.15, 0.12], [0.25, 0.14],
            [0.35, 0.30], [0.45, 0.55], [0.52, 0.60], [0.60, 0.55],
            [0.70, 0.45], [0.80, 0.50], [0.88, 0.72], [0.95, 0.95],
            [1.00, 1.00],
        ]
    )
    bottom = np.array(
        [
            [1.00, 0.55], [0.92, 0.30], [0.80, 0.10], [0.60, 0.04],
            [0.40, 0.02], [0.20, 0.02], [0.08, 0.02], [0.00, 0.00],
        ]
    )
    outline = np.vstack([top, bottom])
    polygon = np.column_stack([outline[:, 0] * L, outline[:, 1] * H])
    curve = ClosedCurve(polygon, tension=0.25)

    holes: list[np.ndarray] = []
    if with_holes:
        holes = [
            _ellipse((0.52 * L, 0.38 * H), 0.045 * L, 0.10 * H),   # cockpit
            _ellipse((0.12 * L, 0.055 * H), 0.05 * L, 0.022 * H),  # front wing stripe
            _ellipse((0.90 * L, 0.45 * H), 0.035 * L, 0.10 * H),   # rear wing stripe
        ]
    return triangulate(curve, element_size=element_size, holes=holes, smoothing_iterations=3)


def mesh_for_target_size(
    target_nodes: int,
    element_size: float = DEFAULT_ELEMENT_SIZE,
    rng: Optional[np.random.Generator] = None,
    tolerance: float = 0.35,
    max_attempts: int = 6,
) -> TriangularMesh:
    """Generate a random-domain mesh with approximately ``target_nodes`` nodes.

    The paper grows problems by increasing the domain radius at fixed element
    size; node count scales with radius², so the radius is set accordingly and
    adjusted over a few attempts if the produced mesh misses the target by
    more than ``tolerance`` (relative).
    """
    rng = rng if rng is not None else np.random.default_rng()
    # ~7000 nodes at radius 1 with the default element size; scale with area
    base_nodes_at_unit_radius = 2.75 / (element_size ** 2)
    radius = float(np.sqrt(target_nodes / base_nodes_at_unit_radius))
    for _ in range(max_attempts):
        mesh = random_domain_mesh(radius=radius, element_size=element_size, rng=rng)
        ratio = mesh.num_nodes / target_nodes
        if abs(ratio - 1.0) <= tolerance:
            return mesh
        radius /= np.sqrt(ratio)
    return mesh
