"""Unstructured triangular mesh data structure.

A :class:`TriangularMesh` stores node coordinates, triangle connectivity and
derived topology (edges, node adjacency, boundary nodes).  It is the common
currency between the geometry, FEM, partitioning and GNN sub-systems:

* the FEM assembly consumes ``nodes`` / ``triangles``;
* the partitioner consumes the node adjacency graph;
* the DSS model consumes node coordinates and the (directed) edge list with
  geometric edge attributes (Sec. III-B of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["TriangularMesh"]


@dataclass
class TriangularMesh:
    """An unstructured 2-D triangular mesh.

    Attributes
    ----------
    nodes:
        (N, 2) float array of node coordinates.
    triangles:
        (T, 3) int array of node indices, counter-clockwise orientation.
    """

    nodes: np.ndarray
    triangles: np.ndarray

    def __post_init__(self) -> None:
        self.nodes = np.asarray(self.nodes, dtype=np.float64)
        self.triangles = np.asarray(self.triangles, dtype=np.int64)
        if self.nodes.ndim != 2 or self.nodes.shape[1] != 2:
            raise ValueError("nodes must have shape (N, 2)")
        if self.triangles.ndim != 2 or self.triangles.shape[1] != 3:
            raise ValueError("triangles must have shape (T, 3)")
        if self.triangles.size and self.triangles.max() >= len(self.nodes):
            raise ValueError("triangle index out of range")

    # ------------------------------------------------------------------ #
    # basic sizes
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return int(self.nodes.shape[0])

    @property
    def num_triangles(self) -> int:
        return int(self.triangles.shape[0])

    @property
    def dim(self) -> int:
        return 2

    @property
    def cells(self) -> np.ndarray:
        """Dimension-neutral connectivity alias (``triangles`` here, tets in 3D).

        Code that must work on both :class:`TriangularMesh` and
        :class:`~repro.mesh.tet.TetrahedralMesh` (fingerprints, shared-memory
        packing, node averaging) consumes ``cells`` / ``cell_measures``
        instead of the 2D-specific names.
        """
        return self.triangles

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #
    @cached_property
    def edges(self) -> np.ndarray:
        """Unique undirected edges, shape (E, 2), each row sorted (i < j)."""
        tri = self.triangles
        raw = np.vstack([tri[:, [0, 1]], tri[:, [1, 2]], tri[:, [2, 0]]])
        raw.sort(axis=1)
        return np.unique(raw, axis=0)

    @cached_property
    def edge_counts(self) -> Dict[Tuple[int, int], int]:
        """Number of triangles sharing each undirected edge (1 = boundary edge)."""
        tri = self.triangles
        raw = np.vstack([tri[:, [0, 1]], tri[:, [1, 2]], tri[:, [2, 0]]])
        raw.sort(axis=1)
        uniq, counts = np.unique(raw, axis=0, return_counts=True)
        return {(int(a), int(b)): int(c) for (a, b), c in zip(uniq, counts)}

    @cached_property
    def boundary_edges(self) -> np.ndarray:
        """Edges that belong to exactly one triangle, shape (Eb, 2)."""
        tri = self.triangles
        raw = np.vstack([tri[:, [0, 1]], tri[:, [1, 2]], tri[:, [2, 0]]])
        raw.sort(axis=1)
        uniq, counts = np.unique(raw, axis=0, return_counts=True)
        return uniq[counts == 1]

    @cached_property
    def boundary_nodes(self) -> np.ndarray:
        """Sorted indices of nodes lying on the boundary (incident to a boundary edge)."""
        return np.unique(self.boundary_edges)

    @cached_property
    def interior_nodes(self) -> np.ndarray:
        """Sorted indices of nodes not on the boundary."""
        mask = np.ones(self.num_nodes, dtype=bool)
        mask[self.boundary_nodes] = False
        return np.flatnonzero(mask)

    @cached_property
    def boundary_mask(self) -> np.ndarray:
        """Boolean mask of length N, True on boundary nodes."""
        mask = np.zeros(self.num_nodes, dtype=bool)
        mask[self.boundary_nodes] = True
        return mask

    @cached_property
    def adjacency(self) -> sp.csr_matrix:
        """Sparse symmetric node-adjacency matrix (1 where an edge exists)."""
        e = self.edges
        n = self.num_nodes
        data = np.ones(len(e) * 2)
        rows = np.concatenate([e[:, 0], e[:, 1]])
        cols = np.concatenate([e[:, 1], e[:, 0]])
        return sp.csr_matrix((data, (rows, cols)), shape=(n, n))

    def node_neighbours(self, node: int) -> np.ndarray:
        """Indices of nodes adjacent to ``node``."""
        row = self.adjacency.getrow(node)
        return row.indices.copy()

    @cached_property
    def directed_edge_index(self) -> np.ndarray:
        """Directed edge list of shape (2, 2E): every undirected edge in both
        directions.  This is the GNN message-passing connectivity."""
        e = self.edges
        src = np.concatenate([e[:, 0], e[:, 1]])
        dst = np.concatenate([e[:, 1], e[:, 0]])
        return np.vstack([src, dst])

    # ------------------------------------------------------------------ #
    # geometric quantities
    # ------------------------------------------------------------------ #
    @cached_property
    def triangle_areas(self) -> np.ndarray:
        """Signed areas of all triangles (positive for CCW orientation)."""
        p = self.nodes[self.triangles]
        v1 = p[:, 1] - p[:, 0]
        v2 = p[:, 2] - p[:, 0]
        return 0.5 * (v1[:, 0] * v2[:, 1] - v1[:, 1] * v2[:, 0])

    @property
    def cell_measures(self) -> np.ndarray:
        """Dimension-neutral measure alias (areas here, volumes in 3D)."""
        return self.triangle_areas

    @cached_property
    def total_area(self) -> float:
        return float(np.abs(self.triangle_areas).sum())

    @cached_property
    def element_size(self) -> float:
        """Mean edge length — the characteristic mesh size h."""
        e = self.edges
        lengths = np.linalg.norm(self.nodes[e[:, 0]] - self.nodes[e[:, 1]], axis=1)
        return float(lengths.mean())

    def quality(self) -> Dict[str, float]:
        """Return basic quality metrics: min/mean aspect quality and area stats.

        Triangle quality is measured by ``4*sqrt(3)*area / sum(l_i^2)`` which
        equals 1 for equilateral triangles and tends to 0 for slivers.
        """
        p = self.nodes[self.triangles]
        l2 = (
            np.sum((p[:, 0] - p[:, 1]) ** 2, axis=1)
            + np.sum((p[:, 1] - p[:, 2]) ** 2, axis=1)
            + np.sum((p[:, 2] - p[:, 0]) ** 2, axis=1)
        )
        areas = np.abs(self.triangle_areas)
        q = 4.0 * np.sqrt(3.0) * areas / np.maximum(l2, 1e-300)
        return {
            "min_quality": float(q.min()) if len(q) else 0.0,
            "mean_quality": float(q.mean()) if len(q) else 0.0,
            "min_area": float(areas.min()) if len(areas) else 0.0,
            "total_area": float(areas.sum()),
        }

    def graph_diameter_estimate(self, n_sources: int = 3, rng: Optional[np.random.Generator] = None) -> int:
        """Estimate the graph diameter by double-sweep BFS from a few sources.

        The diameter governs how many message-passing iterations a GNN needs
        to propagate information across the mesh (Sec. II-B).
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        adj = self.adjacency
        best = 0
        sources = rng.choice(self.num_nodes, size=min(n_sources, self.num_nodes), replace=False)
        for s in sources:
            dist = _bfs_distances(adj, int(s))
            far = int(np.argmax(dist))
            dist2 = _bfs_distances(adj, far)
            best = max(best, int(dist2.max()))
        return best

    # ------------------------------------------------------------------ #
    # sub-mesh extraction
    # ------------------------------------------------------------------ #
    def submesh(self, node_indices: Sequence[int]) -> Tuple["TriangularMesh", np.ndarray]:
        """Extract the sub-mesh induced by ``node_indices``.

        Returns the sub-mesh and the array of *global* node indices for each
        local node (the local → global map).  Only triangles whose three
        vertices are all selected are retained.
        """
        node_indices = np.asarray(sorted(set(int(i) for i in node_indices)), dtype=np.int64)
        global_to_local = -np.ones(self.num_nodes, dtype=np.int64)
        global_to_local[node_indices] = np.arange(len(node_indices))
        tri_mask = np.all(global_to_local[self.triangles] >= 0, axis=1)
        local_triangles = global_to_local[self.triangles[tri_mask]]
        sub = TriangularMesh(self.nodes[node_indices], local_triangles)
        return sub, node_indices

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def scaled(self, factor: float) -> "TriangularMesh":
        """Return a copy with node coordinates scaled by ``factor``."""
        return TriangularMesh(self.nodes * float(factor), self.triangles.copy())

    def translated(self, offset: Sequence[float]) -> "TriangularMesh":
        """Return a copy translated by ``offset``."""
        return TriangularMesh(self.nodes + np.asarray(offset, dtype=np.float64), self.triangles.copy())


def _bfs_distances(adjacency: sp.csr_matrix, source: int) -> np.ndarray:
    """Hop distances from ``source`` using BFS on a CSR adjacency matrix."""
    n = adjacency.shape[0]
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    indptr, indices = adjacency.indptr, adjacency.indices
    while len(frontier):
        level += 1
        nxt: List[int] = []
        for u in frontier:
            neigh = indices[indptr[u]:indptr[u + 1]]
            new = neigh[dist[neigh] < 0]
            dist[new] = level
            nxt.extend(new.tolist())
        frontier = np.array(nxt, dtype=np.int64)
    dist[dist < 0] = 0
    return dist
