"""Geometry and meshing substrate (GMSH substitute).

Public surface:

* :class:`~repro.mesh.mesh.TriangularMesh` — the mesh data structure shared by
  FEM, partitioning and the GNN.
* :func:`~repro.mesh.triangulation.triangulate`,
  :func:`~repro.mesh.triangulation.structured_rectangle_mesh` — mesh generation.
* :class:`~repro.mesh.tet.TetrahedralMesh`,
  :func:`~repro.mesh.tet.structured_box_mesh`,
  :func:`~repro.mesh.tet.box_mesh_for_target_size` — structured 3D tet meshes.
* :func:`~repro.mesh.shapes.random_domain_mesh`,
  :func:`~repro.mesh.shapes.formula1_mesh`,
  :func:`~repro.mesh.shapes.disk_mesh`,
  :func:`~repro.mesh.shapes.lshape_mesh`,
  :func:`~repro.mesh.shapes.mesh_for_target_size` — domain factories.
* :class:`~repro.mesh.curves.ClosedCurve`,
  :func:`~repro.mesh.curves.random_boundary_curve` — random Bezier boundaries.
"""

from .curves import ClosedCurve, circle_curve, polygon_contains, random_boundary_curve
from .mesh import TriangularMesh
from .tet import TetrahedralMesh, box_mesh_for_target_size, structured_box_mesh
from .shapes import (
    DEFAULT_ELEMENT_SIZE,
    disk_mesh,
    formula1_mesh,
    lshape_mesh,
    mesh_for_target_size,
    random_domain_mesh,
)
from .triangulation import resample_polygon, structured_rectangle_mesh, triangulate

__all__ = [
    "TriangularMesh",
    "TetrahedralMesh",
    "structured_box_mesh",
    "box_mesh_for_target_size",
    "ClosedCurve",
    "random_boundary_curve",
    "circle_curve",
    "polygon_contains",
    "triangulate",
    "resample_polygon",
    "structured_rectangle_mesh",
    "random_domain_mesh",
    "disk_mesh",
    "lshape_mesh",
    "formula1_mesh",
    "mesh_for_target_size",
    "DEFAULT_ELEMENT_SIZE",
]
