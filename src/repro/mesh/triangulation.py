"""Unstructured triangulation of 2-D domains (GMSH substitute).

The generator follows a classical point-seeding + Delaunay approach:

1. resample the domain boundary (and hole boundaries) at the target element
   size ``h``;
2. seed interior points on a staggered (hexagonal) lattice of pitch ``h``,
   keeping only points safely inside the domain and outside the holes;
3. run a Delaunay triangulation (``scipy.spatial.Delaunay``) over the union of
   boundary and interior points;
4. discard triangles whose centroid falls outside the domain or inside a hole;
5. optionally apply a few Laplacian smoothing sweeps to interior nodes, and
   drop nodes left unused.

The output quality is adequate for P1 finite elements and matches the mesh
size distribution of the paper's GMSH meshes (6k–8k nodes for a unit-radius
random domain with the default ``h``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.spatial import Delaunay

from .curves import ClosedCurve, polygon_contains
from .mesh import TriangularMesh

__all__ = ["triangulate", "resample_polygon", "structured_rectangle_mesh"]


def resample_polygon(polygon: np.ndarray, spacing: float) -> np.ndarray:
    """Resample a closed polygon at approximately uniform arc-length spacing."""
    polygon = np.asarray(polygon, dtype=np.float64)
    closed = np.vstack([polygon, polygon[:1]])
    seg = np.diff(closed, axis=0)
    seg_len = np.linalg.norm(seg, axis=1)
    arc = np.concatenate([[0.0], np.cumsum(seg_len)])
    total = arc[-1]
    n_samples = max(int(np.round(total / spacing)), 8)
    targets = np.linspace(0.0, total, n_samples, endpoint=False)
    resampled = np.empty((n_samples, 2))
    for dim in range(2):
        resampled[:, dim] = np.interp(targets, arc, closed[:, dim])
    return resampled


def _hex_lattice(min_xy: np.ndarray, max_xy: np.ndarray, spacing: float) -> np.ndarray:
    """Staggered lattice covering the bounding box with pitch ``spacing``."""
    dy = spacing * np.sqrt(3.0) / 2.0
    xs = np.arange(min_xy[0], max_xy[0] + spacing, spacing)
    ys = np.arange(min_xy[1], max_xy[1] + dy, dy)
    points: List[np.ndarray] = []
    for row, y in enumerate(ys):
        offset = 0.5 * spacing if row % 2 else 0.0
        points.append(np.column_stack([xs + offset, np.full_like(xs, y)]))
    return np.vstack(points)


def _min_distance_to_polygon(points: np.ndarray, polygon: np.ndarray) -> np.ndarray:
    """Distance from each point to the closest vertex of the polygon.

    A vertex-based distance is a cheap, adequate proxy here because the
    polygon is resampled at the element size before the call.
    """
    # chunk to bound memory for large point sets
    out = np.empty(len(points))
    chunk = 4096
    for start in range(0, len(points), chunk):
        block = points[start:start + chunk]
        d = np.linalg.norm(block[:, None, :] - polygon[None, :, :], axis=2)
        out[start:start + chunk] = d.min(axis=1)
    return out


def triangulate(
    boundary: ClosedCurve | np.ndarray,
    element_size: float = 0.05,
    holes: Optional[Sequence[ClosedCurve | np.ndarray]] = None,
    smoothing_iterations: int = 4,
    interior_margin: float = 0.6,
    rng: Optional[np.random.Generator] = None,
) -> TriangularMesh:
    """Triangulate the interior of a closed boundary curve.

    Parameters
    ----------
    boundary:
        The outer boundary, as a :class:`ClosedCurve` or a closed polygon array.
    element_size:
        Target edge length ``h``.
    holes:
        Optional interior holes (curves or polygons); triangles falling inside
        a hole are removed and the hole boundary is resampled and included in
        the node set so that it is meshed conformingly.
    smoothing_iterations:
        Number of Laplacian smoothing sweeps applied to interior nodes.
    interior_margin:
        Interior seed points closer than ``interior_margin * h`` to any
        boundary are discarded to avoid sliver triangles.
    """
    if element_size <= 0.0:
        raise ValueError("element_size must be positive")
    if isinstance(boundary, ClosedCurve):
        boundary_poly = boundary.sample(points_per_segment=24)
    else:
        boundary_poly = np.asarray(boundary, dtype=np.float64)
    boundary_pts = resample_polygon(boundary_poly, element_size)

    hole_polys: List[np.ndarray] = []
    hole_pts_list: List[np.ndarray] = []
    for hole in holes or []:
        poly = hole.sample(points_per_segment=24) if isinstance(hole, ClosedCurve) else np.asarray(hole, dtype=np.float64)
        hole_polys.append(poly)
        hole_pts_list.append(resample_polygon(poly, element_size))

    # interior seeds
    min_xy = boundary_pts.min(axis=0)
    max_xy = boundary_pts.max(axis=0)
    lattice = _hex_lattice(min_xy, max_xy, element_size)
    inside = polygon_contains(boundary_poly, lattice)
    for poly in hole_polys:
        inside &= ~polygon_contains(poly, lattice)
    candidates = lattice[inside]
    # keep interior points away from all boundary polylines
    all_boundary_pts = np.vstack([boundary_pts] + hole_pts_list) if hole_pts_list else boundary_pts
    if len(candidates):
        dist = _min_distance_to_polygon(candidates, all_boundary_pts)
        candidates = candidates[dist > interior_margin * element_size]

    points = np.vstack([boundary_pts] + hole_pts_list + ([candidates] if len(candidates) else []))
    n_boundary = len(boundary_pts) + sum(len(p) for p in hole_pts_list)

    if len(points) < 4:
        raise ValueError("domain too small for the requested element size")

    tri = Delaunay(points)
    simplices = tri.simplices
    centroids = points[simplices].mean(axis=1)
    keep = polygon_contains(boundary_poly, centroids)
    for poly in hole_polys:
        keep &= ~polygon_contains(poly, centroids)
    # drop degenerate (near-zero area) triangles
    p = points[simplices]
    areas = 0.5 * np.abs(
        (p[:, 1, 0] - p[:, 0, 0]) * (p[:, 2, 1] - p[:, 0, 1])
        - (p[:, 2, 0] - p[:, 0, 0]) * (p[:, 1, 1] - p[:, 0, 1])
    )
    keep &= areas > 1e-12 * element_size ** 2
    simplices = simplices[keep]

    # remove nodes not referenced by any kept triangle
    used = np.unique(simplices)
    remap = -np.ones(len(points), dtype=np.int64)
    remap[used] = np.arange(len(used))
    points = points[used]
    simplices = remap[simplices]
    fixed_mask = used < n_boundary  # original boundary/hole points stay put

    mesh = TriangularMesh(points, simplices)
    if smoothing_iterations > 0:
        mesh = _laplacian_smooth(mesh, fixed_mask, smoothing_iterations)
    return _ensure_ccw(mesh)


def _laplacian_smooth(mesh: TriangularMesh, fixed_mask: np.ndarray, iterations: int) -> TriangularMesh:
    """Move each free node towards the mean of its neighbours (in place sweeps)."""
    nodes = mesh.nodes.copy()
    adj = mesh.adjacency
    deg = np.asarray(adj.sum(axis=1)).ravel()
    deg[deg == 0] = 1.0
    free = ~fixed_mask
    # never move nodes on the (topological) mesh boundary either
    free[mesh.boundary_nodes] = False
    for _ in range(iterations):
        mean_neigh = adj @ nodes / deg[:, None]
        nodes[free] = 0.5 * nodes[free] + 0.5 * mean_neigh[free]
    return TriangularMesh(nodes, mesh.triangles)


def _ensure_ccw(mesh: TriangularMesh) -> TriangularMesh:
    """Flip triangles with negative signed area so all are counter-clockwise."""
    areas = mesh.triangle_areas
    tris = mesh.triangles.copy()
    flip = areas < 0
    tris[flip] = tris[flip][:, [0, 2, 1]]
    return TriangularMesh(mesh.nodes, tris)


def structured_rectangle_mesh(nx: int, ny: int, width: float = 1.0, height: float = 1.0) -> TriangularMesh:
    """Structured triangulation of a rectangle (mainly used by tests).

    Produces ``(nx+1) * (ny+1)`` nodes and ``2 * nx * ny`` triangles.
    """
    if nx < 1 or ny < 1:
        raise ValueError("nx and ny must be >= 1")
    xs = np.linspace(0.0, width, nx + 1)
    ys = np.linspace(0.0, height, ny + 1)
    xx, yy = np.meshgrid(xs, ys, indexing="xy")
    nodes = np.column_stack([xx.ravel(), yy.ravel()])

    def nid(i: int, j: int) -> int:
        return j * (nx + 1) + i

    tris: List[Tuple[int, int, int]] = []
    for j in range(ny):
        for i in range(nx):
            a, b, c, d = nid(i, j), nid(i + 1, j), nid(i + 1, j + 1), nid(i, j + 1)
            tris.append((a, b, c))
            tris.append((a, c, d))
    return TriangularMesh(nodes, np.asarray(tris, dtype=np.int64))
