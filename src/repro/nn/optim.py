"""Optimisers and gradient utilities (substitute for ``torch.optim``).

The paper trains DSS with Adam (lr=1e-2), gradient clipping at 1e-2 and a
``ReduceLROnPlateau`` scheduler; all three are provided here, plus plain SGD
for tests and ablations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Clip the global L2 norm of all gradients to ``max_norm`` (in place).

    Returns the norm before clipping (useful for logging), mirroring
    ``torch.nn.utils.clip_grad_norm_``.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total_norm = float(np.sqrt(sum(float(np.sum(g * g)) for g in grads)))
    if total_norm > max_norm and total_norm > 0.0:
        scale = max_norm / total_norm
        for g in grads:
            g *= scale
    return total_norm


class Optimizer:
    """Base optimiser interface: ``zero_grad`` + ``step``."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimiser received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- state dict (checkpointing) -----------------------------------------
    def state_dict(self) -> Dict:
        """Serialisable optimiser state: scalars + per-parameter slot arrays.

        Slot arrays are keyed by parameter index (the order of
        ``self.parameters``, which matches ``Module.named_parameters`` when
        the optimiser was built from ``model.parameters()``).
        """
        return {"type": type(self).__name__, "lr": self.lr, "slots": {}}

    def load_state_dict(self, state: Dict) -> None:
        """Restore state produced by :meth:`state_dict` (shapes must match)."""
        if state.get("type") != type(self).__name__:
            raise ValueError(
                f"optimizer state is for '{state.get('type')}', not '{type(self).__name__}'"
            )
        self.lr = float(state["lr"])
        self._load_slots(state.get("slots", {}))

    def _load_slots(self, slots: Dict[str, List[np.ndarray]]) -> None:
        for name, arrays in slots.items():
            target = getattr(self, f"_{name}", None)
            if target is None or len(arrays) != len(self.parameters):
                raise ValueError(f"optimizer slot '{name}' does not match the parameter list")
            for buf, value, p in zip(target, arrays, self.parameters):
                value = np.asarray(value, dtype=np.float64)
                if value.shape != p.data.shape:
                    raise ValueError(
                        f"optimizer slot '{name}' shape mismatch: {value.shape} vs {p.data.shape}"
                    )
                buf[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum > 0.0:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad

    def state_dict(self) -> Dict:
        state = super().state_dict()
        state["momentum"] = self.momentum
        state["slots"] = {"velocity": [v.copy() for v in self._velocity]}
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        self.momentum = float(state.get("momentum", 0.0))


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias_c1 = 1.0 - self.beta1 ** t
        bias_c2 = 1.0 - self.beta2 ** t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias_c1
            v_hat = v / bias_c2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict:
        state = super().state_dict()
        state.update({
            "beta1": self.beta1,
            "beta2": self.beta2,
            "eps": self.eps,
            "weight_decay": self.weight_decay,
            "step_count": self._step_count,
        })
        state["slots"] = {
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        self._step_count = int(state["step_count"])
