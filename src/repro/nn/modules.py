"""Neural-network module system (substitute for ``torch.nn``).

Provides a :class:`Module` base class with recursive parameter discovery,
:class:`Linear` layers, multi-layer perceptrons (:class:`MLP`) and a
:class:`Sequential` container — everything required by the DSS architecture
of the paper (Sec. III-B: all MLPs have one hidden layer with ReLU).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import init as init_schemes
from .functional import linear, relu, tanh
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Linear", "MLP", "Sequential", "Identity"]


class Parameter(Tensor):
    """A tensor flagged as a learnable parameter (``requires_grad=True``)."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Sub-modules and parameters assigned as attributes are discovered
    automatically (like ``torch.nn.Module``), enabling generic optimisers,
    checkpointing and parameter counting.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute bookkeeping ------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- parameter traversal --------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its sub-modules."""
        params: List[Parameter] = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        """Total number of scalar weights (paper Table II column 'Nb Weights')."""
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- train / eval ----------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- state dict (checkpointing) -------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping name -> array copy of every parameter."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for '{name}': {value.shape} vs {param.data.shape}")
            param.data[...] = value

    def save(self, path: str) -> None:
        """Save parameters to a flat ``.npz`` file (weights only).

        This is the legacy weight format kept for the committed bench
        artifacts; new code should prefer :mod:`repro.gnn.checkpoint`, which
        adds a schema-versioned header, the model/optimizer/trainer state and
        a config hash in a single file.
        """
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        """Load parameters from an ``.npz`` produced by :meth:`save` — or from
        a versioned :mod:`repro.gnn.checkpoint` file, whose model parameters
        are stored under a ``model/`` key prefix next to the JSON header."""
        with np.load(path) as data:
            state = {k: data[k] for k in data.files}
        if any(k.startswith("model/") for k in state):
            state = {k[len("model/"):]: v for k, v in state.items() if k.startswith("model/")}
        self.load_state_dict(state)

    # -- call protocol ----------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Identity(Module):
    """A no-op module, occasionally useful as a placeholder."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with Xavier-uniform initialised weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng if rng is not None else np.random.default_rng()
        self.weight = Parameter(init_schemes.xavier_uniform((out_features, in_features), rng=rng), name="weight")
        if bias:
            self.bias: Optional[Parameter] = Parameter(init_schemes.zeros((out_features,)), name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return linear(x, self.weight, self.bias)


_ACTIVATIONS = {
    "relu": relu,
    "tanh": tanh,
    "none": lambda x: x,
}


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    The paper's DSS uses MLPs with exactly one hidden layer of width equal to
    the latent dimension and ReLU activations; this class supports an
    arbitrary list of hidden widths so the same code serves ablations.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: Sequence[int],
        out_features: int,
        activation: str = "relu",
        final_activation: str = "none",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if activation not in _ACTIVATIONS or final_activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation; choose from {sorted(_ACTIVATIONS)}")
        self.activation = activation
        self.final_activation = final_activation
        rng = rng if rng is not None else np.random.default_rng()

        dims = [in_features, *hidden_features, out_features]
        self.layers: List[Linear] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = Linear(d_in, d_out, rng=rng)
            setattr(self, f"layer_{i}", layer)
            self.layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        act = _ACTIVATIONS[self.activation]
        final_act = _ACTIVATIONS[self.final_activation]
        for layer in self.layers[:-1]:
            x = act(layer(x))
        return final_act(self.layers[-1](x))


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._sequence: List[Module] = []
        for i, module in enumerate(modules):
            setattr(self, f"module_{i}", module)
            self._sequence.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._sequence:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._sequence)

    def __getitem__(self, index: int) -> Module:
        return self._sequence[index]
