"""Minimal reverse-mode automatic differentiation engine on NumPy arrays.

This module is the substitute for PyTorch in the reproduction (see DESIGN.md,
substitution table).  It provides a :class:`Tensor` wrapper around a
``numpy.ndarray`` together with a dynamically built computation graph and a
reverse-mode :meth:`Tensor.backward` pass.

Only the operations required by the Deep Statistical Solver architecture are
implemented, but they are implemented generally (broadcasting, arbitrary
shapes) so the engine is reusable:

* elementwise arithmetic (``+ - * / **``), negation
* ``matmul`` (2-D), ``relu``, ``tanh``, ``exp``, ``log``, ``abs``
* reductions: ``sum``, ``mean`` (with ``axis`` / ``keepdims``)
* shape ops: ``reshape``, ``transpose``, ``concatenate``, slicing
* gather / scatter-add over the leading axis (``index_select`` /
  ``index_add``) — the primitives behind message passing aggregation.

The design follows the classic tape-based approach: every non-leaf tensor
stores its parent tensors and a closure computing the contribution of the
output gradient to each parent gradient.  Gradients are accumulated in
topological order.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, "Tensor"]

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]


# --------------------------------------------------------------------------- #
# global autograd switch (mirrors torch.no_grad)
# --------------------------------------------------------------------------- #
_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether autograd graph recording is currently enabled."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that its shape matches ``shape`` (inverse of broadcast)."""
    if grad.shape == shape:
        return grad
    # sum over extra leading dimensions
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum over broadcast dimensions (size 1 in original shape)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def _scatter_add_rows(
    values: np.ndarray,
    index: np.ndarray,
    num_rows: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sum rows of ``values`` into ``num_rows`` bins given by ``index``.

    ``np.add.at`` is correct but slow; per-column ``np.bincount`` is an order
    of magnitude faster for the (rows, few-columns) arrays used by message
    passing, and falls back to ``np.add.at`` for higher-dimensional data.

    ``out`` (2-D case only) lets the inference fast path reuse a preallocated
    buffer; both the tape backward pass and :meth:`Tensor.index_add` share this
    kernel, so the fast path is bit-identical to the autograd forward.
    """
    if values.ndim == 1:
        result = np.bincount(index, weights=values, minlength=num_rows)
        if out is None:
            return result
        out[...] = result
        return out
    if values.ndim == 2:
        if out is None:
            out = np.empty((num_rows, values.shape[1]))
        for col in range(values.shape[1]):
            out[:, col] = np.bincount(index, weights=values[:, col], minlength=num_rows)
        return out
    result = np.zeros((num_rows,) + values.shape[1:])
    np.add.at(result, index, values)
    if out is None:
        return result
    out[...] = result
    return out


class Tensor:
    """A NumPy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like holding the value.  Stored as ``float64``.
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` for this tensor
        during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fns", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = "") -> None:
        self.data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._parents: Tuple["Tensor", ...] = ()
        self._backward_fns: Tuple[Callable[[np.ndarray], np.ndarray], ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(shape: Sequence[int], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Sequence[int], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(array, requires_grad=requires_grad)

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing the same data, cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------ #
    # graph construction
    # ------------------------------------------------------------------ #
    def _needs_graph(self, *others: "Tensor") -> bool:
        if not _GRAD_ENABLED:
            return False
        return self.requires_grad or any(o.requires_grad for o in others)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fns: Sequence[Callable[[np.ndarray], np.ndarray]],
    ) -> "Tensor":
        """Create a non-leaf tensor recording its parents and backward rules."""
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward_fns = tuple(backward_fns)
        return out

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data
        return Tensor._make(
            data,
            (self, other_t),
            (
                lambda g, s=self.shape: _unbroadcast(g, s),
                lambda g, s=other_t.shape: _unbroadcast(g, s),
            ),
        )

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), (lambda g: -g,))

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data
        return Tensor._make(
            data,
            (self, other_t),
            (
                lambda g, s=self.shape: _unbroadcast(g, s),
                lambda g, s=other_t.shape: _unbroadcast(-g, s),
            ),
        )

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data
        return Tensor._make(
            data,
            (self, other_t),
            (
                lambda g, o=other_t.data, s=self.shape: _unbroadcast(g * o, s),
                lambda g, o=self.data, s=other_t.shape: _unbroadcast(g * o, s),
            ),
        )

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data
        return Tensor._make(
            data,
            (self, other_t),
            (
                lambda g, o=other_t.data, s=self.shape: _unbroadcast(g / o, s),
                lambda g, a=self.data, o=other_t.data, s=other_t.shape: _unbroadcast(
                    -g * a / (o * o), s
                ),
            ),
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        data = self.data ** exponent
        return Tensor._make(
            data,
            (self,),
            (lambda g, a=self.data, p=exponent: g * p * a ** (p - 1),),
        )

    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data
        return Tensor._make(
            data,
            (self, other_t),
            (
                lambda g, b=other_t.data: g @ b.T,
                lambda g, a=self.data: a.T @ g,
            ),
        )

    __matmul__ = matmul

    # ------------------------------------------------------------------ #
    # nonlinearities
    # ------------------------------------------------------------------ #
    def relu(self) -> "Tensor":
        mask = self.data > 0.0
        return Tensor._make(self.data * mask, (self,), (lambda g, m=mask: g * m,))

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)
        return Tensor._make(out, (self,), (lambda g, o=out: g * (1.0 - o * o),))

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor._make(out, (self,), (lambda g, o=out: g * o * (1.0 - o),))

    def exp(self) -> "Tensor":
        out = np.exp(self.data)
        return Tensor._make(out, (self,), (lambda g, o=out: g * o,))

    def log(self) -> "Tensor":
        return Tensor._make(np.log(self.data), (self,), (lambda g, a=self.data: g / a,))

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return Tensor._make(np.abs(self.data), (self,), (lambda g, s=sign: g * s,))

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)
        return Tensor._make(out, (self,), (lambda g, o=out: g * 0.5 / o,))

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray, a_shape=self.shape, ax=axis, kd=keepdims) -> np.ndarray:
            g = np.asarray(g)
            if ax is not None and not kd:
                g = np.expand_dims(g, ax)
            return np.broadcast_to(g, a_shape).copy()

        return Tensor._make(data, (self,), (backward,))

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        return Tensor._make(data, (self,), (lambda g, s=self.shape: g.reshape(s),))

    def transpose(self) -> "Tensor":
        return Tensor._make(self.data.T, (self,), (lambda g: g.T,))

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        data = self.data[key]

        def backward(g: np.ndarray, k=key, shape=self.shape) -> np.ndarray:
            full = np.zeros(shape)
            np.add.at(full, k, g)
            return full

        return Tensor._make(data, (self,), (backward,))

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        arrays = [t.data for t in tensors]
        data = np.concatenate(arrays, axis=axis)
        # compute split points to route gradient slices back to parents
        sizes = [a.shape[axis] for a in arrays]
        offsets = np.cumsum([0] + sizes)

        def make_backward(i: int) -> Callable[[np.ndarray], np.ndarray]:
            def backward(g: np.ndarray) -> np.ndarray:
                slicer = [slice(None)] * g.ndim
                slicer[axis] = slice(offsets[i], offsets[i + 1])
                return g[tuple(slicer)]

            return backward

        return Tensor._make(data, tuple(tensors), tuple(make_backward(i) for i in range(len(tensors))))

    # ------------------------------------------------------------------ #
    # gather / scatter (message-passing primitives)
    # ------------------------------------------------------------------ #
    def index_select(self, index: np.ndarray) -> "Tensor":
        """Gather rows of a 2-D (or 1-D) tensor along the leading axis."""
        index = np.asarray(index, dtype=np.int64)
        data = self.data[index]
        num_rows = self.data.shape[0]

        def backward(g: np.ndarray, idx=index, n=num_rows, shape=self.shape) -> np.ndarray:
            return _scatter_add_rows(g, idx, n).reshape(shape)

        return Tensor._make(data, (self,), (backward,))

    def index_add(self, index: np.ndarray, num_segments: int) -> "Tensor":
        """Scatter-add rows into ``num_segments`` bins along the leading axis.

        Equivalent to PyG's ``scatter(src, index, dim=0, reduce='sum')`` with a
        known output size: ``out[s] = sum_{j : index[j] == s} self[j]``.
        """
        index = np.asarray(index, dtype=np.int64)
        data = _scatter_add_rows(self.data, index, num_segments)

        def backward(g: np.ndarray, idx=index) -> np.ndarray:
            return g[idx]

        return Tensor._make(data, (self,), (backward,))

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to 1 for scalar outputs (the usual loss case).
        Gradients are accumulated into ``.grad`` of every reachable leaf with
        ``requires_grad=True``.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without gradient only valid for scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # topological ordering of the graph (iterative DFS to avoid recursion limits)
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and not node._parents:
                # leaf: accumulate
                if node.grad is None:
                    node.grad = np.zeros_like(node.data)
                node.grad += node_grad
            for parent, backward_fn in zip(node._parents, node._backward_fns):
                if not parent.requires_grad:
                    continue
                contribution = backward_fn(node_grad)
                existing = grads.get(id(parent))
                if existing is None:
                    grads[id(parent)] = contribution
                else:
                    grads[id(parent)] = existing + contribution
            # also handle non-leaf tensors explicitly marked requires_grad with parents
            if node.requires_grad and node._parents and node.grad is not None:
                pass

    def zero_grad(self) -> None:
        self.grad = None
