"""Learning-rate schedulers.

The paper uses PyTorch's ``ReduceLROnPlateau`` with a reduction factor of 0.1;
a step decay scheduler is also provided for ablations.
"""

from __future__ import annotations

from typing import Dict

from .optim import Optimizer

__all__ = ["ReduceLROnPlateau", "StepLR"]


class ReduceLROnPlateau:
    """Reduce the learning rate when a monitored metric stops improving.

    Parameters
    ----------
    optimizer:
        The optimiser whose ``lr`` is adjusted in place.
    factor:
        Multiplicative factor applied to the learning rate on plateau.
    patience:
        Number of epochs with no improvement before reducing.
    threshold:
        Minimum relative improvement to count as an improvement.
    min_lr:
        Lower bound on the learning rate.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.1,
        patience: int = 10,
        threshold: float = 1e-4,
        min_lr: float = 0.0,
    ) -> None:
        if not (0.0 < factor < 1.0):
            raise ValueError("factor must lie in (0, 1)")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.threshold = threshold
        self.min_lr = min_lr
        self.best = float("inf")
        self.num_bad_epochs = 0
        self.num_reductions = 0

    def step(self, metric: float) -> None:
        """Record the latest value of the monitored metric (lower is better)."""
        if metric < self.best * (1.0 - self.threshold):
            self.best = metric
            self.num_bad_epochs = 0
        else:
            self.num_bad_epochs += 1
            if self.num_bad_epochs > self.patience:
                new_lr = max(self.optimizer.lr * self.factor, self.min_lr)
                if new_lr < self.optimizer.lr:
                    self.optimizer.lr = new_lr
                    self.num_reductions += 1
                self.num_bad_epochs = 0

    # -- state dict (checkpointing) -----------------------------------------
    def state_dict(self) -> Dict:
        """Serialisable scheduler state (the monitored-metric bookkeeping)."""
        return {
            "type": type(self).__name__,
            "factor": self.factor,
            "patience": self.patience,
            "threshold": self.threshold,
            "min_lr": self.min_lr,
            "best": self.best,
            "num_bad_epochs": self.num_bad_epochs,
            "num_reductions": self.num_reductions,
        }

    def load_state_dict(self, state: Dict) -> None:
        if state.get("type") != type(self).__name__:
            raise ValueError(f"scheduler state is for '{state.get('type')}', not '{type(self).__name__}'")
        self.factor = float(state["factor"])
        self.patience = int(state["patience"])
        self.threshold = float(state["threshold"])
        self.min_lr = float(state["min_lr"])
        self.best = float(state["best"])
        self.num_bad_epochs = int(state["num_bad_epochs"])
        self.num_reductions = int(state["num_reductions"])


class StepLR:
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        if self.epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    def state_dict(self) -> Dict:
        return {
            "type": type(self).__name__,
            "step_size": self.step_size,
            "gamma": self.gamma,
            "epoch": self.epoch,
        }

    def load_state_dict(self, state: Dict) -> None:
        if state.get("type") != type(self).__name__:
            raise ValueError(f"scheduler state is for '{state.get('type')}', not '{type(self).__name__}'")
        self.step_size = int(state["step_size"])
        self.gamma = float(state["gamma"])
        self.epoch = int(state["epoch"])
