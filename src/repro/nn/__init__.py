"""NumPy-based neural-network substrate (PyTorch substitute).

Public surface:

* :class:`~repro.nn.tensor.Tensor`, :class:`~repro.nn.tensor.no_grad` —
  reverse-mode autodiff on NumPy arrays.
* :class:`~repro.nn.modules.Module`, :class:`~repro.nn.modules.Linear`,
  :class:`~repro.nn.modules.MLP`, :class:`~repro.nn.modules.Sequential`,
  :class:`~repro.nn.modules.Parameter` — module system.
* :class:`~repro.nn.optim.Adam`, :class:`~repro.nn.optim.SGD`,
  :func:`~repro.nn.optim.clip_grad_norm` — optimisers.
* :class:`~repro.nn.schedulers.ReduceLROnPlateau` — LR scheduling.
* :mod:`repro.nn.functional` — functional ops (segment_sum, gather,
  sparse_matvec, ...).
* :mod:`repro.nn.init` — Xavier & co.
"""

from . import functional, init
from .modules import MLP, Identity, Linear, Module, Parameter, Sequential
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .schedulers import ReduceLROnPlateau, StepLR
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "Sequential",
    "Identity",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "ReduceLROnPlateau",
    "StepLR",
    "functional",
    "init",
]
