"""Parameter initialisation schemes.

The paper initialises all DSS weights with Xavier (Glorot) initialisation;
both the uniform and normal variants are provided, along with simple zero and
constant initialisers for biases.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "zeros", "constant", "kaiming_uniform"]


def xavier_uniform(shape: tuple[int, ...], gain: float = 1.0, rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation ``U(-a, a)`` with ``a = gain * sqrt(6/(fan_in+fan_out))``."""
    rng = rng if rng is not None else np.random.default_rng()
    fan_out, fan_in = shape[0], shape[-1]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], gain: float = 1.0, rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation ``N(0, gain^2 * 2/(fan_in+fan_out))``."""
    rng = rng if rng is not None else np.random.default_rng()
    fan_out, fan_in = shape[0], shape[-1]
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """He/Kaiming uniform initialisation suited to ReLU activations."""
    rng = rng if rng is not None else np.random.default_rng()
    fan_in = shape[-1]
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (used for biases)."""
    return np.zeros(shape)


def constant(shape: tuple[int, ...], value: float) -> np.ndarray:
    """Constant initialisation."""
    return np.full(shape, float(value))
