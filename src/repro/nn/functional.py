"""Functional helpers built on top of the autodiff :class:`~repro.nn.tensor.Tensor`.

These are thin, composable wrappers used by the neural-network modules and by
the physics-informed loss of the Deep Statistical Solver.

The ``*_into`` / trailing-underscore variants at the bottom are the raw-NumPy
inference fast path: they operate on plain ``ndarray``s, write into
preallocated buffers (``out=`` kwargs) and build no autodiff graph.  They are
kept numerically bit-compatible with their tape counterparts so
``DSS.infer`` can be pinned against the tape forward.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, _scatter_add_rows

__all__ = [
    "relu",
    "tanh",
    "linear",
    "mse",
    "concatenate",
    "segment_sum",
    "gather",
    "sparse_matvec",
    "relu_",
    "segment_sum_into",
]


def relu(x: Tensor) -> Tensor:
    """Elementwise rectified linear unit."""
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    return x.tanh()


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch convention)."""
    out = x.matmul(weight.T)
    if bias is not None:
        out = out + bias
    return out


def mse(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between two tensors."""
    diff = prediction - target
    return (diff * diff).mean()


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    return Tensor.concatenate(list(tensors), axis=axis)


def gather(x: Tensor, index: np.ndarray) -> Tensor:
    """Gather rows of ``x`` along the leading axis (differentiable)."""
    return x.index_select(index)


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` bins (differentiable scatter-add).

    This is the aggregation primitive of message passing: messages computed on
    edges are summed onto their destination nodes.
    """
    return x.index_add(segment_ids, num_segments)


def sparse_matvec(matrix: sp.spmatrix, u: Tensor) -> Tensor:
    """Differentiable product of a constant sparse matrix with a tensor.

    The matrix is constant (not a learnable parameter), so only the gradient
    with respect to ``u`` is propagated: ``d(Au)/duᵀ g = Aᵀ g``.  The transpose
    product is evaluated lazily in the backward closure (``matrix.T @ g`` on a
    CSR matrix is a cheap CSC matvec; no transposed copy is materialised).
    """
    csr = matrix if sp.issparse(matrix) and matrix.format == "csr" else matrix.tocsr()
    data = csr @ u.data
    return Tensor._make(data, (u,), (lambda g, m=csr: m.T @ g,))


# --------------------------------------------------------------------------- #
# raw-NumPy inference fast path (no Tensor, no tape, reused buffers)
# --------------------------------------------------------------------------- #
def relu_(x: np.ndarray) -> np.ndarray:
    """In-place rectified linear unit on a raw array."""
    np.maximum(x, 0.0, out=x)
    return x


def segment_sum_into(values: np.ndarray, segment_ids: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Raw-array segment sum into a preallocated ``(num_segments, d)`` buffer.

    Shares the per-column ``np.bincount`` kernel with the tape's
    :meth:`~repro.nn.tensor.Tensor.index_add`, so per-segment accumulation
    order (ascending row index) — and therefore the floating-point result —
    is identical to the autograd forward pass.
    """
    return _scatter_add_rows(values, segment_ids, out.shape[0], out=out)
