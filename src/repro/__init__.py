"""repro — reproduction of "Multi-Level GNN Preconditioner for Solving Large Scale Problems".

The package is organised bottom-up (see DESIGN.md):

* :mod:`repro.nn` — NumPy autodiff + neural-network substrate (PyTorch substitute);
* :mod:`repro.mesh` — random-domain generation and unstructured triangulation (GMSH substitute);
* :mod:`repro.fem` — P1 finite elements for Poisson and variable-coefficient
  diffusion with mixed Dirichlet/Neumann/Robin boundary conditions;
* :mod:`repro.problems` — named problem registry
  (``make_problem("diffusion-checkerboard", ...)``);
* :mod:`repro.partition` — k-way mesh partitioning with overlap (METIS substitute);
* :mod:`repro.ddm` — restriction operators, Nicolaides coarse space, Additive Schwarz;
* :mod:`repro.krylov` — CG / PCG / BiCGStab / GMRES and the IC(0) baseline;
* :mod:`repro.gnn` — the Deep Statistical Solver (DSS) model, its training
  pipeline and versioned checkpointing (:mod:`repro.gnn.checkpoint`);
* :mod:`repro.core` — the DDM-GNN preconditioner, the (legacy) hybrid solver
  facade and dataset generation (the paper's contribution);
* :mod:`repro.solvers` — the solver surface: registry-driven
  :class:`~repro.solvers.session.SolverSession` objects with amortised setup
  and multi-RHS serving (``prepare(problem, config).solve_many(B)``);
* :mod:`repro.timestepping` — implicit θ-scheme time marching on amortised
  sessions (``prepare(make_problem("heat")).march(steps=100)``), including
  lockstep-batched independent trajectories and the first 3D (tetrahedral)
  problem families;
* :mod:`repro.experiments` — the reproducible experiment harness
  (``python -m repro.experiments run --spec spec.json``) driving
  seed→mesh→train→checkpoint→bench→report from a declarative JSON spec;
* :mod:`repro.serve` — the concurrent solve service
  (``python -m repro.serve``): fingerprint-keyed session cache, request
  micro-batching onto lockstep multi-RHS solves, worker pool, latency SLO
  metrics and a stdlib JSON-over-HTTP front end;
* :mod:`repro.faults` — deterministic, seedable fault injection
  (``with faults.inject("gnn-nan-apply"): ...``) backing the chaos tests of
  the failure-hardening layer (breakdown taxonomy, degradation ladder,
  circuit breakers, deadlines).

Typical usage::

    from repro.mesh import random_domain_mesh
    from repro.fem import random_poisson_problem
    from repro.gnn import DSS, DSSConfig
    from repro.solvers import SolverConfig, prepare

    mesh = random_domain_mesh(radius=1.0, element_size=0.05)
    problem = random_poisson_problem(mesh)
    model = DSS(DSSConfig(num_iterations=10, latent_dim=10))  # train it first!
    session = prepare(problem, SolverConfig(preconditioner="ddm-gnn", subdomain_size=200), model=model)
    result = session.solve()          # setup is paid once per session,
    print(result.summary())           # further session.solve(b) calls amortise it
"""

from . import (
    core,
    ddm,
    experiments,
    faults,
    fem,
    gnn,
    krylov,
    mesh,
    nn,
    partition,
    problems,
    serve,
    solvers,
    timestepping,
    utils,
)

__version__ = "1.8.0"

__all__ = [
    "nn",
    "mesh",
    "fem",
    "problems",
    "partition",
    "ddm",
    "krylov",
    "gnn",
    "core",
    "solvers",
    "timestepping",
    "serve",
    "experiments",
    "faults",
    "utils",
    "__version__",
]
