"""Time-marching engine: many steps against one prepared session.

:func:`march` advances a :class:`~repro.timestepping.problem.TimeDependentProblem`
``steps`` θ-steps through an already-prepared
:class:`~repro.solvers.session.SolverSession`.  The session's setup
(partition, factorisations, compiled inference plans) is paid **once** —
every step is a pure ``session.solve`` against the next right-hand side, so
the trajectory is bit-identical by construction to issuing the same
``solve`` calls by hand.

:func:`march_many` marches ``k`` independent trajectories in lockstep: each
step assembles one right-hand side per trajectory and pushes the whole block
through :meth:`~repro.solvers.session.SolverSession.solve_many`, landing on
the fused multi-RHS Krylov path (one SpMM + one multi-column preconditioner
apply per iteration for the whole fleet).  The lockstep contract makes every
trajectory bit-identical to marching it alone with ``warm_start=False``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..krylov.result import SolveResult
from .problem import TimeDependentProblem, TimeSteppingError, validate_steps

__all__ = ["MarchResult", "march", "march_many"]


@dataclass
class MarchResult:
    """Outcome of marching one trajectory: one :class:`SolveResult` per step.

    ``results[k]`` is the solve that produced ``u^{k+1}``; all the per-step
    diagnostics (iterations, residual histories, stage timings) are preserved
    verbatim.  ``states`` holds the full trajectory ``(steps+1, n)`` including
    ``u^0`` when the march recorded states.
    """

    results: List[SolveResult] = field(default_factory=list)
    dt: float = 0.0
    theta: float = 1.0
    elapsed_time: float = 0.0
    #: how the steps were executed: "sequential" (one solve per step) or
    #: "fused" (this trajectory marched inside a lockstep batch)
    mode: str = "sequential"
    states: Optional[np.ndarray] = None

    @property
    def solution(self) -> np.ndarray:
        """The final state ``u^N``."""
        return self.results[-1].solution

    @property
    def num_steps(self) -> int:
        return len(self.results)

    @property
    def iterations(self) -> List[int]:
        return [r.iterations for r in self.results]

    @property
    def total_iterations(self) -> int:
        return int(sum(self.iterations))

    @property
    def converged(self) -> bool:
        """True when every step converged."""
        return all(r.converged for r in self.results)

    @property
    def per_step_ms(self) -> float:
        """Amortised wall time per step in milliseconds (setup excluded —
        the session paid it before the march)."""
        if not self.results:
            return 0.0
        return 1e3 * self.elapsed_time / len(self.results)

    def summary(self) -> str:
        """One-line amortised summary of the march."""
        if not self.results:
            return "0 steps"
        status = "converged" if self.converged else "NOT converged"
        iters = self.iterations
        text = (
            f"{self.num_steps} steps {status} ({self.mode}, dt={self.dt:g}, "
            f"theta={self.theta:g}), iterations {min(iters)}..{max(iters)} "
            f"(median {int(np.median(iters))}), {self.per_step_ms:.3f} ms/step "
            f"amortized, total {self.elapsed_time:.4f}s"
        )
        setup_s = float(self.results[0].info.get("setup_s", 0.0))
        if setup_s > 0.0:
            text += f" (+ setup {setup_s:.3f}s paid once)"
        return text


def _initial_state(problem: TimeDependentProblem, u0) -> np.ndarray:
    """Resolve and validate a starting state, enforcing the Dirichlet data."""
    if u0 is None:
        return problem.initial_state.copy()
    u = np.asarray(u0, dtype=np.float64).copy()
    n = problem.num_dofs
    if u.shape != (n,):
        raise TimeSteppingError(f"u0 must have shape ({n},), got {u.shape}")
    dn = problem._dirichlet_index
    if dn.size:
        u[dn] = problem.boundary_values
    return u


def _check_session(session, dt) -> TimeDependentProblem:
    problem = session.problem
    if not isinstance(problem, TimeDependentProblem):
        raise TimeSteppingError(
            "march requires a session prepared over a TimeDependentProblem "
            f"(got {type(problem).__name__}); build one via "
            "make_problem('heat'/'heat3d'/'convection-diffusion-transient') "
            "or TimeDependentProblem.from_theta_scheme"
        )
    if dt is not None and float(dt) != problem.dt:
        raise TimeSteppingError(
            f"dt={dt} does not match the problem's assembled step operator "
            f"(dt={problem.dt}); the step operator is baked at assembly time — "
            f"rebuild the problem to change dt"
        )
    return problem


def march(
    session,
    u0: Optional[np.ndarray] = None,
    dt: Optional[float] = None,
    steps: int = 1,
    warm_start: bool = True,
    record_states: bool = False,
) -> MarchResult:
    """March ``steps`` θ-steps from ``u0`` through a prepared session.

    ``u0`` defaults to the problem's ``initial_state``; ``dt`` is accepted
    only as a cross-check (the step operator is baked at assembly time).
    With ``warm_start`` each step's Krylov solve starts from the previous
    state — the natural initial guess for a smooth trajectory — while
    ``warm_start=False`` reproduces the zero-guess behaviour of
    :func:`march_many` exactly.  ``record_states`` keeps the full
    ``(steps+1, n)`` trajectory on the result.
    """
    problem = _check_session(session, dt)
    steps = validate_steps(steps)
    u = _initial_state(problem, u0)

    states = [u.copy()] if record_states else None
    results: List[SolveResult] = []
    start = time.perf_counter()
    for k in range(steps):
        b = problem.step_rhs(u)
        result = session.solve(b, x0=u.copy() if warm_start else None)
        result.info["step_index"] = k
        result.info["steps"] = steps
        result.info["dt"] = problem.dt
        result.info["theta"] = problem.theta
        u = result.solution
        results.append(result)
        if record_states:
            states.append(u.copy())
    elapsed = time.perf_counter() - start

    for result in results:
        result.info["march_total_s"] = elapsed
        result.info["amortized_step_ms"] = 1e3 * elapsed / steps
    return MarchResult(
        results=results,
        dt=problem.dt,
        theta=problem.theta,
        elapsed_time=elapsed,
        mode="sequential",
        states=np.stack(states) if record_states else None,
    )


def march_many(
    session,
    U0,
    dt: Optional[float] = None,
    steps: int = 1,
    mode: str = "auto",
    record_states: bool = False,
) -> List[MarchResult]:
    """March independent trajectories in lockstep through the fused path.

    ``U0`` is a stack of initial states (rows).  Each step assembles every
    trajectory's right-hand side and solves the whole block via
    :meth:`SolverSession.solve_many` (``mode`` is forwarded: "auto" uses the
    fused lockstep Krylov when available).  Initial guesses are zero — the
    lockstep contract shares one guess across columns — so trajectory ``j``
    is bit-identical to ``march(session, U0[j], warm_start=False)``.

    Returns one :class:`MarchResult` per trajectory; ``elapsed_time`` is the
    batch wall time divided evenly across trajectories, so ``per_step_ms``
    reflects the amortised per-trajectory throughput.
    """
    problem = _check_session(session, dt)
    steps = validate_steps(steps)
    U = np.atleast_2d(np.asarray(U0, dtype=np.float64)).copy()
    if U.ndim != 2 or U.shape[1] != problem.num_dofs:
        raise TimeSteppingError(
            f"U0 must stack initial states of length {problem.num_dofs} "
            f"as rows, got shape {U.shape}"
        )
    dn = problem._dirichlet_index
    if dn.size:
        U[:, dn] = problem.boundary_values[None, :]
    num_trajectories = U.shape[0]

    states = [U.copy()] if record_states else None
    per_step: List[List[SolveResult]] = [[] for _ in range(num_trajectories)]
    modes = set()
    start = time.perf_counter()
    for k in range(steps):
        B = problem.step_rhs_columns(U)
        batch = session.solve_many(B, mode=mode)
        modes.add(batch.mode)
        for j, result in enumerate(batch.results):
            result.info["step_index"] = k
            result.info["steps"] = steps
            result.info["dt"] = problem.dt
            result.info["theta"] = problem.theta
            result.info["trajectory"] = j
            per_step[j].append(result)
        U = batch.solutions
        if record_states:
            states.append(U.copy())
    elapsed = time.perf_counter() - start

    batch_mode = "fused" if modes == {"fused"} else "sequential"
    share = elapsed / num_trajectories
    stacked = np.stack(states, axis=1) if record_states else None  # (k, steps+1, n)
    out: List[MarchResult] = []
    for j in range(num_trajectories):
        for result in per_step[j]:
            result.info["march_total_s"] = elapsed
            result.info["amortized_step_ms"] = 1e3 * share / steps
        out.append(
            MarchResult(
                results=per_step[j],
                dt=problem.dt,
                theta=problem.theta,
                elapsed_time=share,
                mode=batch_mode,
                states=stacked[j] if record_states else None,
            )
        )
    return out
