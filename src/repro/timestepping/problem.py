"""Time-dependent problems: θ-scheme discretisations with a constant step operator.

An implicit θ-scheme for the semi-discrete system ``M du/dt + A u = f`` with
(constant-in-time) Dirichlet data ``u = g`` on the Dirichlet nodes reads::

    (M/dt + θ·A) u^{n+1} = (M/dt − (1−θ)·A) u^n + f

The left-hand operator is **constant across all steps** — one
:func:`repro.solvers.prepare` pays the partition/factorisation/inference-plan
setup once and every step is a pure ``solve`` against a new right-hand side.
That is exactly the workload the setup/solve split and the lockstep multi-RHS
path were built for, and it is what :func:`repro.timestepping.march.march`
exploits.

θ selects the scheme: ``θ = 1`` is backward Euler (O(dt), L-stable),
``θ = 0.5`` is Crank–Nicolson (O(dt²), A-stable), ``θ = 0`` is explicit
Euler (the "solve" is then against the mass matrix only).  ``dt`` and ``θ``
are baked into the assembled operator, so they enter
:meth:`~repro.fem.problem.Problem.fingerprint` via the
``_fingerprint_extra`` hook — serve session caches can never mix schemes
that share a spatial operator.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Literal, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..fem.assembly import apply_dirichlet
from ..fem.problem import Problem

__all__ = ["TimeSteppingError", "TimeDependentProblem", "validate_scheme"]


class TimeSteppingError(ValueError):
    """Invalid time-stepping parameters (non-positive dt, θ outside [0, 1],
    non-integral step counts).  Raised fail-closed at problem-build or
    march-entry time so a bad scheme never produces a NaN trajectory."""


def validate_scheme(dt: float, theta: float) -> tuple:
    """Validate (dt, θ) and return them as plain floats.

    >>> validate_scheme(0.01, 0.5)
    (0.01, 0.5)
    >>> validate_scheme(0.0, 0.5)
    Traceback (most recent call last):
        ...
    repro.timestepping.problem.TimeSteppingError: dt must be a positive finite number, got 0.0
    >>> validate_scheme(0.01, 1.5)
    Traceback (most recent call last):
        ...
    repro.timestepping.problem.TimeSteppingError: theta must lie in [0, 1], got 1.5
    """
    try:
        dt = float(dt)
        theta = float(theta)
    except (TypeError, ValueError) as error:
        raise TimeSteppingError(f"dt/theta must be numbers: {error}") from None
    if not np.isfinite(dt) or dt <= 0.0:
        raise TimeSteppingError(f"dt must be a positive finite number, got {dt}")
    if not np.isfinite(theta) or not 0.0 <= theta <= 1.0:
        raise TimeSteppingError(f"theta must lie in [0, 1], got {theta}")
    return dt, theta


def validate_steps(steps) -> int:
    """Validate a step count: an integral number ≥ 1.

    >>> validate_steps(10)
    10
    >>> validate_steps(0)
    Traceback (most recent call last):
        ...
    repro.timestepping.problem.TimeSteppingError: steps must be >= 1, got 0
    >>> validate_steps(2.5)
    Traceback (most recent call last):
        ...
    repro.timestepping.problem.TimeSteppingError: steps must be an integer, got 2.5
    """
    if isinstance(steps, bool) or not isinstance(steps, (int, np.integer)):
        raise TimeSteppingError(f"steps must be an integer, got {steps!r}")
    steps = int(steps)
    if steps < 1:
        raise TimeSteppingError(f"steps must be >= 1, got {steps}")
    return steps


@dataclass
class TimeDependentProblem(Problem):
    """A θ-scheme time discretisation with its constant step operator.

    On top of the base :class:`~repro.fem.problem.Problem` attributes
    (``matrix`` is the Dirichlet-eliminated step operator ``M/dt + θ·A``,
    ``stiffness`` the raw spatial operator ``A``) it carries everything a
    session needs to march:

    ``mass``
        The (consistent or lumped) mass matrix M.
    ``explicit_operator``
        The raw right-hand operator ``E = M/dt − (1−θ)·A`` applied to the
        previous state each step (full rows/columns — the boundary columns
        of E act on the known Dirichlet values, which is exactly what the
        interior equations require).
    ``step_load``
        The constant part of every step's right-hand side: the source load
        ``f`` plus, for symmetric elimination, the ``−Op·g`` lift of the
        boundary data.
    ``initial_state``
        ``u^0`` with Dirichlet values enforced.
    ``dt`` / ``theta`` / ``lumped_mass``
        The scheme parameters (hashed into the fingerprint).
    """

    mass: Optional[sp.csr_matrix] = None
    explicit_operator: Optional[sp.csr_matrix] = None
    step_load: Optional[np.ndarray] = None
    initial_state: Optional[np.ndarray] = None
    dt: float = 1.0
    theta: float = 1.0
    lumped_mass: bool = False

    # ------------------------------------------------------------------ #
    @property
    def _dirichlet_index(self) -> np.ndarray:
        if self.dirichlet_nodes is None:
            return self.mesh.boundary_nodes
        return np.asarray(self.dirichlet_nodes, dtype=np.int64)

    def step_rhs(self, u: np.ndarray) -> np.ndarray:
        """Right-hand side of one θ-step from state ``u``: ``E·u + step_load``
        with the Dirichlet rows pinned to the boundary values."""
        b = self.explicit_operator @ np.asarray(u, dtype=np.float64) + self.step_load
        dn = self._dirichlet_index
        if dn.size:
            b[dn] = self.boundary_values
        return b

    def step_rhs_columns(self, U: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`step_rhs` for a stack of states (rows of ``U``)."""
        U = np.asarray(U, dtype=np.float64)
        B = (self.explicit_operator @ U.T).T + self.step_load[None, :]
        dn = self._dirichlet_index
        if dn.size:
            B[:, dn] = self.boundary_values[None, :]
        return B

    # ------------------------------------------------------------------ #
    def _fingerprint_extra(self) -> bytes:
        """Scheme parameters + step operators, folded into the fingerprint.

        Covers dt, θ, the mass-lumping flag and the arrays of M, E, the
        constant step load and the initial state — so two sessions only share
        a serve-cache key when they march the *same* discrete trajectory.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(b"|tdp|")
        digest.update(struct.pack("<dd?", self.dt, self.theta, self.lumped_mass))
        for operator in (self.mass, self.explicit_operator):
            csr = operator.tocsr()
            digest.update(np.asarray(csr.indptr, dtype=np.int64).tobytes())
            digest.update(np.asarray(csr.indices, dtype=np.int64).tobytes())
            digest.update(np.ascontiguousarray(csr.data, dtype=np.float64).tobytes())
            digest.update(b"|")
        digest.update(np.ascontiguousarray(self.step_load, dtype=np.float64).tobytes())
        digest.update(b"|")
        digest.update(np.ascontiguousarray(self.initial_state, dtype=np.float64).tobytes())
        return digest.digest()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_theta_scheme(
        cls,
        mesh,
        spatial: sp.csr_matrix,
        mass: sp.csr_matrix,
        load: np.ndarray,
        dt: float,
        theta: float = 1.0,
        dirichlet_nodes: Optional[np.ndarray] = None,
        dirichlet_values: Optional[np.ndarray] = None,
        dirichlet_mode: Literal["symmetric", "row"] = "symmetric",
        initial_state: Union[None, np.ndarray, Callable] = None,
        node_diffusion: Optional[np.ndarray] = None,
        lumped_mass: bool = False,
    ) -> "TimeDependentProblem":
        """Assemble the constant θ-step system from raw spatial operators.

        ``spatial`` is the raw (pre-elimination) spatial operator A
        (stiffness, possibly plus convection and Robin boundary terms),
        ``mass`` the mass matrix, ``load`` the source load vector f.
        ``dirichlet_nodes`` defaults to the whole mesh boundary with
        homogeneous values.  ``initial_state`` may be an array of nodal
        values or a callable evaluated at the mesh nodes; Dirichlet values
        are enforced on it either way.
        """
        dt, theta = validate_scheme(dt, theta)
        spatial = spatial.tocsr()
        mass = mass.tocsr()
        n = spatial.shape[0]

        if dirichlet_nodes is None:
            dirichlet_nodes = mesh.boundary_nodes
        dirichlet_nodes = np.asarray(dirichlet_nodes, dtype=np.int64)
        if dirichlet_values is None:
            dirichlet_values = np.zeros(len(dirichlet_nodes))
        dirichlet_values = np.broadcast_to(
            np.asarray(dirichlet_values, dtype=np.float64), dirichlet_nodes.shape
        ).copy()

        step_operator = (mass / dt + theta * spatial).tocsr()
        explicit = (mass / dt - (1.0 - theta) * spatial).tocsr()
        load = np.asarray(load, dtype=np.float64)

        g_full = np.zeros(n)
        g_full[dirichlet_nodes] = dirichlet_values
        if dirichlet_nodes.size:
            matrix, _ = apply_dirichlet(
                step_operator, load, dirichlet_nodes, dirichlet_values, mode=dirichlet_mode
            )
            # the constant part of every step's RHS: the source load, plus —
            # only under symmetric elimination, which zeroes the boundary
            # columns of the operator — the lift of the boundary data
            if dirichlet_mode == "symmetric":
                step_load = load - step_operator @ g_full
            else:
                step_load = load.copy()
        else:
            matrix = step_operator
            step_load = load.copy()

        if initial_state is None:
            u0 = g_full.copy()
        elif callable(initial_state):
            u0 = np.asarray(initial_state(*mesh.nodes.T), dtype=np.float64).copy()
        else:
            u0 = np.asarray(initial_state, dtype=np.float64).copy()
        if u0.shape != (n,):
            raise TimeSteppingError(
                f"initial state must have shape ({n},), got {u0.shape}"
            )
        u0[dirichlet_nodes] = dirichlet_values

        # symmetry of the *eliminated step operator*: row elimination breaks
        # symmetry whenever Dirichlet nodes exist, otherwise inspect Op itself
        if dirichlet_mode == "row" and dirichlet_nodes.size:
            symmetric = False
        else:
            asym = sp.csr_matrix(abs(step_operator - step_operator.T))
            scale = max(float(np.abs(step_operator.data).max()), 1.0)
            symmetric = bool(asym.nnz == 0 or float(asym.data.max()) <= 1e-12 * scale)

        problem = cls(
            mesh=mesh,
            matrix=matrix,
            rhs=np.zeros(n),  # placeholder, replaced by the first step's RHS below
            stiffness=spatial,
            boundary_values=dirichlet_values,
            dirichlet_mode=dirichlet_mode,
            dirichlet_nodes=dirichlet_nodes,
            node_diffusion=node_diffusion,
            symmetric=symmetric,
            mass=mass,
            explicit_operator=explicit,
            step_load=step_load,
            initial_state=u0,
            dt=dt,
            theta=theta,
            lumped_mass=bool(lumped_mass),
        )
        # default RHS = the first step from u0, so a plain session.solve()
        # advances the trajectory by one step
        problem.rhs = problem.step_rhs(u0)
        return problem
