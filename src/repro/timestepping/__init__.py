"""Implicit time-marching on amortised solver sessions.

Public surface:

* :class:`~repro.timestepping.problem.TimeDependentProblem` — a θ-scheme
  discretisation ``(M/dt + θ·A) u^{n+1} = (M/dt − (1−θ)·A) u^n + f`` whose
  constant step operator keys exactly one prepared
  :class:`~repro.solvers.session.SolverSession`.
* :func:`~repro.timestepping.march.march` /
  :func:`~repro.timestepping.march.march_many` — the marching engines behind
  :meth:`SolverSession.march` / :meth:`SolverSession.march_many`.
* :class:`~repro.timestepping.march.MarchResult` — per-step solver results +
  the amortised per-step summary.
* :exc:`~repro.timestepping.problem.TimeSteppingError` — fail-closed
  validation of dt / θ / step counts.

Registry families built on this: ``heat``, ``heat3d`` and
``convection-diffusion-transient`` in :mod:`repro.problems.transient`.
"""

from .march import MarchResult, march, march_many
from .problem import TimeDependentProblem, TimeSteppingError, validate_scheme, validate_steps

__all__ = [
    "TimeDependentProblem",
    "TimeSteppingError",
    "MarchResult",
    "march",
    "march_many",
    "validate_scheme",
    "validate_steps",
]
