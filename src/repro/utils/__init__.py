"""Shared utilities: timing, table formatting, process-level parallelism."""

from .parallel import available_workers, parallel_map
from .tables import format_mean_std, format_table, format_timing_split
from .timing import Timer, timed

__all__ = [
    "Timer",
    "timed",
    "format_table",
    "format_mean_std",
    "format_timing_split",
    "parallel_map",
    "available_workers",
]
