"""Plain-text table formatting for the benchmark harnesses.

The harnesses print rows shaped like the paper's tables; this helper keeps the
formatting consistent and dependency-free (no pandas/matplotlib offline).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_mean_std", "format_timing_split"]


def format_mean_std(mean: float, std: float, digits: int = 1) -> str:
    """Render ``mean ± std`` the way the paper's tables do (e.g. ``22±1``)."""
    return f"{mean:.{digits}f}±{std:.{digits}f}"


def format_timing_split(result, digits: int = 3) -> str:
    """Render a solve's wall-clock split ``total = preconditioner + krylov``.

    ``result`` is any object with ``elapsed_time``, ``preconditioner_time``
    and ``krylov_time`` attributes — i.e. a
    :class:`~repro.krylov.result.SolveResult` (the paper's Table III separates
    the preconditioner time T_lu/T_gnn from the total solve time T the same
    way).  Results that came through the serve layer additionally carry
    ``info["queue_s"]`` (time spent in the micro-batching queue) and
    ``info["batch_size"]``; when present they are rendered as a leading
    queue term and a batch annotation.  Results produced by a time march
    (:func:`repro.timestepping.march.march` stamps ``step_index``/``steps``
    and ``amortized_step_ms``) get a trailing step annotation with the
    march's amortised per-step cost.

    >>> class R:
    ...     elapsed_time, preconditioner_time, krylov_time = 1.5, 1.2, 0.3
    >>> format_timing_split(R())
    '1.500s = 1.200s precond + 0.300s krylov'
    >>> class S(R):
    ...     info = {"queue_s": 0.25, "batch_size": 4}
    >>> format_timing_split(S())
    '1.750s = 0.250s queue + 1.200s precond + 0.300s krylov [batch of 4]'
    >>> class M(R):
    ...     info = {"step_index": 2, "steps": 50, "amortized_step_ms": 1.81}
    >>> format_timing_split(M())
    '1.500s = 1.200s precond + 0.300s krylov [step 3/50, 1.810 ms/step amortized]'
    """
    info = getattr(result, "info", None) or {}
    queue_s = info.get("queue_s")
    if queue_s is None:
        text = (
            f"{result.elapsed_time:.{digits}f}s = "
            f"{result.preconditioner_time:.{digits}f}s precond + "
            f"{result.krylov_time:.{digits}f}s krylov"
        )
    else:
        total = result.elapsed_time + float(queue_s)
        text = (
            f"{total:.{digits}f}s = "
            f"{float(queue_s):.{digits}f}s queue + "
            f"{result.preconditioner_time:.{digits}f}s precond + "
            f"{result.krylov_time:.{digits}f}s krylov"
        )
    batch_size = info.get("batch_size")
    if batch_size is not None:
        text += f" [batch of {int(batch_size)}]"
    steps = info.get("steps")
    if steps is not None:
        step_text = f"step {int(info.get('step_index', 0)) + 1}/{int(steps)}"
        step_ms = info.get("amortized_step_ms")
        if step_ms is not None:
            step_text += f", {float(step_ms):.3f} ms/step amortized"
        text += f" [{step_text}]"
    return text


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Format a list of rows as an aligned plain-text table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
