"""Process-level parallel map (simulating the paper's multi-GPU batch parallelism).

The paper solves all local problems concurrently on GPUs.  In this CPU-only
reproduction the default execution path is *vectorised batching* (one big
NumPy computation, see :class:`~repro.gnn.batch.GraphBatch`); this module adds
an optional ``multiprocessing`` fan-out for embarrassingly parallel work such
as generating many meshes or harvesting datasets, which is the closest CPU
analogue of "several independent accelerators".
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "available_workers"]


def available_workers(requested: Optional[int] = None) -> int:
    """Number of worker processes to use (bounded by the CPU count)."""
    cpu = os.cpu_count() or 1
    if requested is None:
        return max(1, cpu - 1)
    return max(1, min(int(requested), cpu))


#: start methods tried in order of preference — fork is cheapest (copy-on-write
#: shares the loaded NumPy state), but is unavailable or unsafe on spawn-only
#: platforms (Windows, and macOS since Python 3.8 made spawn the default)
_START_METHOD_PREFERENCE = ("fork", "spawn")


def _pool_context(start_method: Optional[str] = None):
    """The multiprocessing context to use, or None to run serially.

    With no explicit ``start_method``, the first available method from
    :data:`_START_METHOD_PREFERENCE` is used; an explicit but unsupported
    method raises ``ValueError`` (matching ``mp.get_context``).
    """
    if start_method is not None:
        return mp.get_context(start_method)  # raises ValueError if unknown
    supported = mp.get_all_start_methods()
    for method in _START_METHOD_PREFERENCE:
        if method in supported:
            return mp.get_context(method)
    return None


def parallel_map(
    function: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
    start_method: Optional[str] = None,
) -> List[R]:
    """Map ``function`` over ``items`` with a process pool.

    The pool uses the ``fork`` start method where the platform provides it
    and falls back to ``spawn`` otherwise (Windows, macOS ≥ 3.8 defaults);
    ``start_method`` forces a specific one.  Runs serially when only one
    worker is available, when there is a single item, or when no usable
    start method exists.  The function must be picklable (top-level).
    """
    items = list(items)
    # resolved first so an explicit-but-unknown start method raises even when
    # the map would run serially on this machine (e.g. a single-CPU container)
    context = _pool_context(start_method)
    n_workers = available_workers(workers)
    if context is None or n_workers <= 1 or len(items) <= 1:
        return [function(item) for item in items]
    with context.Pool(processes=n_workers) as pool:
        return pool.map(function, items, chunksize=max(1, chunksize))
