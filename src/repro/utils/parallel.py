"""Process-level parallel map (simulating the paper's multi-GPU batch parallelism).

The paper solves all local problems concurrently on GPUs.  In this CPU-only
reproduction the default execution path is *vectorised batching* (one big
NumPy computation, see :class:`~repro.gnn.batch.GraphBatch`); this module adds
an optional ``multiprocessing`` fan-out for embarrassingly parallel work such
as generating many meshes or harvesting datasets, which is the closest CPU
analogue of "several independent accelerators".
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "available_workers"]


def available_workers(requested: Optional[int] = None) -> int:
    """Number of worker processes to use (bounded by the CPU count)."""
    cpu = os.cpu_count() or 1
    if requested is None:
        return max(1, cpu - 1)
    return max(1, min(int(requested), cpu))


def parallel_map(
    function: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``function`` over ``items`` with a process pool.

    Falls back to a serial loop when only one worker is available, when there
    is a single item, or when running in a context where forking is
    undesirable (``workers=1``).  The function must be picklable (top-level).
    """
    items = list(items)
    n_workers = available_workers(workers)
    if n_workers <= 1 or len(items) <= 1:
        return [function(item) for item in items]
    with mp.get_context("fork").Pool(processes=n_workers) as pool:
        return pool.map(function, items, chunksize=max(1, chunksize))
