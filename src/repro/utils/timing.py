"""Small timing utilities shared by the benchmark harnesses."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

__all__ = ["Timer", "timed"]


@dataclass
class Timer:
    """Accumulating named timer.

    Usage::

        timer = Timer()
        with timer.measure("assembly"):
            ...
        print(timer.totals["assembly"])
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def mean(self, name: str) -> float:
        """Mean duration of all measurements recorded under ``name``."""
        if name not in self.totals:
            raise KeyError(f"no measurements recorded for '{name}'")
        return self.totals[name] / self.counts[name]

    def report(self) -> str:
        """Multi-line human-readable report sorted by total time."""
        lines = []
        for name, total in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            lines.append(f"{name:30s} total {total:9.4f}s  calls {self.counts[name]:5d}  mean {total / self.counts[name]:9.5f}s")
        return "\n".join(lines)


@contextmanager
def timed() -> Iterator[List[float]]:
    """Context manager yielding a single-element list filled with the elapsed time."""
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
