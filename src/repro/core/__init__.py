"""Core package: the paper's contribution (DDM-GNN) and the end-to-end solver.

Public surface:

* :class:`~repro.core.ddm_gnn.DDMGNNPreconditioner` — the multi-level GNN
  preconditioner (paper Sec. III-A).
* :class:`~repro.core.hybrid_solver.HybridSolver`,
  :class:`~repro.core.hybrid_solver.HybridSolverConfig` — legacy one-shot
  facade (thin shim over :mod:`repro.solvers` sessions; new code should use
  :func:`repro.solvers.prepare`).
* :func:`~repro.core.dataset.generate_dataset`,
  :func:`~repro.core.dataset.harvest_local_problems`,
  :class:`~repro.core.dataset.LocalProblemDataset`,
  :func:`~repro.core.dataset.build_subdomain_geometries` — training data.
"""

from .dataset import (
    LocalProblemDataset,
    SubdomainGeometry,
    build_subdomain_geometries,
    generate_dataset,
    harvest_local_problems,
)
from .ddm_gnn import DDMGNNPreconditioner
from .hybrid_solver import HybridSolver, HybridSolverConfig

__all__ = [
    "DDMGNNPreconditioner",
    "HybridSolver",
    "HybridSolverConfig",
    "LocalProblemDataset",
    "SubdomainGeometry",
    "build_subdomain_geometries",
    "generate_dataset",
    "harvest_local_problems",
]
