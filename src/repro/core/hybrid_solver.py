"""End-to-end hybrid solver facade (paper Fig. 1).

:class:`HybridSolver` wires together the whole pipeline for one global
elliptic problem: partition the mesh into overlapping sub-domains, build the
requested preconditioner (DDM-GNN, DDM-LU, IC(0), Jacobi-ASM or none) and run
the Preconditioned Conjugate Gradient to a target relative residual.

It accepts any :class:`~repro.fem.problem.Problem` — the paper's homogeneous
Poisson problems as well as every family built by
:func:`repro.problems.make_problem` (variable-coefficient diffusion, mixed
Dirichlet/Neumann/Robin boundaries): the problem's Dirichlet node set and
per-node κ field are threaded into the DDM-GNN sub-domain graphs
automatically.

It is the object the examples and every benchmark harness use, and its
configuration mirrors the knobs varied across the paper's tables: global size
N (via the problem), sub-domain size Ns, overlap, number of levels, tolerance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from ..ddm.asm import AdditiveSchwarzPreconditioner, IdentityPreconditioner, Preconditioner
from ..ddm.local_solvers import JacobiLocalSolver
from ..fem.problem import Problem
from ..gnn.dss import DSS
from ..krylov.cg import preconditioned_conjugate_gradient
from ..krylov.ic import IncompleteCholeskyPreconditioner
from ..krylov.result import SolveResult
from ..partition.overlap import OverlappingDecomposition
from ..partition.partitioner import partition_mesh, partition_mesh_target_size
from .ddm_gnn import DDMGNNPreconditioner

__all__ = ["HybridSolverConfig", "HybridSolver"]

PreconditionerKind = Literal["ddm-gnn", "ddm-lu", "ddm-jacobi", "ic0", "none"]


@dataclass
class HybridSolverConfig:
    """Configuration of a hybrid solve.

    Attributes
    ----------
    preconditioner:
        Which preconditioner to build ("ddm-gnn", "ddm-lu", "ddm-jacobi",
        "ic0" or "none").
    subdomain_size:
        Target sub-domain size Ns; used when ``num_subdomains`` is None.
    num_subdomains:
        Explicit number of sub-domains K (overrides ``subdomain_size``).
    overlap:
        Overlap width in graph layers (the paper uses 2, and 4 in ablations).
    levels:
        1 or 2 (two-level adds the Nicolaides coarse space).
    tolerance:
        Relative residual stopping threshold of PCG.
    max_iterations:
        Iteration cap for PCG.
    gnn_batch_size:
        Number of sub-domain graphs per DSS inference call (None = all at once).
    gnn_equilibrate:
        Diagonal equilibration of the DDM-GNN local solves; None (default)
        enables it exactly when the problem carries a κ field, False forces
        the paper's raw local systems (e.g. for a model trained without it).
    seed:
        Seed for the partitioner.
    """

    preconditioner: PreconditionerKind = "ddm-gnn"
    subdomain_size: int = 1000
    num_subdomains: Optional[int] = None
    overlap: int = 2
    levels: Literal[1, 2] = 2
    tolerance: float = 1e-6
    max_iterations: Optional[int] = None
    gnn_batch_size: Optional[int] = None
    gnn_equilibrate: Optional[bool] = None
    jacobi_sweeps: int = 10
    seed: int = 0


class HybridSolver:
    """Solve discretised elliptic problems with a configurable preconditioned CG."""

    def __init__(self, config: HybridSolverConfig = HybridSolverConfig(), model: Optional[DSS] = None) -> None:
        if config.preconditioner == "ddm-gnn" and model is None:
            raise ValueError("the DDM-GNN preconditioner requires a DSS model")
        self.config = config
        self.model = model
        self.setup_time = 0.0
        self.last_preconditioner: Optional[Preconditioner] = None
        self.last_decomposition: Optional[OverlappingDecomposition] = None

    @classmethod
    def from_checkpoint(
        cls, checkpoint_path: str, config: Optional[HybridSolverConfig] = None
    ) -> "HybridSolver":
        """Build a DDM-GNN hybrid solver from a trained checkpoint file.

        The DSS architecture is reconstructed from the checkpoint's embedded
        :class:`~repro.gnn.dss.DSSConfig` (see :mod:`repro.gnn.checkpoint`),
        so no model code or hyper-parameters need to be repeated at the call
        site — the artifact is self-describing.
        """
        from ..gnn.checkpoint import load_model

        return cls(config if config is not None else HybridSolverConfig(), model=load_model(checkpoint_path))

    # ------------------------------------------------------------------ #
    def _build_decomposition(self, problem: Problem) -> OverlappingDecomposition:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        if cfg.num_subdomains is not None:
            partition = partition_mesh(problem.mesh, cfg.num_subdomains, rng=rng)
        else:
            partition = partition_mesh_target_size(problem.mesh, cfg.subdomain_size, rng=rng)
        return OverlappingDecomposition(problem.mesh, partition, overlap=cfg.overlap)

    def build_preconditioner(self, problem: Problem) -> Preconditioner:
        """Construct (and cache) the preconditioner for a given problem."""
        cfg = self.config
        start = time.perf_counter()
        preconditioner: Preconditioner
        if cfg.preconditioner in ("ddm-gnn", "ddm-lu", "ddm-jacobi"):
            decomposition = self._build_decomposition(problem)
            self.last_decomposition = decomposition
            if cfg.preconditioner == "ddm-gnn":
                assert self.model is not None
                preconditioner = DDMGNNPreconditioner(
                    problem.matrix,
                    problem.mesh,
                    decomposition,
                    self.model,
                    levels=cfg.levels,
                    batch_size=cfg.gnn_batch_size,
                    global_dirichlet_mask=getattr(problem, "dirichlet_mask", None),
                    node_diffusion=getattr(problem, "node_diffusion", None),
                    equilibrate=cfg.gnn_equilibrate,
                )
            elif cfg.preconditioner == "ddm-lu":
                preconditioner = AdditiveSchwarzPreconditioner(
                    problem.matrix, decomposition, levels=cfg.levels
                )
            else:
                preconditioner = AdditiveSchwarzPreconditioner(
                    problem.matrix,
                    decomposition,
                    levels=cfg.levels,
                    local_solver=JacobiLocalSolver(sweeps=cfg.jacobi_sweeps),
                )
        elif cfg.preconditioner == "ic0":
            preconditioner = IncompleteCholeskyPreconditioner(problem.matrix)
        elif cfg.preconditioner == "none":
            preconditioner = IdentityPreconditioner(problem.num_dofs)
        else:
            raise ValueError(f"unknown preconditioner kind '{cfg.preconditioner}'")
        self.setup_time = time.perf_counter() - start
        self.last_preconditioner = preconditioner
        return preconditioner

    # ------------------------------------------------------------------ #
    def solve(self, problem: Problem, initial_guess: Optional[np.ndarray] = None) -> SolveResult:
        """Run the full pipeline on a problem and return the PCG result.

        The result's ``info`` dict carries the decomposition statistics and the
        preconditioner timing counters used by the benchmark harnesses.
        """
        cfg = self.config
        preconditioner = self.build_preconditioner(problem)
        result = preconditioned_conjugate_gradient(
            problem.matrix,
            problem.rhs,
            preconditioner=None if cfg.preconditioner == "none" else preconditioner,
            initial_guess=initial_guess,
            tolerance=cfg.tolerance,
            max_iterations=cfg.max_iterations,
        )
        result.info["preconditioner_kind"] = cfg.preconditioner
        result.info["setup_time"] = self.setup_time
        if self.last_decomposition is not None and cfg.preconditioner.startswith("ddm"):
            result.info["num_subdomains"] = self.last_decomposition.num_subdomains
            result.info["subdomain_sizes"] = self.last_decomposition.sizes().tolist()
            result.info["overlap"] = cfg.overlap
        if isinstance(preconditioner, DDMGNNPreconditioner):
            result.info["gnn_stats"] = preconditioner.inference_stats()
        return result
