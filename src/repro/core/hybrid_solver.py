"""Backwards-compatible one-shot facade over :mod:`repro.solvers` sessions.

.. deprecated::
    :class:`HybridSolver` predates the setup/solve-split API and rebuilds all
    setup on **every** ``solve`` call.  New code should use
    :func:`repro.solvers.prepare` and keep the returned
    :class:`~repro.solvers.session.SolverSession` around, so the expensive
    work (partitioning, sub-domain factorisations, DSS inference-plan
    compilation) is paid once and amortised over many right-hand sides::

        # old (rebuilds everything per call)
        result = HybridSolver(config, model=model).solve(problem)

        # new (setup once, serve many RHS)
        session = prepare(problem, config, model=model)
        result = session.solve()
        batch = session.solve_many(B)

:class:`HybridSolverConfig` is an alias of
:class:`~repro.solvers.config.SolverConfig`, so existing construction sites
keep working unchanged — including the new ``krylov="gmres"``/``"bicgstab"``
selection, which the facade forwards to the session.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..ddm.asm import Preconditioner
from ..fem.problem import Problem
from ..gnn.dss import DSS
from ..krylov.result import SolveResult
from ..partition.overlap import OverlappingDecomposition
from ..solvers.config import SolverConfig
from ..solvers.preconditioners import build_decomposition
from ..solvers.registry import preconditioner_spec
from ..solvers.session import SolverSession, prepare

__all__ = ["HybridSolverConfig", "HybridSolver", "PreconditionerKind"]

#: kept for backwards compatibility; the registry is the source of truth now
PreconditionerKind = str

#: the config class moved to ``repro.solvers``; this alias keeps old imports alive
HybridSolverConfig = SolverConfig


class HybridSolver:
    """One-shot solve facade: ``prepare`` + ``solve`` in a single call.

    Thin shim over :class:`~repro.solvers.session.SolverSession`; see the
    module docstring for the migration path.  Each :meth:`solve` call
    prepares a fresh session (the historical behaviour); callers that solve
    the same operator repeatedly should hold a session instead.
    """

    def __init__(self, config: Optional[SolverConfig] = None, model: Optional[DSS] = None) -> None:
        config = config if config is not None else SolverConfig()
        # fail fast (as the facade always did) when the preconditioner needs a
        # model and neither a model nor a checkpoint to load one is given
        spec = preconditioner_spec(config.preconditioner)
        if spec.needs_model and model is None and not config.checkpoint:
            raise ValueError("the DDM-GNN preconditioner requires a DSS model")
        self.config = config
        self.model = model
        self.setup_time = 0.0
        self.last_session: Optional[SolverSession] = None
        self.last_preconditioner: Optional[Preconditioner] = None
        self.last_decomposition: Optional[OverlappingDecomposition] = None

    @classmethod
    def from_checkpoint(
        cls, checkpoint_path: str, config: Optional[SolverConfig] = None
    ) -> "HybridSolver":
        """Build a DDM-GNN hybrid solver from a trained checkpoint file.

        The DSS architecture is reconstructed from the checkpoint's embedded
        :class:`~repro.gnn.dss.DSSConfig` (see :mod:`repro.gnn.checkpoint`),
        so no model code or hyper-parameters need to be repeated at the call
        site — the artifact is self-describing.
        """
        from ..gnn.checkpoint import load_model

        return cls(config if config is not None else SolverConfig(), model=load_model(checkpoint_path))

    # ------------------------------------------------------------------ #
    def prepare(self, problem: Problem) -> SolverSession:
        """Prepare a session for ``problem`` and record its setup counters."""
        session = prepare(problem, self.config, model=self.model)
        self.last_session = session
        self.setup_time = session.setup_time
        self.last_preconditioner = session.preconditioner
        self.last_decomposition = session.decomposition
        return session

    def _build_decomposition(self, problem: Problem) -> OverlappingDecomposition:
        return build_decomposition(problem, self.config)

    def build_preconditioner(self, problem: Problem) -> Preconditioner:
        """Construct (and cache) the preconditioner for a given problem."""
        return self.prepare(problem).preconditioner

    # ------------------------------------------------------------------ #
    def solve(self, problem: Problem, initial_guess: Optional[np.ndarray] = None) -> SolveResult:
        """Run the full pipeline on a problem and return the Krylov result.

        The result's ``info`` dict carries the decomposition statistics and the
        preconditioner timing counters used by the benchmark harnesses.
        """
        return self.prepare(problem).solve(x0=initial_guess)
