"""The DDM-GNN preconditioner — the paper's primary contribution (Sec. III-A).

DDM-GNN mirrors the two-level Additive Schwarz preconditioner but solves the
local sub-domain problems with a trained Deep Statistical Solver instead of a
sparse LU factorisation.  Applying it to a global residual ``r`` performs the
paper's three steps:

1. **Coarse problem** (Eq. 13): ``r_c = R_0ᵀ (R_0 A R_0ᵀ)⁻¹ R_0 r`` by LU.
2. **Local problems** (Eqs. 14–15): every local residual is *normalised*
   (``R_i r / ‖R_i r‖``) — this keeps the inputs inside the DSS training
   distribution even as PCG drives the residual to zero — and all K local
   problems are solved in a few batched DSS inferences.
3. **Gluing** (Eq. 16): ``z = r_c + Σ_i R_iᵀ ‖R_i r‖ ũ_i``.

The preconditioner is deliberately *not* exactly symmetric (the GNN is a
nonlinear map), but because each application is a fixed function of the
residual, PCG in practice behaves exactly as the paper reports: slightly more
iterations than DDM-LU, convergence to any tolerance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Literal, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..ddm.asm import Preconditioner
from ..ddm.coarse import NicolaidesCoarseSpace
from ..ddm.restriction import build_restrictions
from ..gnn.batch import GraphBatch
from ..gnn.dss import DSS
from ..mesh.mesh import TriangularMesh
from ..partition.overlap import OverlappingDecomposition
from .dataset import SubdomainGeometry, build_subdomain_geometries

__all__ = ["DDMGNNPreconditioner"]


class DDMGNNPreconditioner(Preconditioner):
    """Multi-level GNN preconditioner (DDM-GNN).

    Parameters
    ----------
    matrix:
        Global SPD system matrix A.
    mesh:
        The global mesh (needed for sub-mesh geometry fed to the GNN).
    decomposition:
        Overlapping decomposition into K sub-domains.
    model:
        A (trained) :class:`~repro.gnn.dss.DSS` model.
    levels:
        2 (default) adds the Nicolaides coarse correction; 1 disables it
        (one-level ablation).
    batch_size:
        Maximum number of sub-domain graphs solved per DSS inference call
        (the paper's Nb batching); all at once if None.
    normalize_local_residuals:
        The paper's residual normalisation.  Disabling it (ablation) shows the
        stagnation the paper describes in Sec. III-A.
    global_dirichlet_mask:
        Physical Dirichlet node mask of the problem (defaults to the whole
        mesh boundary; mixed-BC problems pass their own).
    node_diffusion:
        Per-node κ values of a heterogeneous problem; when given, the
        sub-domain graphs carry κ-aware node/edge features.
    equilibrate:
        Diagonal equilibration of the local solves (see
        :class:`~repro.core.dataset.SubdomainGeometry`); None (default)
        enables it exactly when ``node_diffusion`` is present.
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        mesh: TriangularMesh,
        decomposition: OverlappingDecomposition,
        model: DSS,
        levels: Literal[1, 2] = 2,
        batch_size: Optional[int] = None,
        normalize_local_residuals: bool = True,
        global_dirichlet_mask: Optional[np.ndarray] = None,
        node_diffusion: Optional[np.ndarray] = None,
        equilibrate: Optional[bool] = None,
    ) -> None:
        if levels not in (1, 2):
            raise ValueError("levels must be 1 or 2")
        self.matrix = matrix.tocsr()
        self.mesh = mesh
        self.decomposition = decomposition
        self.model = model
        self.levels = int(levels)
        self.batch_size = batch_size
        self.normalize_local_residuals = bool(normalize_local_residuals)

        n = self.matrix.shape[0]
        subdomains = decomposition.subdomain_nodes
        self.restrictions = build_restrictions(subdomains, n)
        self.geometries: List[SubdomainGeometry] = build_subdomain_geometries(
            mesh,
            self.matrix,
            decomposition,
            global_dirichlet_mask=global_dirichlet_mask,
            node_diffusion=node_diffusion,
            equilibrate=equilibrate,
        )
        self.coarse_space: Optional[NicolaidesCoarseSpace] = None
        if self.levels == 2:
            self.coarse_space = NicolaidesCoarseSpace(subdomains, n).factorize(self.matrix)

        # Pre-build the batched graph structures once; only the per-node source
        # changes between preconditioner applications.
        self._batches: List[GraphBatch] = []
        self._batch_membership: List[List[int]] = []
        k = len(self.geometries)
        chunk = self.batch_size if self.batch_size is not None else k
        chunk = max(1, int(chunk))
        for start in range(0, k, chunk):
            members = list(range(start, min(start + chunk, k)))
            graphs = [self.geometries[i].make_graph(np.zeros(len(self.geometries[i].positions))) for i in members]
            self._batches.append(GraphBatch.from_graphs(graphs))
            self._batch_membership.append(members)

        # bookkeeping for the performance tables
        self.num_applications = 0
        self.total_inference_time = 0.0
        self.total_coarse_time = 0.0

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        return self.matrix.shape

    @property
    def num_subdomains(self) -> int:
        return len(self.geometries)

    # ------------------------------------------------------------------ #
    def apply(self, residual: np.ndarray) -> np.ndarray:
        """Apply DDM-GNN to a global residual and return the correction z."""
        residual = np.asarray(residual, dtype=np.float64)
        correction = np.zeros_like(residual)
        self.num_applications += 1

        # 1. coarse correction (exact, LU)
        if self.coarse_space is not None:
            t0 = time.perf_counter()
            correction += self.coarse_space.apply(residual)
            self.total_coarse_time += time.perf_counter() - t0

        # 2. + 3. batched local GNN solves, rescaled and glued back
        t0 = time.perf_counter()
        local_residuals: List[np.ndarray] = [r_i @ residual for r_i in self.restrictions]
        # equilibrated residuals and their norms (identity transform when κ ≡ 1)
        sources_and_norms = [
            self.geometries[i].source_from_residual(lr) for i, lr in enumerate(local_residuals)
        ]
        norms = np.array([norm for _, norm in sources_and_norms])

        for batch, members in zip(self._batches, self._batch_membership):
            # refresh the node inputs of the pre-built batch in place
            sources = []
            for i in members:
                normalised, norm = sources_and_norms[i]
                if self.normalize_local_residuals and norm > 0.0:
                    sources.append(normalised)
                else:
                    sources.append(normalised * norm)  # undo the normalisation (ablation)
            batch.source = np.concatenate(sources)
            predictions = self.model.predict(batch)
            per_graph = batch.split_node_values(predictions)
            for i, local_solution in zip(members, per_graph):
                scale = norms[i] if (self.normalize_local_residuals and norms[i] > 0.0) else 1.0
                if norms[i] == 0.0:
                    continue
                correction += self.restrictions[i].T @ self.geometries[i].solution_from_output(
                    local_solution, scale
                )
        self.total_inference_time += time.perf_counter() - t0
        return correction

    # ------------------------------------------------------------------ #
    def inference_stats(self) -> dict:
        """Timing counters accumulated over all applications (Table III columns)."""
        return {
            "applications": self.num_applications,
            "total_inference_time": self.total_inference_time,
            "total_coarse_time": self.total_coarse_time,
            "mean_inference_time": self.total_inference_time / max(self.num_applications, 1),
        }
