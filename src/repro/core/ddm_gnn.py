"""The DDM-GNN preconditioner — the paper's primary contribution (Sec. III-A).

DDM-GNN mirrors the two-level Additive Schwarz preconditioner but solves the
local sub-domain problems with a trained Deep Statistical Solver instead of a
sparse LU factorisation.  Applying it to a global residual ``r`` performs the
paper's three steps:

1. **Coarse problem** (Eq. 13): ``r_c = R_0ᵀ (R_0 A R_0ᵀ)⁻¹ R_0 r`` by LU.
2. **Local problems** (Eqs. 14–15): every local residual is *normalised*
   (``R_i r / ‖R_i r‖``) — this keeps the inputs inside the DSS training
   distribution even as PCG drives the residual to zero — and all K local
   problems are solved in a few batched DSS inferences.
3. **Gluing** (Eq. 16): ``z = r_c + Σ_i R_iᵀ ‖R_i r‖ ũ_i``.

The preconditioner is deliberately *not* exactly symmetric (the GNN is a
nonlinear map), but because each application is a fixed function of the
residual, PCG in practice behaves exactly as the paper reports: slightly more
iterations than DDM-LU, convergence to any tolerance.

Everything that is invariant across a Krylov solve is compiled once at
construction: the stacked restriction operator ``R = [R_1; …; R_K]``, the
per-batch :class:`~repro.gnn.infer.InferencePlan` of the DSS model, and the
stacked equilibration/normalisation vectors.  Each ``apply`` is then
loop-free — one gather, segmented norms via ``reduceat``, a few ``infer``
calls on preallocated plans, and one gluing SpMV.  Duck-typed models that
only provide ``predict`` (the test doubles, custom local solvers) fall back
to the classical batched path, which is also kept available as
:meth:`apply_reference` so benchmarks can measure the fast-path speedup
against the original implementation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Literal, Optional

import numpy as np
import scipy.sparse as sp

from ..ddm.asm import Preconditioner
from ..ddm.coarse import NicolaidesCoarseSpace
from ..ddm.restriction import StackedRestriction, build_restrictions
from ..gnn.batch import GraphBatch
from ..gnn.dss import DSS
from ..mesh.mesh import TriangularMesh
from ..partition.overlap import OverlappingDecomposition
from .dataset import SubdomainGeometry, build_subdomain_geometries

__all__ = ["DDMGNNPreconditioner"]

#: stacked-node budget per automatic inference batch (``batch_size=None``)
_AUTO_BATCH_TARGET_NODES = 2048


class DDMGNNPreconditioner(Preconditioner):
    """Multi-level GNN preconditioner (DDM-GNN).

    Parameters
    ----------
    matrix:
        Global SPD system matrix A.
    mesh:
        The global mesh (needed for sub-mesh geometry fed to the GNN).
    decomposition:
        Overlapping decomposition into K sub-domains.
    model:
        A (trained) :class:`~repro.gnn.dss.DSS` model.  Duck-typed objects
        exposing only ``predict(batch)`` are accepted and served by the
        classical batched path.
    levels:
        2 (default) adds the Nicolaides coarse correction; 1 disables it
        (one-level ablation).
    batch_size:
        Maximum number of sub-domain graphs solved per DSS inference call
        (the paper's Nb batching).  None (default) picks a chunk size that
        keeps each batch's edge buffers cache-resident (~2k stacked nodes
        per inference), which measures faster than one monolithic batch on
        large decompositions; results are batching-invariant either way.
    normalize_local_residuals:
        The paper's residual normalisation.  Disabling it (ablation) shows the
        stagnation the paper describes in Sec. III-A.
    global_dirichlet_mask:
        Physical Dirichlet node mask of the problem (defaults to the whole
        mesh boundary; mixed-BC problems pass their own).
    node_diffusion:
        Per-node κ values of a heterogeneous problem; when given, the
        sub-domain graphs carry κ-aware node/edge features.
    equilibrate:
        Diagonal equilibration of the local solves (see
        :class:`~repro.core.dataset.SubdomainGeometry`); None (default)
        enables it exactly when ``node_diffusion`` is present.
    precision:
        Staging precision of the compiled DSS inference plans: ``"f64"``
        (default) or ``"f32"``.  In float32 mode the residual normalisation,
        scaling and gluing stay in float64 — only the network forward runs in
        float32, with casts at the source/output boundary — so the
        preconditioner remains a fixed (SPD-consistent) function of the
        residual and PCG converges with a small, gated iteration drift.
        Requires the compiled fast path (a real DSS model).
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        mesh: TriangularMesh,
        decomposition: OverlappingDecomposition,
        model: DSS,
        levels: Literal[1, 2] = 2,
        batch_size: Optional[int] = None,
        normalize_local_residuals: bool = True,
        global_dirichlet_mask: Optional[np.ndarray] = None,
        node_diffusion: Optional[np.ndarray] = None,
        equilibrate: Optional[bool] = None,
        precision: str = "f64",
    ) -> None:
        if levels not in (1, 2):
            raise ValueError("levels must be 1 or 2")
        if precision not in ("f64", "f32"):
            raise ValueError(f"precision must be 'f64' or 'f32', got {precision!r}")
        self.matrix = matrix.tocsr()
        self.mesh = mesh
        self.decomposition = decomposition
        self.model = model
        self.levels = int(levels)
        self.batch_size = batch_size
        self.normalize_local_residuals = bool(normalize_local_residuals)
        self.precision = precision

        n = self.matrix.shape[0]
        subdomains = decomposition.subdomain_nodes
        self.restrictions = build_restrictions(subdomains, n)
        self.stacked_restriction = StackedRestriction(subdomains, n)
        self.geometries: List[SubdomainGeometry] = build_subdomain_geometries(
            mesh,
            self.matrix,
            decomposition,
            global_dirichlet_mask=global_dirichlet_mask,
            node_diffusion=node_diffusion,
            equilibrate=equilibrate,
        )
        self.coarse_space: Optional[NicolaidesCoarseSpace] = None
        if self.levels == 2:
            self.coarse_space = NicolaidesCoarseSpace(subdomains, n).factorize(self.matrix)

        # Pre-build the batched graph structures once; only the per-node source
        # changes between preconditioner applications.  Feature widths are
        # scanned once over the geometries instead of once per batch.
        k = len(self.geometries)
        edge_dim, node_dim = GraphBatch.feature_dims(self.geometries)
        self._batches: List[GraphBatch] = []
        self._batch_membership: List[List[int]] = []
        if self.batch_size is not None:
            chunk = self.batch_size
        else:
            # automatic Nb: target ~2k stacked nodes per inference call so the
            # engine's edge buffers stay cache-resident
            average_size = max(1, self.stacked_restriction.total_rows // k)
            chunk = max(1, _AUTO_BATCH_TARGET_NODES // average_size)
        chunk = max(1, int(chunk))
        for start in range(0, k, chunk):
            members = list(range(start, min(start + chunk, k)))
            graphs = [self.geometries[i].make_graph(np.zeros(len(self.geometries[i].positions))) for i in members]
            self._batches.append(
                GraphBatch.from_graphs(graphs, edge_attr_dim=edge_dim, node_attr_dim=node_dim)
            )
            self._batch_membership.append(members)

        # Compile the inference fast path when the model supports it (a real
        # DSS); duck-typed `predict`-only models use the batched path.
        if hasattr(model, "compile_plan") and hasattr(model, "infer"):
            if self.precision == "f64":
                self._plans = [model.compile_plan(batch) for batch in self._batches]
            else:
                self._plans = [
                    model.compile_plan(batch, precision=self.precision)
                    for batch in self._batches
                ]
        else:
            if self.precision != "f64":
                raise ValueError(
                    "precision='f32' requires the compiled inference fast path "
                    "(a model with compile_plan/infer); duck-typed predict-only "
                    "models run the float64 batched path"
                )
            self._plans = None

        # Stacked residual-independent vectors and per-application scratch:
        # segment layout follows the stacked restriction (sub-domain order).
        total = self.stacked_restriction.total_rows
        if any(g.equilibration is not None for g in self.geometries):
            self._equilibration: Optional[np.ndarray] = np.concatenate([
                g.equilibration if g.equilibration is not None else np.ones(len(g.positions))
                for g in self.geometries
            ])
        else:
            self._equilibration = None
        self._segment_ids = self.stacked_restriction.segment_ids
        self._offsets = self.stacked_restriction.offsets
        self._local = np.empty(total)       # stacked (equilibrated) local residuals
        self._squares = np.empty(total)
        self._source = np.empty(total)      # stacked normalised DSS inputs
        self._outputs = np.empty(total)     # stacked DSS outputs
        self._per_row = np.empty(total)     # per-row norm/scale expansion
        k = len(self.geometries)
        self._norms = np.empty(k)
        self._denominators = np.empty(k)
        self._scales = np.empty(k)

        # multi-column scratch, cached per column count (lockstep active sets
        # shrink as right-hand sides converge, so a few k values recur)
        self._column_scratch: Dict[int, Dict[str, np.ndarray]] = {}

        # bookkeeping for the performance tables
        self.num_applications = 0
        self.num_fused_applications = 0
        self.total_inference_time = 0.0
        self.total_coarse_time = 0.0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_checkpoint(
        cls,
        matrix: sp.spmatrix,
        mesh: TriangularMesh,
        decomposition: OverlappingDecomposition,
        checkpoint_path: str,
        **kwargs,
    ) -> "DDMGNNPreconditioner":
        """Build the preconditioner around a model loaded from a checkpoint.

        The checkpoint (see :mod:`repro.gnn.checkpoint`) carries the full
        :class:`~repro.gnn.dss.DSSConfig`, so the DSS is reconstructed
        exactly as trained; remaining keyword arguments are forwarded to the
        constructor unchanged.
        """
        from ..gnn.checkpoint import load_model

        return cls(matrix, mesh, decomposition, load_model(checkpoint_path), **kwargs)

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        return self.matrix.shape

    @property
    def num_subdomains(self) -> int:
        return len(self.geometries)

    # ------------------------------------------------------------------ #
    def apply(self, residual: np.ndarray) -> np.ndarray:
        """Apply DDM-GNN to a global residual and return the correction z."""
        residual = np.asarray(residual, dtype=np.float64)
        correction = np.zeros_like(residual)
        self.num_applications += 1

        # 1. coarse correction (exact, LU)
        if self.coarse_space is not None:
            t0 = time.perf_counter()
            correction += self.coarse_space.apply(residual)
            self.total_coarse_time += time.perf_counter() - t0

        # 2. + 3. batched local GNN solves, rescaled and glued back
        t0 = time.perf_counter()
        if self._plans is not None:
            correction += self._local_correction_fast(residual)
        else:
            correction += self._local_correction_batched(residual)
        self.total_inference_time += time.perf_counter() - t0
        return correction

    def apply_columns(self, residuals: np.ndarray) -> np.ndarray:
        """Apply DDM-GNN to all ``k`` columns of an ``(n, k)`` residual block.

        One fused sweep serves every column: a single gather/normalisation
        pass over the ``(total, k)`` stacked residuals, **one** DSS forward
        per inference batch (``infer_columns``, k-wide SpMMs and gathers with
        per-column GEMMs) and one gluing SpMM.  Column ``i`` of the result is
        bit-identical to ``apply(residuals[:, i])`` — the contract
        :func:`repro.krylov.block.lockstep_pcg` relies on — because every
        fused kernel accumulates each column in exactly the single-column
        order.  This is what stops lockstep CG from serializing on the GNN.
        """
        residuals = np.asarray(residuals, dtype=np.float64)
        if residuals.ndim != 2:
            raise ValueError(f"apply_columns expects an (n, k) block, got shape {residuals.shape}")
        if self._plans is None or not hasattr(self.model, "infer_columns"):
            # batched / duck-typed path: the trivially-correct per-column loop
            return super().apply_columns(residuals)
        k = residuals.shape[1]
        correction = np.zeros(residuals.shape)
        self.num_applications += k
        self.num_fused_applications += 1

        if self.coarse_space is not None:
            t0 = time.perf_counter()
            correction += self.coarse_space.apply_columns(residuals)
            self.total_coarse_time += time.perf_counter() - t0

        t0 = time.perf_counter()
        correction += self._local_correction_fast_columns(residuals)
        self.total_inference_time += time.perf_counter() - t0
        return np.asfortranarray(correction)

    def apply_reference(self, residual: np.ndarray) -> np.ndarray:
        """The pre-fast-path implementation (per-sub-domain loops, tape forward).

        Kept verbatim so benchmarks can measure the fast-path speedup and the
        regression tests can pin the two paths against each other.  Does not
        update the timing counters.
        """
        residual = np.asarray(residual, dtype=np.float64)
        correction = np.zeros_like(residual)
        if self.coarse_space is not None:
            correction += self.coarse_space.apply(residual)
        correction += self._local_correction_batched(residual)
        return correction

    # ------------------------------------------------------------------ #
    def _local_correction_fast(self, residual: np.ndarray) -> np.ndarray:
        """Loop-free local corrections: gather → normalise → infer → glue.

        Works entirely on stacked vectors in preallocated buffers; the only
        allocations are the glued result and whatever the SpMV produces.
        """
        stacked = self.stacked_restriction.extract(residual, out=self._local)
        if self._equilibration is not None:
            np.multiply(stacked, self._equilibration, out=stacked)

        # ‖R_i r‖ for every sub-domain, one reduceat over the stacked squares
        self.stacked_restriction.segment_norms(stacked, out=self._norms, squares=self._squares)

        # normalised sources (zero-norm segments are zero vectors already)
        np.copyto(self._denominators, self._norms)
        self._denominators[self._denominators == 0.0] = 1.0
        np.take(self._denominators, self._segment_ids, out=self._per_row)
        np.divide(stacked, self._per_row, out=self._source)
        if not self.normalize_local_residuals:
            # ablation: undo the normalisation, feed raw (equilibrated) residuals
            np.take(self._norms, self._segment_ids, out=self._per_row)
            np.multiply(self._source, self._per_row, out=self._source)

        # all local problems in a few allocation-free DSS inferences
        for plan, members in zip(self._plans, self._batch_membership):
            lo = self._offsets[members[0]]
            hi = self._offsets[members[-1] + 1]
            self._outputs[lo:hi] = self.model.infer(plan, source=self._source[lo:hi])

        # rescale by ‖R_i r‖ (zero-norm segments contribute nothing), undo the
        # equilibration, and glue all extensions with one SpMV
        if self.normalize_local_residuals:
            np.copyto(self._scales, self._norms)
        else:
            np.sign(self._norms, out=self._scales)  # 1 where ‖R_i r‖ > 0, else 0
        np.take(self._scales, self._segment_ids, out=self._per_row)
        np.multiply(self._outputs, self._per_row, out=self._outputs)
        if self._equilibration is not None:
            np.multiply(self._outputs, self._equilibration, out=self._outputs)
        return self.stacked_restriction.glue(self._outputs)

    def _columns_scratch(self, k: int) -> Dict[str, np.ndarray]:
        """Preallocated ``(total, k)`` / ``(K, k)`` buffers for ``k`` columns."""
        scratch = self._column_scratch.get(k)
        if scratch is None:
            total = self.stacked_restriction.total_rows
            num_subdomains = len(self.geometries)
            scratch = {
                "local": np.empty((total, k)),
                "squares": np.empty((total, k)),
                "source": np.empty((total, k)),
                "outputs": np.empty((total, k)),
                "per_row": np.empty((total, k)),
                "norms": np.empty((num_subdomains, k)),
                "denominators": np.empty((num_subdomains, k)),
                "scales": np.empty((num_subdomains, k)),
            }
            self._column_scratch[k] = scratch
        return scratch

    def _local_correction_fast_columns(self, residuals: np.ndarray) -> np.ndarray:
        """Multi-column :meth:`_local_correction_fast`: one fused sweep for all k.

        Every step is the column-parallel form of the single-column op —
        row gathers, per-column ``reduceat`` norms, elementwise broadcasts,
        one ``infer_columns`` per inference batch, one gluing SpMM — and each
        accumulates per column in the single-column order, so column ``i`` is
        bit-identical to ``_local_correction_fast(residuals[:, i])``.
        """
        scratch = self._columns_scratch(residuals.shape[1])
        stacked = scratch["local"]
        np.take(residuals, self.stacked_restriction.node_indices, axis=0, out=stacked)
        if self._equilibration is not None:
            stacked *= self._equilibration[:, None]

        # ‖R_i r_j‖ for every sub-domain × column, one reduceat over the rows
        norms = scratch["norms"]
        np.multiply(stacked, stacked, out=scratch["squares"])
        np.add.reduceat(scratch["squares"], self._offsets[:-1], axis=0, out=norms)
        np.sqrt(norms, out=norms)

        denominators = scratch["denominators"]
        np.copyto(denominators, norms)
        denominators[denominators == 0.0] = 1.0
        np.take(denominators, self._segment_ids, axis=0, out=scratch["per_row"])
        np.divide(stacked, scratch["per_row"], out=scratch["source"])
        if not self.normalize_local_residuals:
            np.take(norms, self._segment_ids, axis=0, out=scratch["per_row"])
            np.multiply(scratch["source"], scratch["per_row"], out=scratch["source"])

        # all local problems × all columns: one fused forward per batch (the
        # f32 boundary lives inside infer_columns; outputs upcast on store)
        outputs = scratch["outputs"]
        for plan, members in zip(self._plans, self._batch_membership):
            lo = self._offsets[members[0]]
            hi = self._offsets[members[-1] + 1]
            outputs[lo:hi, :] = self.model.infer_columns(plan, scratch["source"][lo:hi, :])

        if self.normalize_local_residuals:
            np.copyto(scratch["scales"], norms)
        else:
            np.sign(norms, out=scratch["scales"])  # 1 where ‖R_i r_j‖ > 0, else 0
        np.take(scratch["scales"], self._segment_ids, axis=0, out=scratch["per_row"])
        np.multiply(outputs, scratch["per_row"], out=outputs)
        if self._equilibration is not None:
            outputs *= self._equilibration[:, None]
        return self.stacked_restriction.glue(outputs)

    def _local_correction_batched(self, residual: np.ndarray) -> np.ndarray:
        """Classical batched path (per-sub-domain loops through ``model.predict``)."""
        correction = np.zeros_like(residual)
        local_residuals: List[np.ndarray] = [r_i @ residual for r_i in self.restrictions]
        # equilibrated residuals and their norms (identity transform when κ ≡ 1)
        sources_and_norms = [
            self.geometries[i].source_from_residual(lr) for i, lr in enumerate(local_residuals)
        ]
        norms = np.array([norm for _, norm in sources_and_norms])

        for batch, members in zip(self._batches, self._batch_membership):
            # refresh the node inputs of the pre-built batch in place
            sources = []
            for i in members:
                normalised, norm = sources_and_norms[i]
                if self.normalize_local_residuals and norm > 0.0:
                    sources.append(normalised)
                else:
                    sources.append(normalised * norm)  # undo the normalisation (ablation)
            batch.source = np.concatenate(sources)
            predictions = self.model.predict(batch)
            per_graph = batch.split_node_values(predictions)
            for i, local_solution in zip(members, per_graph):
                scale = norms[i] if (self.normalize_local_residuals and norms[i] > 0.0) else 1.0
                if norms[i] == 0.0:
                    continue
                correction += self.restrictions[i].T @ self.geometries[i].solution_from_output(
                    local_solution, scale
                )
        return correction

    # ------------------------------------------------------------------ #
    def inference_stats(self) -> dict:
        """Timing counters accumulated over all applications (Table III columns)."""
        return {
            "applications": self.num_applications,
            "fused_applications": self.num_fused_applications,
            "total_inference_time": self.total_inference_time,
            "total_coarse_time": self.total_coarse_time,
            "mean_inference_time": self.total_inference_time / max(self.num_applications, 1),
        }
