"""Dataset generation for DSS training (paper Sec. IV-A).

The paper's training set is harvested from real solver runs: global Poisson
problems are solved with PCG preconditioned by the classical two-level ASM
(DDM-LU), and at *every* PCG iteration the local sub-problems seen by the
preconditioner — sub-domain matrix ``R_i A R_iᵀ`` and normalised local
residual ``R_i r / ‖R_i r‖`` — become training samples.  This gives the DSS
model exactly the input distribution it will face inside DDM-GNN.

This module provides:

* :func:`harvest_local_problems` — run one ASM-PCG solve and collect the local
  problems of every iteration;
* :func:`generate_dataset` — repeat over many random global problems and
  split into train/validation/test sets;
* :class:`LocalProblemDataset` — a thin container with save/load to ``.npz``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..ddm.asm import AdditiveSchwarzPreconditioner
from ..fem.problem import Problem
from ..gnn.graph import GraphProblem, graph_from_mesh
from ..krylov.cg import preconditioned_conjugate_gradient
from ..mesh.mesh import TriangularMesh
from ..mesh.shapes import random_domain_mesh
from ..partition.overlap import OverlappingDecomposition
from ..partition.partitioner import partition_mesh_target_size
from ..problems import make_problem

__all__ = ["SubdomainGeometry", "build_subdomain_geometries", "harvest_local_problems", "generate_dataset", "LocalProblemDataset"]


@dataclass
class SubdomainGeometry:
    """Static (residual-independent) data of one sub-domain.

    Built once per decomposition and reused for every residual vector: the
    sub-mesh geometry and edge structure, the local operator, and the local
    Dirichlet mask (global physical boundary nodes that fall inside the
    sub-domain).

    For heterogeneous problems the local operator is symmetrically
    **equilibrated**: with ``S = diag(A_i)^(-1/2)`` the GNN sees
    ``Ã_i = S A_i S`` and sources ``S R_i r`` (then normalised), and its
    output is mapped back through ``S``.  Since
    ``R_iᵀ S Ã_i⁻¹ S R_i = R_iᵀ A_i⁻¹ R_i``, an exact local solver yields
    exactly the classical ASM correction — the transformation only changes
    what the *learned* solver sees, pulling κ-contrast out of the matrix
    entries and back into the κ features, so local problems stay inside the
    training distribution regardless of the contrast ratio.
    """

    nodes: np.ndarray                 # global indices of the sub-domain nodes
    positions: np.ndarray             # (k_i, 2) coordinates
    edge_index: np.ndarray            # (2, E_i) directed edges (local indexing)
    edge_attr: np.ndarray             # (E_i, 3) geometric, (E_i, 4) κ-aware
    dirichlet_mask: np.ndarray        # (k_i,) bool
    matrix: sp.csr_matrix             # R_i A R_iᵀ (raw, un-equilibrated)
    node_attr: Optional[np.ndarray] = None  # (k_i, 1) log κ for heterogeneous problems
    equilibration: Optional[np.ndarray] = None  # s = diag(A_i)^(-1/2), None = identity
    graph_matrix: sp.csr_matrix = None         # matrix attached to graphs (Ã_i or A_i)

    def __post_init__(self) -> None:
        if self.graph_matrix is None:
            if self.equilibration is not None:
                s = sp.diags(self.equilibration)
                self.graph_matrix = (s @ self.matrix @ s).tocsr()
            else:
                self.graph_matrix = self.matrix

    def make_graph(self, source: np.ndarray, scaling: float = 1.0) -> GraphProblem:
        """Instantiate a :class:`GraphProblem` for a given (normalised) source."""
        return GraphProblem(
            positions=self.positions,
            edge_index=self.edge_index,
            edge_attr=self.edge_attr,
            source=source,
            dirichlet_mask=self.dirichlet_mask,
            matrix=self.graph_matrix,
            scaling=scaling,
            node_attr=self.node_attr,
        )

    # ------------------------------------------------------------------ #
    # residual ↔ GNN-variable transformations
    # ------------------------------------------------------------------ #
    def source_from_residual(self, local_residual: np.ndarray) -> Tuple[np.ndarray, float]:
        """Map a raw local residual ``R_i r`` to ``(normalised source, norm)``."""
        z = local_residual if self.equilibration is None else self.equilibration * local_residual
        norm = float(np.linalg.norm(z))
        if norm > 0.0:
            return z / norm, norm
        return z, norm

    def solution_from_output(self, output: np.ndarray, scaling: float = 1.0) -> np.ndarray:
        """Map a GNN output back to the local solution (undo the equilibration)."""
        u = scaling * output
        return u if self.equilibration is None else self.equilibration * u


def build_subdomain_geometries(
    mesh: TriangularMesh,
    matrix: sp.spmatrix,
    decomposition: OverlappingDecomposition,
    global_dirichlet_mask: Optional[np.ndarray] = None,
    node_diffusion: Optional[np.ndarray] = None,
    equilibrate: Optional[bool] = None,
) -> List[SubdomainGeometry]:
    """Precompute the static per-sub-domain data used by dataset generation and DDM-GNN.

    ``global_dirichlet_mask`` marks the physical Dirichlet nodes (defaults to
    the whole mesh boundary — correct for pure-Dirichlet problems; mixed-BC
    problems pass their own mask).  ``node_diffusion`` carries per-node κ for
    heterogeneous problems; it is sliced per sub-domain and turned into the
    κ-aware graph features by :func:`~repro.gnn.graph.graph_from_mesh`.

    ``equilibrate`` enables the symmetric diagonal scaling of the local
    operators (see :class:`SubdomainGeometry`); the default (None) turns it
    on exactly when a κ field is present, so the homogeneous pipeline
    reproduces the paper bit-for-bit while heterogeneous problems get local
    systems the DSS can handle at any contrast ratio.
    """
    csr = matrix.tocsr()
    if global_dirichlet_mask is None:
        global_dirichlet_mask = mesh.boundary_mask
    if equilibrate is None:
        equilibrate = node_diffusion is not None
    geometries: List[SubdomainGeometry] = []
    for nodes in decomposition.subdomain_nodes:
        nodes = np.asarray(nodes, dtype=np.int64)
        submesh, global_ids = mesh.submesh(nodes)
        # `submesh` node order follows sorted(global_ids); keep the matrix consistent
        local_matrix = csr[global_ids][:, global_ids].tocsr()
        local_dirichlet = global_dirichlet_mask[global_ids]
        template = graph_from_mesh(
            submesh,
            source=np.zeros(submesh.num_nodes),
            dirichlet_mask=local_dirichlet,
            matrix=local_matrix,
            diffusion=None if node_diffusion is None else node_diffusion[global_ids],
        )
        equilibration = None
        if equilibrate:
            diagonal = local_matrix.diagonal()
            if np.any(diagonal <= 0.0):
                raise ValueError("cannot equilibrate a local matrix with non-positive diagonal")
            equilibration = 1.0 / np.sqrt(diagonal)
        geometries.append(
            SubdomainGeometry(
                nodes=global_ids,
                positions=template.positions,
                edge_index=template.edge_index,
                edge_attr=template.edge_attr,
                dirichlet_mask=template.dirichlet_mask,
                matrix=local_matrix,
                node_attr=template.node_attr,
                equilibration=equilibration,
            )
        )
    return geometries


class _HarvestingPreconditioner(AdditiveSchwarzPreconditioner):
    """Two-level ASM that records the normalised local problems of every application."""

    def __init__(self, *args, geometries: Sequence[SubdomainGeometry], **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._geometries = list(geometries)
        self.harvested: List[GraphProblem] = []

    def apply(self, residual: np.ndarray) -> np.ndarray:
        stacked = self.stacked_restriction.extract(np.asarray(residual, dtype=np.float64))
        for geometry, local in zip(self._geometries, self.stacked_restriction.split(stacked)):
            source, norm = geometry.source_from_residual(local)
            if norm <= 0.0:
                continue
            self.harvested.append(geometry.make_graph(source, scaling=norm))
        return super().apply(residual)


def harvest_local_problems(
    problem: Problem,
    subdomain_size: int = 1000,
    overlap: int = 2,
    tolerance: float = 1e-6,
    rng: Optional[np.random.Generator] = None,
    max_iterations: Optional[int] = None,
) -> List[GraphProblem]:
    """Solve one global problem with ASM-PCG and return all harvested local problems.

    Works for any registered :class:`~repro.fem.problem.Problem`: the actual
    Dirichlet node set and the per-node κ field (when present) are threaded
    into the harvested graphs, so heterogeneous training samples carry the
    κ-aware features the DDM-GNN preconditioner will see at solve time.
    """
    rng = rng if rng is not None else np.random.default_rng()
    partition = partition_mesh_target_size(problem.mesh, subdomain_size, rng=rng)
    decomposition = OverlappingDecomposition(problem.mesh, partition, overlap=overlap)
    geometries = build_subdomain_geometries(
        problem.mesh,
        problem.matrix,
        decomposition,
        global_dirichlet_mask=getattr(problem, "dirichlet_mask", None),
        node_diffusion=getattr(problem, "node_diffusion", None),
    )
    preconditioner = _HarvestingPreconditioner(
        problem.matrix, decomposition, levels=2, geometries=geometries
    )
    preconditioned_conjugate_gradient(
        problem.matrix,
        problem.rhs,
        preconditioner=preconditioner,
        tolerance=tolerance,
        max_iterations=max_iterations,
    )
    return preconditioner.harvested


@dataclass
class LocalProblemDataset:
    """Train/validation/test split of harvested local problems."""

    train: List[GraphProblem] = field(default_factory=list)
    validation: List[GraphProblem] = field(default_factory=list)
    test: List[GraphProblem] = field(default_factory=list)

    @property
    def sizes(self) -> Tuple[int, int, int]:
        return (len(self.train), len(self.validation), len(self.test))

    def save(self, path: str) -> None:
        """Serialise the dataset to a compressed ``.npz`` archive."""
        payload = {}
        for split_name in ("train", "validation", "test"):
            problems: List[GraphProblem] = getattr(self, split_name)
            payload[f"{split_name}_count"] = np.array(len(problems))
            for i, g in enumerate(problems):
                prefix = f"{split_name}_{i}"
                payload[f"{prefix}_positions"] = g.positions
                payload[f"{prefix}_edge_index"] = g.edge_index
                payload[f"{prefix}_edge_attr"] = g.edge_attr
                payload[f"{prefix}_source"] = g.source
                payload[f"{prefix}_dirichlet"] = g.dirichlet_mask
                payload[f"{prefix}_scaling"] = np.array(g.scaling)
                if g.node_attr is not None:
                    payload[f"{prefix}_node_attr"] = g.node_attr
                if g.matrix is not None:
                    coo = g.matrix.tocoo()
                    payload[f"{prefix}_mat_row"] = coo.row
                    payload[f"{prefix}_mat_col"] = coo.col
                    payload[f"{prefix}_mat_data"] = coo.data
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path: str) -> "LocalProblemDataset":
        """Load a dataset written by :meth:`save`."""
        dataset = cls()
        with np.load(path) as data:
            for split_name in ("train", "validation", "test"):
                count = int(data[f"{split_name}_count"])
                problems: List[GraphProblem] = []
                for i in range(count):
                    prefix = f"{split_name}_{i}"
                    n = data[f"{prefix}_positions"].shape[0]
                    matrix = None
                    if f"{prefix}_mat_row" in data.files:
                        matrix = sp.csr_matrix(
                            (data[f"{prefix}_mat_data"], (data[f"{prefix}_mat_row"], data[f"{prefix}_mat_col"])),
                            shape=(n, n),
                        )
                    problems.append(
                        GraphProblem(
                            positions=data[f"{prefix}_positions"],
                            edge_index=data[f"{prefix}_edge_index"],
                            edge_attr=data[f"{prefix}_edge_attr"],
                            source=data[f"{prefix}_source"],
                            dirichlet_mask=data[f"{prefix}_dirichlet"],
                            matrix=matrix,
                            scaling=float(data[f"{prefix}_scaling"]),
                            node_attr=data[f"{prefix}_node_attr"] if f"{prefix}_node_attr" in data.files else None,
                        )
                    )
                setattr(dataset, split_name, problems)
        return dataset


def generate_dataset(
    num_global_problems: int = 500,
    mesh_element_size: float = 0.05,
    mesh_radius: float = 1.0,
    subdomain_size: int = 1000,
    overlap: int = 2,
    tolerance: float = 1e-6,
    split: Tuple[float, float, float] = (0.6, 0.2, 0.2),
    rng: Optional[np.random.Generator] = None,
    max_pcg_iterations: Optional[int] = None,
    problem_family: str = "poisson",
    problem_kwargs: Optional[dict] = None,
) -> LocalProblemDataset:
    """Generate a full training dataset following the paper's recipe.

    The paper solves 500 global problems on meshes of 6k–8k nodes with 1000-node
    sub-domains, which yields ~117k samples split 60/20/20.  The defaults here
    keep the same structure; tests and offline runs pass smaller numbers.

    ``problem_family`` selects any registered problem family (see
    :func:`repro.problems.make_problem`) — e.g.
    ``problem_family="diffusion-checkerboard", problem_kwargs={"contrast": 1e4}``
    harvests heterogeneous local problems whose graphs carry κ-aware features.
    """
    rng = rng if rng is not None else np.random.default_rng()
    if abs(sum(split) - 1.0) > 1e-9:
        raise ValueError("split fractions must sum to 1")
    problem_kwargs = dict(problem_kwargs or {})
    samples: List[GraphProblem] = []
    for _ in range(num_global_problems):
        mesh = random_domain_mesh(radius=mesh_radius, element_size=mesh_element_size, rng=rng)
        problem = make_problem(problem_family, mesh=mesh, rng=rng, **problem_kwargs)
        samples.extend(
            harvest_local_problems(
                problem,
                subdomain_size=subdomain_size,
                overlap=overlap,
                tolerance=tolerance,
                rng=rng,
                max_iterations=max_pcg_iterations,
            )
        )
    order = rng.permutation(len(samples))
    n_train = int(split[0] * len(samples))
    n_val = int(split[1] * len(samples))
    train_idx = order[:n_train]
    val_idx = order[n_train:n_train + n_val]
    test_idx = order[n_train + n_val:]
    return LocalProblemDataset(
        train=[samples[i] for i in train_idx],
        validation=[samples[i] for i in val_idx],
        test=[samples[i] for i in test_idx],
    )
