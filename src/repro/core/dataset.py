"""Dataset generation for DSS training (paper Sec. IV-A).

The paper's training set is harvested from real solver runs: global Poisson
problems are solved with PCG preconditioned by the classical two-level ASM
(DDM-LU), and at *every* PCG iteration the local sub-problems seen by the
preconditioner — sub-domain matrix ``R_i A R_iᵀ`` and normalised local
residual ``R_i r / ‖R_i r‖`` — become training samples.  This gives the DSS
model exactly the input distribution it will face inside DDM-GNN.

This module provides:

* :func:`harvest_local_problems` — run one ASM-PCG solve and collect the local
  problems of every iteration;
* :func:`generate_dataset` — repeat over many random global problems and
  split into train/validation/test sets;
* :class:`LocalProblemDataset` — a thin container with save/load to ``.npz``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..ddm.asm import AdditiveSchwarzPreconditioner
from ..fem.poisson import PoissonProblem, random_poisson_problem
from ..gnn.graph import GraphProblem, graph_from_mesh
from ..krylov.cg import preconditioned_conjugate_gradient
from ..mesh.mesh import TriangularMesh
from ..mesh.shapes import random_domain_mesh
from ..partition.overlap import OverlappingDecomposition
from ..partition.partitioner import partition_mesh_target_size

__all__ = ["SubdomainGeometry", "build_subdomain_geometries", "harvest_local_problems", "generate_dataset", "LocalProblemDataset"]


@dataclass
class SubdomainGeometry:
    """Static (residual-independent) data of one sub-domain.

    Built once per decomposition and reused for every residual vector: the
    sub-mesh geometry and edge structure, the local operator, and the local
    Dirichlet mask (global physical boundary nodes that fall inside the
    sub-domain).
    """

    nodes: np.ndarray                 # global indices of the sub-domain nodes
    positions: np.ndarray             # (k_i, 2) coordinates
    edge_index: np.ndarray            # (2, E_i) directed edges (local indexing)
    edge_attr: np.ndarray             # (E_i, 3)
    dirichlet_mask: np.ndarray        # (k_i,) bool
    matrix: sp.csr_matrix             # R_i A R_iᵀ

    def make_graph(self, source: np.ndarray, scaling: float = 1.0) -> GraphProblem:
        """Instantiate a :class:`GraphProblem` for a given (normalised) source."""
        return GraphProblem(
            positions=self.positions,
            edge_index=self.edge_index,
            edge_attr=self.edge_attr,
            source=source,
            dirichlet_mask=self.dirichlet_mask,
            matrix=self.matrix,
            scaling=scaling,
        )


def build_subdomain_geometries(
    mesh: TriangularMesh,
    matrix: sp.spmatrix,
    decomposition: OverlappingDecomposition,
    global_dirichlet_mask: Optional[np.ndarray] = None,
) -> List[SubdomainGeometry]:
    """Precompute the static per-sub-domain data used by dataset generation and DDM-GNN."""
    csr = matrix.tocsr()
    if global_dirichlet_mask is None:
        global_dirichlet_mask = mesh.boundary_mask
    geometries: List[SubdomainGeometry] = []
    for nodes in decomposition.subdomain_nodes:
        nodes = np.asarray(nodes, dtype=np.int64)
        submesh, global_ids = mesh.submesh(nodes)
        # `submesh` node order follows sorted(global_ids); keep the matrix consistent
        local_matrix = csr[global_ids][:, global_ids].tocsr()
        local_dirichlet = global_dirichlet_mask[global_ids]
        template = graph_from_mesh(
            submesh,
            source=np.zeros(submesh.num_nodes),
            dirichlet_mask=local_dirichlet,
            matrix=local_matrix,
        )
        geometries.append(
            SubdomainGeometry(
                nodes=global_ids,
                positions=template.positions,
                edge_index=template.edge_index,
                edge_attr=template.edge_attr,
                dirichlet_mask=template.dirichlet_mask,
                matrix=local_matrix,
            )
        )
    return geometries


class _HarvestingPreconditioner(AdditiveSchwarzPreconditioner):
    """Two-level ASM that records the normalised local problems of every application."""

    def __init__(self, *args, geometries: Sequence[SubdomainGeometry], **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._geometries = list(geometries)
        self.harvested: List[GraphProblem] = []

    def apply(self, residual: np.ndarray) -> np.ndarray:
        for geometry, restriction in zip(self._geometries, self.restrictions):
            local_residual = restriction @ residual
            norm = float(np.linalg.norm(local_residual))
            if norm <= 0.0:
                continue
            self.harvested.append(geometry.make_graph(local_residual / norm, scaling=norm))
        return super().apply(residual)


def harvest_local_problems(
    problem: PoissonProblem,
    subdomain_size: int = 1000,
    overlap: int = 2,
    tolerance: float = 1e-6,
    rng: Optional[np.random.Generator] = None,
    max_iterations: Optional[int] = None,
) -> List[GraphProblem]:
    """Solve one global problem with ASM-PCG and return all harvested local problems."""
    rng = rng if rng is not None else np.random.default_rng()
    partition = partition_mesh_target_size(problem.mesh, subdomain_size, rng=rng)
    decomposition = OverlappingDecomposition(problem.mesh, partition, overlap=overlap)
    geometries = build_subdomain_geometries(problem.mesh, problem.matrix, decomposition)
    preconditioner = _HarvestingPreconditioner(
        problem.matrix, decomposition, levels=2, geometries=geometries
    )
    preconditioned_conjugate_gradient(
        problem.matrix,
        problem.rhs,
        preconditioner=preconditioner,
        tolerance=tolerance,
        max_iterations=max_iterations,
    )
    return preconditioner.harvested


@dataclass
class LocalProblemDataset:
    """Train/validation/test split of harvested local problems."""

    train: List[GraphProblem] = field(default_factory=list)
    validation: List[GraphProblem] = field(default_factory=list)
    test: List[GraphProblem] = field(default_factory=list)

    @property
    def sizes(self) -> Tuple[int, int, int]:
        return (len(self.train), len(self.validation), len(self.test))

    def save(self, path: str) -> None:
        """Serialise the dataset to a compressed ``.npz`` archive."""
        payload = {}
        for split_name in ("train", "validation", "test"):
            problems: List[GraphProblem] = getattr(self, split_name)
            payload[f"{split_name}_count"] = np.array(len(problems))
            for i, g in enumerate(problems):
                prefix = f"{split_name}_{i}"
                payload[f"{prefix}_positions"] = g.positions
                payload[f"{prefix}_edge_index"] = g.edge_index
                payload[f"{prefix}_edge_attr"] = g.edge_attr
                payload[f"{prefix}_source"] = g.source
                payload[f"{prefix}_dirichlet"] = g.dirichlet_mask
                payload[f"{prefix}_scaling"] = np.array(g.scaling)
                if g.matrix is not None:
                    coo = g.matrix.tocoo()
                    payload[f"{prefix}_mat_row"] = coo.row
                    payload[f"{prefix}_mat_col"] = coo.col
                    payload[f"{prefix}_mat_data"] = coo.data
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path: str) -> "LocalProblemDataset":
        """Load a dataset written by :meth:`save`."""
        dataset = cls()
        with np.load(path) as data:
            for split_name in ("train", "validation", "test"):
                count = int(data[f"{split_name}_count"])
                problems: List[GraphProblem] = []
                for i in range(count):
                    prefix = f"{split_name}_{i}"
                    n = data[f"{prefix}_positions"].shape[0]
                    matrix = None
                    if f"{prefix}_mat_row" in data.files:
                        matrix = sp.csr_matrix(
                            (data[f"{prefix}_mat_data"], (data[f"{prefix}_mat_row"], data[f"{prefix}_mat_col"])),
                            shape=(n, n),
                        )
                    problems.append(
                        GraphProblem(
                            positions=data[f"{prefix}_positions"],
                            edge_index=data[f"{prefix}_edge_index"],
                            edge_attr=data[f"{prefix}_edge_attr"],
                            source=data[f"{prefix}_source"],
                            dirichlet_mask=data[f"{prefix}_dirichlet"],
                            matrix=matrix,
                            scaling=float(data[f"{prefix}_scaling"]),
                        )
                    )
                setattr(dataset, split_name, problems)
        return dataset


def generate_dataset(
    num_global_problems: int = 500,
    mesh_element_size: float = 0.05,
    mesh_radius: float = 1.0,
    subdomain_size: int = 1000,
    overlap: int = 2,
    tolerance: float = 1e-6,
    split: Tuple[float, float, float] = (0.6, 0.2, 0.2),
    rng: Optional[np.random.Generator] = None,
    max_pcg_iterations: Optional[int] = None,
) -> LocalProblemDataset:
    """Generate a full training dataset following the paper's recipe.

    The paper solves 500 global problems on meshes of 6k–8k nodes with 1000-node
    sub-domains, which yields ~117k samples split 60/20/20.  The defaults here
    keep the same structure; tests and offline runs pass smaller numbers.
    """
    rng = rng if rng is not None else np.random.default_rng()
    if abs(sum(split) - 1.0) > 1e-9:
        raise ValueError("split fractions must sum to 1")
    samples: List[GraphProblem] = []
    for _ in range(num_global_problems):
        mesh = random_domain_mesh(radius=mesh_radius, element_size=mesh_element_size, rng=rng)
        problem = random_poisson_problem(mesh, rng=rng)
        samples.extend(
            harvest_local_problems(
                problem,
                subdomain_size=subdomain_size,
                overlap=overlap,
                tolerance=tolerance,
                rng=rng,
                max_iterations=max_pcg_iterations,
            )
        )
    order = rng.permutation(len(samples))
    n_train = int(split[0] * len(samples))
    n_val = int(split[1] * len(samples))
    train_idx = order[:n_train]
    val_idx = order[n_train:n_train + n_val]
    test_idx = order[n_train + n_val:]
    return LocalProblemDataset(
        train=[samples[i] for i in train_idx],
        validation=[samples[i] for i in val_idx],
        test=[samples[i] for i in test_idx],
    )
