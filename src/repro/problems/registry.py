"""Named problem registry: ``make_problem("diffusion-checkerboard", ...)``.

The registry decouples the solver stack from the PDE zoo: training-set
generation (:func:`repro.core.dataset.generate_dataset`), the benchmark
harnesses and the examples all request problems by name, and new families
plug in with a decorator — no call site changes.

A factory receives ``(mesh, rng, **kwargs)`` and returns a
:class:`~repro.fem.problem.Problem`.  Registering and building:

>>> import numpy as np
>>> from repro.mesh import structured_rectangle_mesh
>>> from repro.problems import available_problems, make_problem
>>> "diffusion-checkerboard" in available_problems()
True
>>> mesh = structured_rectangle_mesh(8, 8)
>>> problem = make_problem("diffusion-checkerboard", mesh=mesh,
...                        rng=np.random.default_rng(0), contrast=100.0)
>>> problem.num_dofs
81
>>> u = problem.solve_direct()
>>> bool(problem.relative_residual_norm(u) < 1e-10)
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..fem.problem import Problem
from ..mesh.mesh import TriangularMesh
from ..mesh.shapes import random_domain_mesh

__all__ = ["ProblemFactory", "ProblemSpec", "register_problem", "make_problem", "available_problems", "problem_spec"]

#: a factory builds a Problem from a mesh, an RNG and family-specific kwargs
ProblemFactory = Callable[..., Problem]


@dataclass(frozen=True)
class ProblemSpec:
    """Registry entry: the factory plus its human-readable description."""

    name: str
    factory: ProblemFactory
    description: str = ""
    default_kwargs: Dict[str, object] = field(default_factory=dict)


_REGISTRY: Dict[str, ProblemSpec] = {}


def register_problem(
    name: str,
    description: str = "",
    **default_kwargs,
) -> Callable[[ProblemFactory], ProblemFactory]:
    """Decorator registering a problem factory under ``name``.

    ``default_kwargs`` are merged under the caller's kwargs at build time, so
    a family can be registered several times with different presets (e.g.
    ``diffusion-checkerboard`` at contrast 100 and ``-extreme`` at 10⁴).

    >>> from repro.problems import registry
    >>> @registry.register_problem("doctest-demo", description="demo entry")
    ... def _demo(mesh, rng):
    ...     from repro.fem import random_poisson_problem
    ...     return random_poisson_problem(mesh, rng=rng)
    >>> "doctest-demo" in registry.available_problems()
    True
    >>> del registry._REGISTRY["doctest-demo"]   # keep the registry clean
    """

    def decorator(factory: ProblemFactory) -> ProblemFactory:
        if name in _REGISTRY:
            raise ValueError(f"problem family '{name}' is already registered")
        if description:
            summary = description
        else:
            doc = (factory.__doc__ or "").strip()
            summary = doc.splitlines()[0] if doc else ""
        _REGISTRY[name] = ProblemSpec(
            name=name,
            factory=factory,
            description=summary,
            default_kwargs=dict(default_kwargs),
        )
        return factory

    return decorator


def available_problems() -> List[str]:
    """Sorted names of every registered problem family.

    >>> "poisson" in available_problems()
    True
    """
    return sorted(_REGISTRY)


def problem_spec(name: str) -> ProblemSpec:
    """The :class:`ProblemSpec` registered under ``name``.

    >>> problem_spec("diffusion-checkerboard").default_kwargs["contrast"]
    100.0
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown problem family '{name}'; available: {', '.join(available_problems())}"
        ) from None


def make_problem(
    name: str,
    mesh: Optional[TriangularMesh] = None,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> Problem:
    """Build a registered problem family on ``mesh``.

    When ``mesh`` is None a random Bezier domain is generated (the paper's
    training distribution); ``element_size`` / ``radius`` kwargs are routed to
    the mesh generator in that case.  Families registered with ``dim=3``
    (``poisson3d``, ``heat3d``, …) instead get a deterministic structured
    tetrahedral box mesh sized by ``target_nodes``.  Remaining kwargs
    override the family's registered defaults and are passed to its factory.

    >>> import numpy as np
    >>> from repro.mesh import structured_rectangle_mesh
    >>> problem = make_problem("poisson-robin", mesh=structured_rectangle_mesh(6, 6),
    ...                        rng=np.random.default_rng(0))
    >>> bool(problem.relative_residual_norm(problem.solve_direct()) < 1e-10)
    True
    >>> problem3d = make_problem("poisson3d", rng=np.random.default_rng(0),
    ...                          target_nodes=216)
    >>> problem3d.mesh.dim, problem3d.num_dofs
    (3, 216)
    """
    spec = problem_spec(name)
    rng = rng if rng is not None else np.random.default_rng()
    merged = dict(spec.default_kwargs)
    merged.update(kwargs)
    dim = int(merged.pop("dim", 2))
    if mesh is None:
        if dim == 3:
            from ..mesh.tet import box_mesh_for_target_size

            mesh = box_mesh_for_target_size(int(merged.pop("target_nodes", 512)))
            merged.pop("radius", None)
            merged.pop("element_size", None)
        else:
            mesh = random_domain_mesh(
                radius=float(merged.pop("radius", 1.0)),
                element_size=float(merged.pop("element_size", 0.1)),
                rng=rng,
            )
    else:
        merged.pop("radius", None)
        merged.pop("element_size", None)
        merged.pop("target_nodes", None)
    return spec.factory(mesh, rng=rng, **merged)
