"""Built-in problem families.

Each factory is registered with :func:`~repro.problems.registry.register_problem`
and builds a :class:`~repro.fem.problem.Problem` from ``(mesh, rng, **kwargs)``.
Geometric parameters (checkerboard cells, channel extents, mixed-BC regions)
are derived from the mesh bounding box so every family works on any domain —
the random Bezier training meshes, the structured rectangles of the tests and
the Formula-1 silhouette alike.

Families
--------
``poisson``
    The paper's baseline: ``-Δu = f`` with random quadratic f and Dirichlet g.
``diffusion-checkerboard``
    Piecewise-constant checkerboard κ (default contrast 100; pass
    ``contrast=1e4`` for the extreme case), Dirichlet BCs.
``diffusion-channel``
    High-κ stripes crossing the domain, Dirichlet BCs.
``diffusion-lognormal``
    Smooth log-normal random κ (random-Fourier-feature GMRF), Dirichlet BCs.
``diffusion-smooth``
    Deterministic smooth radial κ bump — the mild heterogeneity used by the
    convergence tests.
``diffusion-mixed-bc``
    Checkerboard κ with Dirichlet data on the left half of the boundary, a
    Neumann flux on the upper-right part and a Robin condition elsewhere.
``poisson-robin``
    κ ≡ 1 with a Robin condition on the whole boundary (no Dirichlet nodes —
    exercises the boundary-mass path end to end).
"""

from __future__ import annotations


import numpy as np

from ..fem.coefficients import ChannelField, CheckerboardField, LognormalField, RadialField
from ..fem.functions import random_boundary, random_forcing
from ..fem.poisson import PoissonProblem, random_poisson_problem
from ..fem.problem import DiffusionProblem, dirichlet_bc, neumann_bc, robin_bc
from ..mesh.mesh import TriangularMesh
from .registry import register_problem

__all__ = []  # families are consumed through the registry, not imported


def _bbox(mesh: TriangularMesh):
    lo = mesh.nodes.min(axis=0)
    hi = mesh.nodes.max(axis=0)
    return lo, hi


@register_problem("poisson", description="Homogeneous Poisson with random quadratic f/g (paper Sec. IV-A)")
def _poisson(mesh: TriangularMesh, rng: np.random.Generator, scale: float = 1.0) -> PoissonProblem:
    return random_poisson_problem(mesh, rng=rng, scale=scale)


@register_problem(
    "diffusion-checkerboard",
    description="Checkerboard κ (cells² per bbox side), Dirichlet BCs",
    contrast=100.0,
    cells=4,
)
def _checkerboard(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    contrast: float = 100.0,
    cells: int = 4,
) -> DiffusionProblem:
    lo, hi = _bbox(mesh)
    cell_size = float(max(hi - lo)) / max(int(cells), 1)
    kappa = CheckerboardField(contrast=contrast, cell_size=cell_size, origin=(float(lo[0]), float(lo[1])))
    return DiffusionProblem.from_fields(
        mesh, kappa, random_forcing(rng), [dirichlet_bc(random_boundary(rng))]
    )


@register_problem(
    "diffusion-channel",
    description="High-κ channels crossing the domain, Dirichlet BCs",
    contrast=100.0,
    num_channels=3,
)
def _channel(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    contrast: float = 100.0,
    num_channels: int = 3,
) -> DiffusionProblem:
    lo, hi = _bbox(mesh)
    width = 0.08 * float(hi[1] - lo[1])
    kappa = ChannelField(
        contrast=contrast,
        num_channels=num_channels,
        width=width,
        axis="x",
        extent=(float(lo[1]), float(hi[1])),
    )
    return DiffusionProblem.from_fields(
        mesh, kappa, random_forcing(rng), [dirichlet_bc(random_boundary(rng))]
    )


@register_problem(
    "diffusion-lognormal",
    description="Smooth log-normal random κ (random Fourier features), Dirichlet BCs",
    sigma=1.0,
    correlation_length=0.4,
)
def _lognormal(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    sigma: float = 1.0,
    correlation_length: float = 0.4,
) -> DiffusionProblem:
    kappa = LognormalField(
        sigma=sigma,
        correlation_length=correlation_length,
        seed=int(rng.integers(0, 2**31 - 1)),
    )
    return DiffusionProblem.from_fields(
        mesh, kappa, random_forcing(rng), [dirichlet_bc(random_boundary(rng))]
    )


@register_problem(
    "diffusion-smooth",
    description="Deterministic smooth radial κ bump (convergence-test workload)",
)
def _smooth(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    amplitude: float = 4.0,
) -> DiffusionProblem:
    lo, hi = _bbox(mesh)
    center = tuple(0.5 * (lo + hi))
    radius = 0.35 * float(max(hi - lo))
    kappa = RadialField(base=1.0, amplitude=amplitude, center=center, radius=radius)
    return DiffusionProblem.from_fields(
        mesh, kappa, random_forcing(rng), [dirichlet_bc(random_boundary(rng))]
    )


@register_problem(
    "diffusion-mixed-bc",
    description="Checkerboard κ with mixed Dirichlet/Neumann/Robin boundary regions",
    contrast=100.0,
    cells=4,
)
def _mixed_bc(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    contrast: float = 100.0,
    cells: int = 4,
) -> DiffusionProblem:
    lo, hi = _bbox(mesh)
    mid = 0.5 * (lo + hi)
    cell_size = float(max(hi - lo)) / max(int(cells), 1)
    kappa = CheckerboardField(contrast=contrast, cell_size=cell_size, origin=(float(lo[0]), float(lo[1])))
    flux = float(rng.uniform(-2.0, 2.0))
    alpha = float(rng.uniform(0.5, 2.0))
    conditions = [
        dirichlet_bc(random_boundary(rng), where=lambda x, y: x <= mid[0]),
        neumann_bc(flux, where=lambda x, y: (x > mid[0]) & (y > mid[1])),
        robin_bc(alpha, 0.0),
    ]
    return DiffusionProblem.from_fields(mesh, kappa, random_forcing(rng), conditions)


@register_problem(
    "poisson-robin",
    description="κ ≡ 1 with an all-Robin boundary (no Dirichlet nodes)",
    alpha=1.0,
)
def _poisson_robin(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    alpha: float = 1.0,
) -> DiffusionProblem:
    return DiffusionProblem.from_fields(
        mesh,
        1.0,
        random_forcing(rng),
        [robin_bc(alpha, random_boundary(rng))],
    )
