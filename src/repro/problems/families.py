"""Built-in problem families.

Each factory is registered with :func:`~repro.problems.registry.register_problem`
and builds a :class:`~repro.fem.problem.Problem` from ``(mesh, rng, **kwargs)``.
Geometric parameters (checkerboard cells, channel extents, mixed-BC regions)
are derived from the mesh bounding box so every family works on any domain —
the random Bezier training meshes, the structured rectangles of the tests and
the Formula-1 silhouette alike.

Families
--------
``poisson``
    The paper's baseline: ``-Δu = f`` with random quadratic f and Dirichlet g.
``diffusion-checkerboard``
    Piecewise-constant checkerboard κ (default contrast 100; pass
    ``contrast=1e4`` for the extreme case), Dirichlet BCs.
``diffusion-channel``
    High-κ stripes crossing the domain, Dirichlet BCs.
``diffusion-lognormal``
    Smooth log-normal random κ (random-Fourier-feature GMRF), Dirichlet BCs.
``diffusion-smooth``
    Deterministic smooth radial κ bump — the mild heterogeneity used by the
    convergence tests.
``diffusion-mixed-bc``
    Checkerboard κ with Dirichlet data on the left half of the boundary, a
    Neumann flux on the upper-right part and a Robin condition elsewhere.
``poisson-robin``
    κ ≡ 1 with a Robin condition on the whole boundary (no Dirichlet nodes —
    exercises the boundary-mass path end to end).
``convection-diffusion``
    **Nonsymmetric** ``-κΔu + b·∇u = f`` with a random constant advection
    direction (mesh-Péclet-scaled speed) — the smoke workload of the
    ``gmres``/``bicgstab`` Krylov methods, which CG cannot solve.
"""

from __future__ import annotations


from typing import Optional

import numpy as np

from ..fem.assembly import (
    apply_dirichlet,
    assemble_convection,
    assemble_load,
    assemble_stiffness,
)
from ..fem.coefficients import ChannelField, CheckerboardField, LognormalField, RadialField
from ..fem.functions import random_boundary, random_forcing
from ..fem.poisson import PoissonProblem, random_poisson_problem
from ..fem.problem import DiffusionProblem, Problem, dirichlet_bc, neumann_bc, robin_bc
from ..mesh.mesh import TriangularMesh
from .registry import register_problem

__all__ = []  # families are consumed through the registry, not imported


def _bbox(mesh: TriangularMesh):
    lo = mesh.nodes.min(axis=0)
    hi = mesh.nodes.max(axis=0)
    return lo, hi


@register_problem("poisson", description="Homogeneous Poisson with random quadratic f/g (paper Sec. IV-A)")
def _poisson(mesh: TriangularMesh, rng: np.random.Generator, scale: float = 1.0) -> PoissonProblem:
    return random_poisson_problem(mesh, rng=rng, scale=scale)


@register_problem(
    "diffusion-checkerboard",
    description="Checkerboard κ (cells² per bbox side), Dirichlet BCs",
    contrast=100.0,
    cells=4,
)
def _checkerboard(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    contrast: float = 100.0,
    cells: int = 4,
) -> DiffusionProblem:
    lo, hi = _bbox(mesh)
    cell_size = float(max(hi - lo)) / max(int(cells), 1)
    kappa = CheckerboardField(contrast=contrast, cell_size=cell_size, origin=(float(lo[0]), float(lo[1])))
    return DiffusionProblem.from_fields(
        mesh, kappa, random_forcing(rng), [dirichlet_bc(random_boundary(rng))]
    )


@register_problem(
    "diffusion-channel",
    description="High-κ channels crossing the domain, Dirichlet BCs",
    contrast=100.0,
    num_channels=3,
)
def _channel(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    contrast: float = 100.0,
    num_channels: int = 3,
) -> DiffusionProblem:
    lo, hi = _bbox(mesh)
    width = 0.08 * float(hi[1] - lo[1])
    kappa = ChannelField(
        contrast=contrast,
        num_channels=num_channels,
        width=width,
        axis="x",
        extent=(float(lo[1]), float(hi[1])),
    )
    return DiffusionProblem.from_fields(
        mesh, kappa, random_forcing(rng), [dirichlet_bc(random_boundary(rng))]
    )


@register_problem(
    "diffusion-lognormal",
    description="Smooth log-normal random κ (random Fourier features), Dirichlet BCs",
    sigma=1.0,
    correlation_length=0.4,
)
def _lognormal(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    sigma: float = 1.0,
    correlation_length: float = 0.4,
) -> DiffusionProblem:
    kappa = LognormalField(
        sigma=sigma,
        correlation_length=correlation_length,
        seed=int(rng.integers(0, 2**31 - 1)),
    )
    return DiffusionProblem.from_fields(
        mesh, kappa, random_forcing(rng), [dirichlet_bc(random_boundary(rng))]
    )


@register_problem(
    "diffusion-smooth",
    description="Deterministic smooth radial κ bump (convergence-test workload)",
)
def _smooth(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    amplitude: float = 4.0,
) -> DiffusionProblem:
    lo, hi = _bbox(mesh)
    center = tuple(0.5 * (lo + hi))
    radius = 0.35 * float(max(hi - lo))
    kappa = RadialField(base=1.0, amplitude=amplitude, center=center, radius=radius)
    return DiffusionProblem.from_fields(
        mesh, kappa, random_forcing(rng), [dirichlet_bc(random_boundary(rng))]
    )


@register_problem(
    "diffusion-mixed-bc",
    description="Checkerboard κ with mixed Dirichlet/Neumann/Robin boundary regions",
    contrast=100.0,
    cells=4,
)
def _mixed_bc(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    contrast: float = 100.0,
    cells: int = 4,
) -> DiffusionProblem:
    lo, hi = _bbox(mesh)
    mid = 0.5 * (lo + hi)
    cell_size = float(max(hi - lo)) / max(int(cells), 1)
    kappa = CheckerboardField(contrast=contrast, cell_size=cell_size, origin=(float(lo[0]), float(lo[1])))
    flux = float(rng.uniform(-2.0, 2.0))
    alpha = float(rng.uniform(0.5, 2.0))
    conditions = [
        dirichlet_bc(random_boundary(rng), where=lambda x, y: x <= mid[0]),
        neumann_bc(flux, where=lambda x, y: (x > mid[0]) & (y > mid[1])),
        robin_bc(alpha, 0.0),
    ]
    return DiffusionProblem.from_fields(mesh, kappa, random_forcing(rng), conditions)


@register_problem(
    "convection-diffusion",
    description="Nonsymmetric -κΔu + b·∇u = f (GMRES/BiCGStab smoke workload)",
    peclet=20.0,
)
def _convection_diffusion(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    diffusion: float = 1.0,
    peclet: float = 20.0,
    angle: Optional[float] = None,
) -> Problem:
    """Convection-diffusion with constant advection at a given domain Péclet.

    ``peclet`` sets ``|b| · L / κ`` with L the domain diameter; the default
    of 20 is advective enough that the assembled matrix is visibly
    nonsymmetric and CG breaks down, yet mild enough that the unstabilised
    P1 discretisation stays oscillation-free on the meshes used here.
    ``angle`` fixes the advection direction (random by default).
    """
    lo, hi = _bbox(mesh)
    length = float(max(hi - lo))
    theta = float(rng.uniform(0.0, 2.0 * np.pi)) if angle is None else float(angle)
    speed = float(peclet) * float(diffusion) / max(length, 1e-12)
    velocity = (speed * np.cos(theta), speed * np.sin(theta))

    stiffness = assemble_stiffness(mesh, diffusion=float(diffusion))
    system = stiffness + assemble_convection(mesh, velocity)
    load = assemble_load(mesh, random_forcing(rng))

    boundary = random_boundary(rng)
    dnodes = np.asarray(mesh.boundary_nodes, dtype=np.int64)
    dvalues = np.broadcast_to(
        np.asarray(boundary(mesh.nodes[dnodes, 0], mesh.nodes[dnodes, 1]), dtype=np.float64),
        dnodes.shape,
    ).copy()
    # "row" elimination: zeroing columns would re-symmetrise the boundary rows
    matrix, rhs = apply_dirichlet(system, load, dnodes, dvalues, mode="row")
    return Problem(
        mesh=mesh,
        matrix=matrix,
        rhs=rhs,
        stiffness=stiffness,
        boundary_values=dvalues,
        dirichlet_mode="row",
        dirichlet_nodes=dnodes,
        symmetric=False,
    )


@register_problem(
    "poisson-robin",
    description="κ ≡ 1 with an all-Robin boundary (no Dirichlet nodes)",
    alpha=1.0,
)
def _poisson_robin(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    alpha: float = 1.0,
) -> DiffusionProblem:
    return DiffusionProblem.from_fields(
        mesh,
        1.0,
        random_forcing(rng),
        [robin_bc(alpha, random_boundary(rng))],
    )
