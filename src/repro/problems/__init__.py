"""Problem registry: named PDE families for the whole solver stack.

``make_problem("diffusion-checkerboard", mesh=..., contrast=1e4)`` builds a
ready-to-solve :class:`~repro.fem.problem.Problem`; the registered families
cover the paper's homogeneous Poisson setting plus the heterogeneous
variable-coefficient diffusion workloads (checkerboard / channel / lognormal
κ, mixed Dirichlet/Neumann/Robin boundaries) that stress the preconditioners.

Public surface:

* :func:`~repro.problems.registry.make_problem` — build a family by name;
* :func:`~repro.problems.registry.available_problems` — list the names;
* :func:`~repro.problems.registry.register_problem` — add a new family;
* :func:`~repro.problems.registry.problem_spec`,
  :class:`~repro.problems.registry.ProblemSpec` — registry introspection.

See :mod:`repro.problems.families` for the built-in family definitions.
"""

from . import families  # noqa: F401  — importing populates the registry
from . import families3d  # noqa: F401  — 3D tetrahedral families
from . import transient  # noqa: F401  — time-dependent θ-scheme families
from .registry import (
    ProblemFactory,
    ProblemSpec,
    available_problems,
    make_problem,
    problem_spec,
    register_problem,
)

__all__ = [
    "make_problem",
    "available_problems",
    "register_problem",
    "problem_spec",
    "ProblemSpec",
    "ProblemFactory",
]
