"""Built-in 3D problem families on tetrahedral meshes.

The first non-2D entries in the registry: P1 discretisations on a
:class:`~repro.mesh.tet.TetrahedralMesh` (a structured unit box when no mesh
is passed — see ``dim=3`` routing in
:func:`~repro.problems.registry.make_problem`).  Everything downstream —
Dirichlet elimination, partitioning, the κ-aware GNN features and
``Problem.fingerprint()`` — is dimension-agnostic, so these problems flow
through sessions and serve exactly like the 2D families.

Families
--------
``poisson3d``
    ``-Δu = f`` on the unit box with a random quadratic forcing and random
    quadratic Dirichlet data (the 3D analogue of the paper's setting).
``diffusion3d-ball``
    Variable κ: a high-contrast spherical inclusion in the box centre —
    exercises the κ-aware node features in 3D.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..fem.assembly import apply_dirichlet
from ..fem.assembly3d import assemble_load_3d, assemble_stiffness_3d, evaluate_on_tets
from ..fem.problem import DiffusionProblem, Problem, node_averaged_diffusion
from ..mesh.tet import TetrahedralMesh
from .registry import register_problem

__all__ = []  # families are consumed through the registry, not imported


def random_forcing_3d(rng: Optional[np.random.Generator] = None, scale: float = 1.0):
    """Random quadratic forcing ``f(x,y,z)`` — the 3D analogue of Eq. 24."""
    rng = rng if rng is not None else np.random.default_rng()
    r = rng.uniform(-10.0, 10.0, size=4)

    def f(x, y, z):
        return scale * (r[0] * (x - 1.0) ** 2 + r[1] * y ** 2 + r[2] * z ** 2 + r[3])

    return f


def random_boundary_3d(rng: Optional[np.random.Generator] = None, scale: float = 1.0):
    """Random Dirichlet data ``g(x,y,z)`` as a full quadratic polynomial."""
    rng = rng if rng is not None else np.random.default_rng()
    r = rng.uniform(-10.0, 10.0, size=7)

    def g(x, y, z):
        return scale * (
            r[0] * x ** 2 + r[1] * y ** 2 + r[2] * z ** 2
            + r[3] * x + r[4] * y + r[5] * z + r[6]
        )

    return g


def _dirichlet_problem_3d(
    mesh: TetrahedralMesh,
    stiffness,
    load: np.ndarray,
    boundary,
    node_diffusion: Optional[np.ndarray] = None,
) -> tuple:
    """Shared tail of the 3D families: eliminate the whole box boundary."""
    dnodes = np.asarray(mesh.boundary_nodes, dtype=np.int64)
    coords = mesh.nodes[dnodes]
    dvalues = np.broadcast_to(
        np.asarray(boundary(coords[:, 0], coords[:, 1], coords[:, 2]), dtype=np.float64),
        dnodes.shape,
    ).copy()
    matrix, rhs = apply_dirichlet(stiffness, load, dnodes, dvalues, mode="symmetric")
    return matrix, rhs, dnodes, dvalues


@register_problem(
    "poisson3d",
    description="3D Poisson on a tetrahedral mesh (structured box by default)",
    dim=3,
)
def _poisson3d(
    mesh: TetrahedralMesh, rng: np.random.Generator, scale: float = 1.0
) -> Problem:
    stiffness = assemble_stiffness_3d(mesh)
    load = assemble_load_3d(mesh, random_forcing_3d(rng, scale=scale))
    matrix, rhs, dnodes, dvalues = _dirichlet_problem_3d(
        mesh, stiffness, load, random_boundary_3d(rng, scale=scale)
    )
    return Problem(
        mesh=mesh,
        matrix=matrix,
        rhs=rhs,
        stiffness=stiffness,
        boundary_values=dvalues,
        dirichlet_nodes=dnodes,
    )


@register_problem(
    "diffusion3d-ball",
    description="High-contrast spherical κ inclusion in the box centre",
    dim=3,
    contrast=100.0,
)
def _diffusion3d_ball(
    mesh: TetrahedralMesh,
    rng: np.random.Generator,
    contrast: float = 100.0,
    radius_fraction: float = 0.3,
) -> DiffusionProblem:
    lo = mesh.nodes.min(axis=0)
    hi = mesh.nodes.max(axis=0)
    centre = 0.5 * (lo + hi)
    ball_radius = float(radius_fraction) * float(max(hi - lo))

    def kappa(x, y, z):
        inside = (x - centre[0]) ** 2 + (y - centre[1]) ** 2 + (z - centre[2]) ** 2 \
            <= ball_radius ** 2
        return np.where(inside, float(contrast), 1.0)

    tet_diffusion = evaluate_on_tets(mesh, kappa)
    stiffness = assemble_stiffness_3d(mesh, diffusion=tet_diffusion)
    load = assemble_load_3d(mesh, random_forcing_3d(rng))
    matrix, rhs, dnodes, dvalues = _dirichlet_problem_3d(
        mesh, stiffness, load, random_boundary_3d(rng)
    )
    return DiffusionProblem(
        mesh=mesh,
        matrix=matrix,
        rhs=rhs,
        stiffness=stiffness,
        boundary_values=dvalues,
        dirichlet_nodes=dnodes,
        node_diffusion=node_averaged_diffusion(mesh, tet_diffusion),
        diffusion=kappa,
        triangle_diffusion=tet_diffusion,
    )
