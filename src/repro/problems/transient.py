"""Built-in time-dependent problem families (θ-scheme step operators).

Each factory assembles the semi-discrete operators ``M du/dt + A u = f`` and
bakes them into a :class:`~repro.timestepping.problem.TimeDependentProblem`
via :meth:`~repro.timestepping.problem.TimeDependentProblem.from_theta_scheme`.
The step operator ``M/dt + θ·A`` is what one
:func:`repro.solvers.prepare` session factorises once and then re-solves for
every step of :meth:`~repro.solvers.session.SolverSession.march`.

Families
--------
``heat``
    2D heat equation ``∂u/∂t − ∇·(κ∇u) = f`` with Dirichlet boundary data
    and a configurable θ (backward Euler by default), on any 2D mesh.
``heat3d``
    The same on a tetrahedral box mesh — the first time-dependent 3D
    workload (``dim=3`` routing builds the mesh when none is given).
``convection-diffusion-transient``
    **Nonsymmetric** ``∂u/∂t − κΔu + b·∇u = f`` with row-mode Dirichlet
    elimination, marched with ``gmres``/``bicgstab`` sessions.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from ..fem.assembly import (
    assemble_convection,
    assemble_load,
    assemble_mass,
    assemble_stiffness,
    evaluate_on_triangles,
)
from ..fem.assembly3d import assemble_load_3d, assemble_mass_3d, assemble_stiffness_3d
from ..fem.functions import random_boundary, random_forcing
from ..fem.problem import node_averaged_diffusion
from ..mesh.mesh import TriangularMesh
from ..mesh.tet import TetrahedralMesh
from ..timestepping.problem import TimeDependentProblem
from .families3d import random_boundary_3d, random_forcing_3d
from .registry import register_problem

__all__ = []  # families are consumed through the registry, not imported


@register_problem(
    "heat",
    description="2D heat equation θ-scheme (constant step operator M/dt + θK)",
    dt=0.01,
    theta=1.0,
)
def _heat(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    dt: float = 0.01,
    theta: float = 1.0,
    diffusion: Union[None, float, Callable] = None,
    forcing: Optional[Callable] = None,
    boundary: Optional[Callable] = None,
    initial: Union[None, np.ndarray, Callable] = None,
    lumped: bool = False,
) -> TimeDependentProblem:
    if forcing is None:
        forcing = random_forcing(rng)
    if boundary is None:
        boundary = random_boundary(rng)
    node_diffusion = None
    if diffusion is not None:
        triangle_diffusion = evaluate_on_triangles(mesh, diffusion)
        spatial = assemble_stiffness(mesh, diffusion=triangle_diffusion)
        node_diffusion = node_averaged_diffusion(mesh, triangle_diffusion)
    else:
        spatial = assemble_stiffness(mesh)
    mass = assemble_mass(mesh, lumped=lumped)
    load = assemble_load(mesh, forcing)
    dnodes = np.asarray(mesh.boundary_nodes, dtype=np.int64)
    dvalues = np.broadcast_to(
        np.asarray(boundary(*mesh.nodes[dnodes].T), dtype=np.float64), dnodes.shape
    ).copy()
    return TimeDependentProblem.from_theta_scheme(
        mesh,
        spatial=spatial,
        mass=mass,
        load=load,
        dt=dt,
        theta=theta,
        dirichlet_nodes=dnodes,
        dirichlet_values=dvalues,
        initial_state=initial,
        node_diffusion=node_diffusion,
        lumped_mass=lumped,
    )


@register_problem(
    "heat3d",
    description="3D heat equation θ-scheme on a tetrahedral box mesh",
    dim=3,
    dt=0.01,
    theta=1.0,
)
def _heat3d(
    mesh: TetrahedralMesh,
    rng: np.random.Generator,
    dt: float = 0.01,
    theta: float = 1.0,
    forcing: Optional[Callable] = None,
    boundary: Optional[Callable] = None,
    initial: Union[None, np.ndarray, Callable] = None,
    lumped: bool = False,
) -> TimeDependentProblem:
    if forcing is None:
        forcing = random_forcing_3d(rng)
    if boundary is None:
        boundary = random_boundary_3d(rng)
    spatial = assemble_stiffness_3d(mesh)
    mass = assemble_mass_3d(mesh, lumped=lumped)
    load = assemble_load_3d(mesh, forcing)
    dnodes = np.asarray(mesh.boundary_nodes, dtype=np.int64)
    dvalues = np.broadcast_to(
        np.asarray(boundary(*mesh.nodes[dnodes].T), dtype=np.float64), dnodes.shape
    ).copy()
    return TimeDependentProblem.from_theta_scheme(
        mesh,
        spatial=spatial,
        mass=mass,
        load=load,
        dt=dt,
        theta=theta,
        dirichlet_nodes=dnodes,
        dirichlet_values=dvalues,
        initial_state=initial,
        lumped_mass=lumped,
    )


@register_problem(
    "convection-diffusion-transient",
    description="Nonsymmetric transient ∂u/∂t − κΔu + b·∇u = f (row-mode BCs)",
    dt=0.01,
    theta=1.0,
    peclet=20.0,
)
def _convection_diffusion_transient(
    mesh: TriangularMesh,
    rng: np.random.Generator,
    dt: float = 0.01,
    theta: float = 1.0,
    diffusion: float = 1.0,
    peclet: float = 20.0,
    angle: Optional[float] = None,
    lumped: bool = False,
) -> TimeDependentProblem:
    """Transient convection-diffusion at a given domain Péclet number.

    The advection speed is scaled exactly as in the steady
    ``convection-diffusion`` family; the spatial operator (stiffness +
    convection) is nonsymmetric, so the step operator is eliminated in
    ``"row"`` mode and marched through ``gmres``/``bicgstab`` sessions.
    """
    lo = mesh.nodes.min(axis=0)
    hi = mesh.nodes.max(axis=0)
    length = float(max(hi - lo))
    direction = float(rng.uniform(0.0, 2.0 * np.pi)) if angle is None else float(angle)
    speed = float(peclet) * float(diffusion) / max(length, 1e-12)
    velocity = (speed * np.cos(direction), speed * np.sin(direction))

    spatial = assemble_stiffness(mesh, diffusion=float(diffusion)) \
        + assemble_convection(mesh, velocity)
    mass = assemble_mass(mesh, lumped=lumped)
    load = assemble_load(mesh, random_forcing(rng))
    boundary = random_boundary(rng)
    dnodes = np.asarray(mesh.boundary_nodes, dtype=np.int64)
    dvalues = np.broadcast_to(
        np.asarray(boundary(*mesh.nodes[dnodes].T), dtype=np.float64), dnodes.shape
    ).copy()
    return TimeDependentProblem.from_theta_scheme(
        mesh,
        spatial=spatial,
        mass=mass,
        load=load,
        dt=dt,
        theta=theta,
        dirichlet_nodes=dnodes,
        dirichlet_values=dvalues,
        dirichlet_mode="row",
        lumped_mass=lumped,
    )
