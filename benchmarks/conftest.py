"""Pytest configuration for the benchmark harnesses.

Each ``bench_*`` module reproduces one table or figure of the paper.  They are
regular pytest tests using the ``benchmark`` fixture of pytest-benchmark, so

    pytest benchmarks/ --benchmark-only

runs them all and prints both the pytest-benchmark timing table and the
paper-shaped rows emitted on stdout (run with ``-s`` to see the tables live).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

# make `import common` work regardless of the rootdir pytest was invoked from
sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_addoption(parser):
    """Point the pytest-driven benches at trained checkpoints.

    ``--checkpoint`` feeds the homogeneous reference model
    (``common.get_pretrained_model``), ``--het-checkpoint`` the heterogeneous
    one; both accept files written by ``repro.gnn.checkpoint`` (e.g.
    ``benchmarks/artifacts/<hash>/checkpoint.npz``).
    """
    parser.addoption("--checkpoint", action="store", default=None,
                     help="checkpoint file for the homogeneous reference DSS model")
    parser.addoption("--het-checkpoint", action="store", default=None,
                     help="checkpoint file for the heterogeneous reference DSS model")


def pytest_configure(config):
    # delivered through the environment so `common.py` stays import-order
    # agnostic (it is also used by the plain argparse benches)
    checkpoint = config.getoption("--checkpoint", default=None)
    het_checkpoint = config.getoption("--het-checkpoint", default=None)
    if checkpoint:
        os.environ["REPRO_BENCH_CHECKPOINT"] = checkpoint
    if het_checkpoint:
        os.environ["REPRO_BENCH_HET_CHECKPOINT"] = het_checkpoint
