"""Pytest configuration for the benchmark harnesses.

Each ``bench_*`` module reproduces one table or figure of the paper.  They are
regular pytest tests using the ``benchmark`` fixture of pytest-benchmark, so

    pytest benchmarks/ --benchmark-only

runs them all and prints both the pytest-benchmark timing table and the
paper-shaped rows emitted on stdout (run with ``-s`` to see the tables live).
"""

from __future__ import annotations

import sys
from pathlib import Path

# make `import common` work regardless of the rootdir pytest was invoked from
sys.path.insert(0, str(Path(__file__).resolve().parent))
