"""Perf-regression gate: compare a fresh bench_perf run against the baseline.

CI's perf-smoke job runs ``bench_perf.py --smoke`` against the cached trained
checkpoint and then calls this script to compare the fresh records with the
committed ``BENCH_perf.json``.  The check fails (exit 1) when
``apply_ms_p50``, ``total_s`` or ``resolve_ms_p50`` (the amortised
repeated-RHS serving cost of a prepared session) regresses more than
``--threshold`` (default 2×) for any solver; a metric absent from either
side of a record pair (e.g. ``resolve_ms_p50`` on ``ddm-gnn-ref`` or on a
pre-split baseline) is skipped, not failed.

The comparison is deliberately noise-tolerant:

* records are matched per solver to the baseline record of the **nearest
  problem size** (the smoke mesh is smaller than the committed full-scale
  sizes, which only adds headroom);
* every raw ratio is divided by the **median ratio across all solver/metric
  pairs** before the threshold is applied.  A uniformly slower machine (CI
  runners vs the machine that produced the baseline) shifts all ratios by the
  same factor, which the normalisation cancels — the gate only fires when one
  solver regresses *relative to the others*, which is what a code regression
  looks like.  A uniform slowdown of every solver at once is indistinguishable
  from slower hardware and is intentionally not gated.

Records are matched per ``(solver, precision)`` — f32 ddm-gnn records gate
against f32 baselines only.  On top of the latency gates, ``--fresh`` runs an
**iters-drift gate keyed on precision mode**: the f32 ddm-gnn record at each
problem size must not need more than ``--iters-drift-limit`` (default 1.2×)
the iterations of its f64 sibling in the *same run* — the bound the precision
tests (tests/test_solvers.py::TestPrecision) assert on the smoke sizes.

The gate also covers the serving layer: ``--serve-fresh`` compares a fresh
``bench_serve.py`` run against the committed ``BENCH_serve.json``.  Serve
records are matched exactly on ``(solver, clients, batching)`` and gated on
``lat_ms_p50`` with the same median machine-speed normalisation (its own
pool — serving latency and per-apply cost drift differently).  Everything is
missing-metric tolerant: an absent serve baseline, an unmatched cell or a
missing metric is reported and skipped, never failed, so older baselines keep
gating what they can.

``--march-fresh`` gates the time-marching subsystem against a fresh
``bench_march.py`` run: every ``march-ddm-lu`` record must reach
``--march-min`` (default 5×) between re-paying ``prepare()`` per step and the
amortised marched step — a within-run ratio, so no machine normalisation is
needed — and its trajectory must be bit-identical to the fresh-session one.
March latency (``step_ms_p50``/``total_s``) additionally gates against the
committed baseline's march records through the usual normalised pool.

Finally, ``--scaling-gate W1_JSON WN_JSON`` gates multi-process sharded
serving: it compares an N-worker ``bench_serve.py --workers N`` run against a
1-worker run from the *same machine and commit* and requires the best
eligible cell (``clients >= workers``) to reach ``--scaling-min`` (default
2.5×) the single-process throughput — but only when the scaled run recorded
``cpus >= workers``.  On machines with fewer cores than workers the bar
degrades to a catastrophe floor (``--scaling-floor``, default 0.5×):
process-level speedup physically requires cores, and N processes
time-slicing one core legitimately pay pipe/scheduling overhead — the floor
only catches sharding that *collapses* (deadlock, serialising through one
shard), not honest contention.

``--obs-overhead`` gates the observability layer's cost promise: tracing +
convergence telemetry ON must stay within ``--obs-overhead-limit`` (default
1.02, i.e. ≤2%) of tracing OFF on the amortised repeated-RHS resolve path.
The measurement is self-contained and paired — the same prepared session
alternates off/on phases over the same right-hand-side pool, and the gate is
the **median of per-pair ratios** — so machine speed cancels by construction
and a single noisy pair cannot fail the gate.

Usage::

    python benchmarks/check_perf.py --fresh /tmp/perf_smoke.json
    python benchmarks/check_perf.py --fresh new.json --baseline BENCH_perf.json --threshold 2.0
    python benchmarks/check_perf.py --serve-fresh /tmp/serve_smoke.json
    python benchmarks/check_perf.py --fresh new.json --serve-fresh serve.json
    python benchmarks/check_perf.py --scaling-gate serve_w1.json serve_w4.json
    python benchmarks/check_perf.py --march-fresh /tmp/march_smoke.json
    python benchmarks/check_perf.py --obs-overhead
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
DEFAULT_SERVE_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
#: serve metrics gated per (solver, clients, batching) cell
SERVE_GATED_METRICS = ("lat_ms_p50",)
#: gated metrics; resolve_ms_p50 (the amortised repeated-RHS serving cost of a
#: prepared SolverSession) and step_ms_p50 (the amortised per-step cost of a
#: time march) are skipped for records that don't carry them (e.g.
#: ddm-gnn-ref, steady-solver records, or baselines predating either split)
GATED_METRICS = ("apply_ms_p50", "total_s", "resolve_ms_p50", "step_ms_p50")


def load_records(path: Path) -> List[Dict]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    records = payload.get("records", [])
    if not records:
        raise SystemExit(f"error: no records in {path}")
    return records


def record_precision(record: Dict) -> str:
    """The record's precision mode; baselines predating the knob are f64."""
    return str(record.get("precision", "f64"))


def nearest_baseline(record: Dict, baseline: List[Dict]) -> Optional[Dict]:
    """The baseline record for the same solver (and precision mode) with the
    closest problem size — an f32 record must never be compared against an
    f64 baseline or the precision speedup would read as a regression."""
    candidates = [b for b in baseline
                  if b["solver"] == record["solver"]
                  and record_precision(b) == record_precision(record)]
    if not candidates:
        return None
    return min(candidates, key=lambda b: abs(math.log(b["n"] / record["n"])))


def collect_ratios(fresh: List[Dict], baseline: List[Dict]) -> List[Tuple[str, int, str, float]]:
    """(solver, n, metric, fresh/baseline ratio) for every gated pair."""
    ratios = []
    for record in fresh:
        label = record["solver"]
        if record_precision(record) != "f64":
            label += f"[{record_precision(record)}]"
        matched = nearest_baseline(record, baseline)
        if matched is None:
            print(f"note: solver '{label}' has no baseline record — skipped")
            continue
        for metric in GATED_METRICS:
            if matched.get(metric) is None or record.get(metric) is None:
                continue  # metric absent on one side (older baseline / ref record)
            base_value = float(matched[metric])
            fresh_value = float(record[metric])
            if base_value <= 0.0:
                continue
            ratios.append((label, int(record["n"]), metric, fresh_value / base_value))
    return ratios


def median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def serve_cell_key(record: Dict) -> Tuple[str, int, bool, int, str]:
    """Serve cells match on (solver, clients, batching, workers, proto).

    Baselines predating the sharded-serving axis default to ``workers=1`` /
    ``proto="json"`` — exactly what those records measured — so the latency
    gate keeps matching them against fresh single-process runs and never
    compares a 4-process binary cell to a 1-process JSON one.
    """
    return (str(record.get("solver")), int(record.get("clients", 0)),
            bool(record.get("batching")), int(record.get("workers", 1)),
            str(record.get("proto", "json")))


def collect_serve_ratios(fresh: List[Dict], baseline: List[Dict]) -> List[Tuple[str, int, str, float]]:
    """(cell label, clients, metric, ratio) for every matched serve cell.

    Cells match exactly on (solver, clients, batching) and, like the perf
    gate, to the baseline record of the **nearest problem size** — serving
    latency scales with n, so comparing a full-sweep run against a smoke
    baseline must not read the size difference as a regression.
    """
    by_cell: Dict[Tuple[str, int, bool], List[Dict]] = {}
    for record in baseline:
        by_cell.setdefault(serve_cell_key(record), []).append(record)
    ratios = []
    for record in fresh:
        candidates = by_cell.get(serve_cell_key(record))
        if not candidates:
            print(f"note: serve cell {serve_cell_key(record)} has no baseline record — skipped")
            continue
        fresh_n = int(record.get("n", 0)) or 1
        matched = min(candidates,
                      key=lambda b: abs(math.log(max(int(b.get("n", 0)), 1) / fresh_n)))
        for metric in SERVE_GATED_METRICS:
            if matched.get(metric) is None or record.get(metric) is None:
                continue
            base_value = float(matched[metric])
            fresh_value = float(record[metric])
            if base_value <= 0.0:
                continue
            label = f"{record['solver']}/c{record['clients']}/" \
                    f"{'batched' if record.get('batching') else 'single'}"
            ratios.append((label, int(record["clients"]), metric, fresh_value / base_value))
    return ratios


def gate_precision_drift(records: List[Dict], limit: float) -> List[Tuple]:
    """The iters-drift gate, keyed on precision mode.

    float32 inference may cost Krylov iterations, but no more than ``limit``x
    the f64 count at the same problem size.  Unlike the latency gates this
    compares the fresh run against *itself* (f32 vs f64 records of the same
    ``n``), so it needs no machine-speed normalisation and no baseline —
    iteration counts are deterministic per (problem, model, precision).
    """
    by_n: Dict[int, Dict[str, int]] = {}
    for record in records:
        if record.get("solver") == "ddm-gnn" and record.get("iters") is not None:
            by_n.setdefault(int(record["n"]), {})[record_precision(record)] = \
                int(record["iters"])
    failures = []
    pairs = {n: p for n, p in by_n.items() if "f64" in p and "f32" in p}
    if not pairs:
        print("\n[precision drift] no f64/f32 ddm-gnn iteration pairs — gate skipped")
        return failures
    print(f"\n[precision drift] f32 iterations gated at {limit:g}x f64, per size")
    print(f"{'n':>9} {'f64 iters':>10} {'f32 iters':>10} {'drift':>8}  verdict")
    for n, by_precision in sorted(pairs.items()):
        f64_iters, f32_iters = by_precision["f64"], by_precision["f32"]
        drift = f32_iters / max(f64_iters, 1)
        verdict = "ok"
        if f32_iters > math.ceil(limit * f64_iters):
            verdict = f"DRIFT (> {limit:g}x)"
            failures.append(("ddm-gnn[f32]", n, "iters", drift))
        print(f"{n:>9} {f64_iters:>10} {f32_iters:>10} {drift:>7.2f}x  {verdict}")
    return failures


def gate_scaling(base_path: Path, scaled_path: Path, min_ratio: float,
                 floor: float) -> List[Tuple]:
    """The multi-process scaling gate: N-worker vs 1-worker throughput.

    Matches cells on (solver, clients, batching) across the two runs and
    takes the **best** throughput ratio over cells with enough concurrency
    to feed every worker (clients >= workers) — the acceptance criterion is
    "N workers reach min_ratio× on at least one smoke cell", not on every
    cell (1-client cells cannot scale by construction).

    The full ``min_ratio`` bar only applies when the scaled run actually had
    ``cpus >= workers``: scaling is a property of the code *and* the
    machine, and a 1-core container cannot demonstrate 4-process speedup no
    matter how good the code is.  With fewer cores than workers the gate
    degrades to a catastrophe floor — time-slicing N processes on one core
    legitimately costs pipe/scheduling overhead, so the floor only fires
    when sharding *collapses* (deadlock, everything serialising through a
    single shard) rather than merely contends.
    """
    base_payload = json.loads(base_path.read_text(encoding="utf-8"))
    scaled_payload = json.loads(scaled_path.read_text(encoding="utf-8"))
    base_records = base_payload.get("records", [])
    scaled_records = scaled_payload.get("records", [])
    workers = int(scaled_payload.get("workers")
                  or max((int(r.get("workers", 1)) for r in scaled_records), default=1))
    cpus = int(scaled_payload.get("cpus")
               or next((int(r.get("cpus", 1)) for r in scaled_records), 1))
    if workers < 2:
        print(f"note: {scaled_path} is not a multi-worker run — scaling gate skipped")
        return []

    def plain_key(record: Dict) -> Tuple[str, int, bool]:
        return (str(record.get("solver")), int(record.get("clients", 0)),
                bool(record.get("batching")))

    base_by_cell = {plain_key(record): record for record in base_records}
    enough_cores = cpus >= workers
    required = min_ratio if enough_cores else floor
    regime = (f"cpus={cpus} >= workers={workers}: full {min_ratio:g}x scaling bar"
              if enough_cores else
              f"cpus={cpus} < workers={workers}: catastrophe floor {floor:g}x only")
    print(f"\n[scaling] {workers}-worker vs 1-worker throughput ({regime})")
    print(f"{'cell':<28} {'w1 rps':>9} {'w' + str(workers) + ' rps':>9} {'ratio':>7}  note")
    best = None
    for record in scaled_records:
        matched = base_by_cell.get(plain_key(record))
        if matched is None:
            print(f"note: scaled cell {plain_key(record)} has no 1-worker twin — skipped")
            continue
        base_rps = float(matched.get("throughput_rps") or 0.0)
        scaled_rps = float(record.get("throughput_rps") or 0.0)
        if base_rps <= 0.0:
            continue
        ratio = scaled_rps / base_rps
        eligible = int(record.get("clients", 0)) >= workers
        label = f"{record['solver']}/c{record['clients']}/" \
                f"{'batched' if record.get('batching') else 'single'}"
        note = "" if eligible else f"(clients < {workers}: informational)"
        print(f"{label:<28} {base_rps:>9.2f} {scaled_rps:>9.2f} {ratio:>6.2f}x  {note}")
        if eligible and (best is None or ratio > best[1]):
            best = (label, ratio)
    if best is None:
        print("error: no scaled cell with clients >= workers matched a 1-worker twin")
        return [("scaling", workers, "throughput_rps", 0.0)]
    label, ratio = best
    if ratio < required:
        print(f"scaling FAIL: best eligible cell {label} reached {ratio:.2f}x "
              f"(required {required:g}x)")
        return [(f"scaling:{label}", workers, "throughput_rps", ratio)]
    print(f"scaling ok: best eligible cell {label} reached {ratio:.2f}x "
          f"(required {required:g}x)")
    return []


def gate_march(march_path: Path, baseline_path: Path, min_speedup: float,
               threshold: float) -> List[Tuple]:
    """The time-marching gate: amortisation must pay, bit-for-bit.

    Self-contained within the fresh run (machine-independent — both sides of
    the ratio ran on the same machine in the same process):

    * every ``march-ddm-lu`` record must reach ``min_speedup``× between its
      ``fresh_ms_p50`` (re-paying ``prepare()`` every step) and its amortised
      ``step_ms_p50`` — the acceptance criterion of the setup/solve split
      applied to time marching;
    * its ``bit_identical`` flag must be true: the marched trajectory and the
      fresh-session trajectory are the same solve sequence, so any divergence
      is a determinism bug, not noise.

    On top of that, march latency metrics (``step_ms_p50``/``total_s``) gate
    against the committed baseline's march records through the usual
    machine-normalised pool when the baseline carries any.
    """
    records = load_records(march_path)
    march_records = [r for r in records
                     if str(r.get("solver", "")).startswith("march")]
    if not march_records:
        print(f"error: no march records in {march_path}")
        return [("march", 0, "records", 0.0)]
    failures = []
    print(f"\n[march] amortised step vs fresh prepare()+solve, gated at {min_speedup:g}x")
    print(f"{'record':<16} {'n':>7} {'step_ms':>9} {'fresh_ms':>10} {'speedup':>8}  verdict")
    for record in march_records:
        label = str(record["solver"])
        n = int(record.get("n", 0))
        speedup = record.get("amortized_speedup")
        if speedup is None:
            continue  # the ddm-gnn rider record has no fresh baseline
        verdict = "ok"
        if record.get("bit_identical") is not True:
            verdict = "NOT BIT-IDENTICAL"
            failures.append((label, n, "bit_identical", 0.0))
        elif float(speedup) < min_speedup:
            verdict = f"TOO SLOW (< {min_speedup:g}x)"
            failures.append((label, n, "amortized_speedup", float(speedup)))
        print(f"{label:<16} {n:>7} {record.get('step_ms_p50', 0):>9.2f} "
              f"{record.get('fresh_ms_p50', 0):>10.2f} {float(speedup):>7.1f}x  {verdict}")

    if baseline_path.exists():
        baseline_march = [r for r in load_records(baseline_path)
                          if str(r.get("solver", "")).startswith("march")]
        if baseline_march:
            ratios = collect_ratios(march_records, baseline_march)
            if ratios:
                failures += gate(ratios, threshold, "march latency")
        else:
            print("note: baseline has no march records — march latency gate skipped")
    return failures


def gate_obs_overhead(limit: float, pairs: int = 5, pool_size: int = 10,
                      target_n: int = 2000, reps: int = 4) -> List[Tuple]:
    """The observability-overhead gate: tracing on ≤ ``limit``× tracing off.

    Self-contained (no baseline file): one prepared ``ddm-lu`` session serves
    the same seeded right-hand-side pool with tracing+telemetry toggled OFF
    and ON *back-to-back per solve*, so the machine state inside each
    comparison is as identical as the OS allows.  Per right-hand side the
    statistic is ``min(on reps) / min(off reps)`` — the min filters scheduler
    preemption and GC pauses, which hit both modes equally but not
    simultaneously.  Each of the ``pairs`` alternation rounds yields a median
    per-RHS ratio; the gate fires on the **best (minimum) round median**:
    background interference only inflates some rounds, while a genuine
    instrumentation overhead shifts *every* round (the design is paired), so
    the cleanest round is the least-contaminated estimate and still catches
    real regressions.  Machine speed cancels by construction (both arms of
    every ratio run within milliseconds of each other).  The problem size
    matches the ``bench_serve.py`` default (``target_n=2000``) so the ratio
    is representative of the benched ``resolve_ms_p50`` path.
    """
    import numpy as np

    from repro.obs import events as obs_events
    from repro.obs import trace as obs_trace
    from repro.serve.problems import build_problem_from_spec
    from repro.solvers import SolverConfig, prepare

    problem = build_problem_from_spec(
        {"family": "poisson", "target_n": target_n, "seed": 0})
    config = SolverConfig(preconditioner="ddm-lu", subdomain_size=80,
                          tolerance=1e-8, seed=0)
    session = prepare(problem, config)
    rng = np.random.default_rng(7)
    pool = [rng.normal(size=problem.num_dofs) for _ in range(max(4, pool_size))]
    for b in pool[:4]:  # warm caches/allocators before any timed solve
        session.solve(b)

    def timed(observing: bool, b) -> float:
        if observing:
            obs_trace.enable_tracing()
            session.config.obs = {"convergence": True}
            start = time.perf_counter()
            with obs_trace.trace_root("bench.request"):
                session.solve(b)
            elapsed = time.perf_counter() - start
            obs_trace.disable_tracing()
            session.config.obs = None
            return elapsed
        start = time.perf_counter()
        session.solve(b)
        return time.perf_counter() - start

    print(f"\n[obs overhead] tracing+telemetry on vs off, gated at {limit:g}x "
          f"(n={problem.num_dofs}, {len(pool)} rhs x {reps} reps x "
          f"{max(1, pairs)} rounds)")
    round_medians = []
    try:
        for round_index in range(max(1, pairs)):
            round_ratios = []
            for b in pool:
                offs, ons = [], []
                for _ in range(max(1, reps)):
                    offs.append(timed(False, b))
                    ons.append(timed(True, b))
                round_ratios.append(min(ons) / min(offs))
            round_medians.append(median(round_ratios))
            print(f"  round {round_index}: median per-RHS ratio "
                  f"{round_medians[-1]:.3f}x")
    finally:
        obs_trace.disable_tracing()
        session.config.obs = None
        obs_events.get_ring().clear()
    overall = min(round_medians)
    if overall > limit:
        print(f"obs overhead FAIL: best round median {overall:.3f}x > {limit:g}x "
              f"({len(round_medians)} rounds)")
        return [("obs-overhead", problem.num_dofs, "resolve_ms_p50", overall)]
    print(f"obs overhead ok: best round median {overall:.3f}x "
          f"(limit {limit:g}x, {len(round_medians)} rounds)")
    return []


def gate(ratios: List[Tuple[str, int, str, float]], threshold: float, title: str) -> List[Tuple]:
    """Print the normalised table for one ratio pool; returns its failures."""
    machine_factor = median([ratio for _, _, _, ratio in ratios])
    print(f"\n[{title}] machine-speed factor "
          f"(median raw ratio over {len(ratios)} pairs): {machine_factor:.3f}")
    print(f"{'record':<26} {'n/clients':>9} {'metric':<14} {'raw':>8} {'normalised':>11}  verdict")
    failures = []
    for label, size, metric, ratio in ratios:
        normalised = ratio / machine_factor if machine_factor > 0 else ratio
        verdict = "ok"
        if normalised > threshold:
            verdict = f"REGRESSION (> {threshold:g}x)"
            failures.append((label, size, metric, normalised))
        print(f"{label:<26} {size:>9} {metric:<14} {ratio:>7.2f}x {normalised:>10.2f}x  {verdict}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=Path, default=None,
                        help="bench_perf JSON output of the run under test")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help=f"committed baseline (default: {DEFAULT_BASELINE})")
    parser.add_argument("--serve-fresh", type=Path, default=None,
                        help="bench_serve JSON output of the run under test")
    parser.add_argument("--serve-baseline", type=Path, default=DEFAULT_SERVE_BASELINE,
                        help=f"committed serve baseline (default: {DEFAULT_SERVE_BASELINE})")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="maximum allowed machine-normalised regression ratio (default 2.0)")
    parser.add_argument("--iters-drift-limit", type=float, default=1.2,
                        help="maximum f32/f64 ddm-gnn iteration-count ratio at the same "
                             "problem size (default 1.2; applied to --fresh records)")
    parser.add_argument("--march-fresh", type=Path, default=None,
                        help="bench_march JSON output of the run under test "
                             "(gates amortized_speedup, bit-identity and march latency)")
    parser.add_argument("--march-min", type=float, default=5.0,
                        help="minimum fresh/step amortised speedup each march-ddm-lu "
                             "record must reach (default 5.0)")
    parser.add_argument("--scaling-gate", type=Path, nargs=2, default=None,
                        metavar=("W1_JSON", "WN_JSON"),
                        help="gate N-worker throughput against a 1-worker run "
                             "from the same machine (bench_serve outputs)")
    parser.add_argument("--scaling-min", type=float, default=2.5,
                        help="minimum N-worker/1-worker throughput ratio when the "
                             "machine has cpus >= workers (default 2.5)")
    parser.add_argument("--scaling-floor", type=float, default=0.5,
                        help="catastrophe throughput floor applied instead of "
                             "--scaling-min when cpus < workers (default 0.5)")
    parser.add_argument("--obs-overhead", action="store_true",
                        help="gate the tracing+telemetry overhead on the amortised "
                             "resolve path (self-contained paired measurement)")
    parser.add_argument("--obs-overhead-limit", type=float, default=1.02,
                        help="maximum tracing-on/tracing-off median pair ratio "
                             "(default 1.02, i.e. <= 2%% overhead)")
    parser.add_argument("--obs-overhead-pairs", type=int, default=5,
                        help="number of off/on measurement pairs (default 5)")
    args = parser.parse_args(argv)

    if args.fresh is None and args.serve_fresh is None and args.scaling_gate is None \
            and args.march_fresh is None and not args.obs_overhead:
        parser.error("provide --fresh, --serve-fresh, --march-fresh, "
                     "--scaling-gate and/or --obs-overhead")

    failures = []

    if args.fresh is not None:
        fresh = load_records(args.fresh)
        baseline = load_records(args.baseline)
        ratios = collect_ratios(fresh, baseline)
        if not ratios:
            print("error: no comparable solver records between fresh run and baseline")
            return 1
        failures += gate(ratios, args.threshold, "perf")
        failures += gate_precision_drift(fresh, args.iters_drift_limit)

    if args.serve_fresh is not None:
        if not args.serve_baseline.exists():
            print(f"note: serve baseline {args.serve_baseline} missing — serve gate skipped")
        else:
            serve_fresh = load_records(args.serve_fresh)
            serve_baseline = load_records(args.serve_baseline)
            serve_ratios = collect_serve_ratios(serve_fresh, serve_baseline)
            if serve_ratios:
                failures += gate(serve_ratios, args.threshold, "serve")
            else:
                print("note: no comparable serve cells — serve gate skipped")

    if args.march_fresh is not None:
        failures += gate_march(args.march_fresh, args.baseline,
                               args.march_min, args.threshold)

    if args.scaling_gate is not None:
        base_path, scaled_path = args.scaling_gate
        failures += gate_scaling(base_path, scaled_path,
                                 args.scaling_min, args.scaling_floor)

    if args.obs_overhead:
        failures += gate_obs_overhead(args.obs_overhead_limit,
                                      pairs=args.obs_overhead_pairs)

    if failures:
        print(f"\nFAIL: {len(failures)} gated metric(s) out of bounds:")
        for label, size, metric, normalised in failures:
            print(f"  - {label} (n={size}) {metric}: {normalised:.2f}x")
        return 1
    print("\nOK: all gated metrics within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
